//! JIT-style kernel specialization: per-(pattern, threshold) constant-folded
//! comparer and finder variants with ISA-measured resources.
//!
//! The paper's opt1–opt4 ladder hand-specializes the comparer until the
//! Table X numbers improve; this module continues the story by machine. A
//! job's query pattern — its per-position IUPAC possibility masks and its
//! length — and its mismatch threshold are *runtime constants*: they never
//! change between launches of the same job, yet the generic kernels re-read
//! them from `__constant`/`__local` buffers on every work-item. Folding them
//! into the kernel body turns every pattern read into an immediate operand,
//! deletes the cooperative staging phase (nothing left to stage), fixes the
//! loop trip count, and drops two pointer and two scalar arguments — which
//! the pseudo-ISA lowering prices as real savings: fewer code bytes, fewer
//! SGPRs/VGPRs, and occupancy at least as good as the generic kernel's
//! (see [`CodeModel::folded_pattern`]).
//!
//! Variants are compiled once per `(pattern digest, threshold, encoding)`
//! and cached in a bounded, digest-keyed [`VariantCache`] with single-flight
//! compilation: two batches racing on the same new key produce exactly one
//! compile, the loser blocks until the leader publishes (the same discipline
//! `serve::results` applies to duplicate in-flight jobs). Library-style
//! workloads — thousands of sites, a handful of guides — amortize one
//! compile across every subsequent launch.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use gpu_sim::isa::{self, CodeModel, ResourceUsage};
use gpu_sim::kernel::{KernelProgram, LocalLayout, LocalMem};
use gpu_sim::{DeviceBuffer, ItemCtx};

use genome::base::{base_mask, is_mismatch};
use genome::twobit::code_to_char;

use super::comparer::ComparerOutput;
use super::finder::{FinderOutput, FLAG_BOTH, FLAG_FORWARD, FLAG_REVERSE};
use crate::pattern::CompiledSeq;

/// Which kernel shape a variant specializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantKind {
    /// The char comparer over raw chunk bytes.
    CharComparer,
    /// The 2-bit comparer over packed + ambiguity-mask words.
    TwoBitComparer,
    /// The 4-bit comparer over nibble words.
    FourBitComparer,
    /// The finder over a nibble-packed chunk (scans nibbles directly — the
    /// generic kernel's whole decode-to-`chr` phase disappears).
    NibbleFinder,
    /// The fused multi-guide comparer with the block's shared threshold
    /// folded to an immediate ([`GuideThresholds::Folded`]
    /// (super::multi::GuideThresholds::Folded)). The guides themselves stay
    /// data — a library screen cycles thousands of them through the same
    /// variant — so what folds is the (PAM pattern, threshold) pair the
    /// whole screen shares.
    MultiComparer,
}

impl VariantKind {
    /// All kinds, in digest-tag order.
    pub const ALL: [VariantKind; 5] = [
        VariantKind::CharComparer,
        VariantKind::TwoBitComparer,
        VariantKind::FourBitComparer,
        VariantKind::NibbleFinder,
        VariantKind::MultiComparer,
    ];

    /// The kernel name the variant reports to the profiler. Fixed per kind
    /// (not per pattern) so profile consumers can aggregate by name.
    pub fn kernel_name(&self) -> &'static str {
        match self {
            VariantKind::CharComparer => "comparer-spec",
            VariantKind::TwoBitComparer => "comparer-2bit-spec",
            VariantKind::FourBitComparer => "comparer-4bit-spec",
            VariantKind::NibbleFinder => "finder_nibble-spec",
            VariantKind::MultiComparer => "comparer_multi-spec",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            VariantKind::CharComparer => 0,
            VariantKind::TwoBitComparer => 1,
            VariantKind::FourBitComparer => 2,
            VariantKind::NibbleFinder => 3,
            VariantKind::MultiComparer => 4,
        }
    }
}

/// A query pattern and threshold frozen into host-side immediates.
///
/// Holds the same `[forward | revcomp]` layout the generic kernels stage
/// into local memory, plus the per-position possibility masks the 4-bit
/// comparer and nibble finder fold (saving the `base_mask` lookup too).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedPattern {
    comp: Vec<u8>,
    comp_index: Vec<i32>,
    masks: Vec<u8>,
    plen: usize,
    threshold: u16,
}

impl FoldedPattern {
    /// Fold `query` and `threshold` into immediates.
    pub fn fold(query: &CompiledSeq, threshold: u16) -> FoldedPattern {
        let comp = query.comp().to_vec();
        let masks = comp.iter().map(|&c| base_mask(c)).collect();
        FoldedPattern {
            comp,
            comp_index: query.comp_index().to_vec(),
            masks,
            plen: query.plen(),
            threshold,
        }
    }

    /// Pattern length.
    pub fn plen(&self) -> usize {
        self.plen
    }

    /// Folded mismatch threshold.
    pub fn threshold(&self) -> u16 {
        self.threshold
    }

    #[inline]
    fn index(&self, half: usize, j: usize) -> i32 {
        self.comp_index[half * self.plen + j]
    }

    #[inline]
    fn chr(&self, half: usize, k: usize) -> u8 {
        self.comp[half * self.plen + k]
    }

    #[inline]
    fn mask(&self, half: usize, k: usize) -> u8 {
        self.masks[half * self.plen + k]
    }
}

/// FNV-1a over the variant's identity: kind tag, pattern bytes, index
/// bytes, and threshold. Two jobs sharing a (pattern, threshold, encoding)
/// digest share the compiled variant.
pub fn variant_digest(kind: VariantKind, query: &CompiledSeq, threshold: u16) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(kind.tag());
    eat(query.plen() as u8);
    for &c in query.comp() {
        eat(c);
    }
    for &k in query.comp_index() {
        for b in k.to_le_bytes() {
            eat(b);
        }
    }
    for b in threshold.to_le_bytes() {
        eat(b);
    }
    h
}

/// The structural code model of a specialized variant: staging and the
/// pattern pointer/scalar arguments are gone, the body is the folded ladder
/// ([`CodeModel::folded_pattern`]) with the per-encoding decode cost kept as
/// `extra_valu` (the genome side is still data).
pub fn specialized_model(kind: VariantKind, plen: usize) -> CodeModel {
    let plen = plen as u32;
    match kind {
        // chr, loci, flags + 4 output pointers; locicnt.
        VariantKind::CharComparer => CodeModel::new(VariantKind::CharComparer.kernel_name())
            .pointer_args(7)
            .scalar_args(1)
            .noalias(true)
            .cached_global_scalars(2)
            .guarded_blocks(2)
            .atomic_output(true)
            .folded_pattern(plen),
        // packed, mask, loci, flags + 4 output pointers; locicnt. The
        // packed-byte + mask-byte merge stays (40 VALU, as generic).
        VariantKind::TwoBitComparer => CodeModel::new(VariantKind::TwoBitComparer.kernel_name())
            .pointer_args(8)
            .scalar_args(1)
            .noalias(true)
            .cached_global_scalars(2)
            .guarded_blocks(2)
            .atomic_output(true)
            .extra_valu(40)
            .folded_pattern(plen),
        // nibbles, loci, flags + 4 output pointers; locicnt. One
        // shift-and-mask decode per base (24 VALU, as generic).
        VariantKind::FourBitComparer => CodeModel::new(VariantKind::FourBitComparer.kernel_name())
            .pointer_args(7)
            .scalar_args(1)
            .noalias(true)
            .cached_global_scalars(2)
            .guarded_blocks(2)
            .atomic_output(true)
            .extra_valu(24)
            .folded_pattern(plen),
        // nibbles + 3 output pointers; scan_len, seq_len. No decode phase
        // at all: the scan reads nibble words directly.
        VariantKind::NibbleFinder => CodeModel::new(VariantKind::NibbleFinder.kernel_name())
            .pointer_args(4)
            .scalar_args(2)
            .noalias(true)
            .guarded_blocks(2)
            .atomic_output(true)
            .extra_valu(8)
            .folded_pattern(plen),
        // Only the threshold folds; the guide tables stay staged data, so
        // the model is the generic fused comparer minus the threshold table
        // argument and its staging ([`super::multi::char_multi_model`]).
        VariantKind::MultiComparer => super::multi::char_multi_model(true),
    }
}

/// The code model of the generic kernel a `kind` variant replaces — the
/// "before" column of a generic-vs-specialized ISA comparison (the char
/// comparer varies by optimization stage; the packed kernels have one
/// generic form each, mirrored from their `KernelProgram::code_model`
/// implementations).
pub fn generic_model(kind: VariantKind, opt: super::OptLevel) -> CodeModel {
    use gpu_sim::isa::Staging;
    match kind {
        VariantKind::CharComparer => super::comparer::ComparerKernel::code_model_for(opt),
        VariantKind::TwoBitComparer => CodeModel::new("comparer-2bit")
            .pointer_args(10)
            .scalar_args(3)
            .noalias(true)
            .cached_global_scalars(2)
            .staging(Staging::Parallel)
            .staged_arrays(2)
            .guarded_blocks(2)
            .ladder_arms(13)
            .atomic_output(true)
            .extra_valu(40),
        VariantKind::FourBitComparer => CodeModel::new("comparer-4bit")
            .pointer_args(9)
            .scalar_args(3)
            .noalias(true)
            .cached_global_scalars(2)
            .staging(Staging::Parallel)
            .staged_arrays(2)
            .guarded_blocks(2)
            .ladder_arms(13)
            .atomic_output(true)
            .extra_valu(24),
        VariantKind::NibbleFinder => CodeModel::new("finder_nibble")
            .pointer_args(7)
            .scalar_args(3)
            .noalias(true)
            .staging(Staging::Parallel)
            .staged_arrays(2)
            .guarded_blocks(2)
            .ladder_arms(13)
            .atomic_output(true)
            .extra_valu(8),
        VariantKind::MultiComparer => super::multi::char_multi_model(false),
    }
}

/// A compiled variant: the folded pattern plus the resources the pseudo-ISA
/// lowering measured for it.
#[derive(Debug)]
pub struct CompiledVariant {
    /// Which kernel shape this specializes.
    pub kind: VariantKind,
    /// The cache key ([`variant_digest`]).
    pub digest: u64,
    /// The folded pattern + threshold.
    pub pattern: Arc<FoldedPattern>,
    /// Measured code bytes, SGPRs, VGPRs, LDS.
    pub resources: ResourceUsage,
    /// Wall-clock nanoseconds the compile took.
    pub compile_ns: u64,
}

impl CompiledVariant {
    /// Compile a variant outside any cache (the cache calls this too).
    pub fn compile(kind: VariantKind, query: &CompiledSeq, threshold: u16) -> CompiledVariant {
        let start = Instant::now();
        let pattern = Arc::new(FoldedPattern::fold(query, threshold));
        let model = specialized_model(kind, pattern.plen());
        let resources = isa::compile(&model);
        CompiledVariant {
            kind,
            digest: variant_digest(kind, query, threshold),
            pattern,
            resources,
            compile_ns: start.elapsed().as_nanos() as u64,
        }
    }
}

/// Counters and compile-time samples of a [`VariantCache`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VariantCacheStats {
    /// Lookups that found a resident (or in-flight) variant.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Variants evicted by the capacity bound.
    pub evictions: u64,
    /// Compiles performed (single-flight: ≤ misses under races).
    pub compiles: u64,
    /// Recent compile times in nanoseconds (bounded ring, newest last).
    pub compile_ns: Vec<u64>,
}

impl VariantCacheStats {
    /// Hit rate over all lookups, 0 when none happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The `q`-quantile of recorded compile times (nearest-rank), `None`
    /// when no compile has been recorded.
    pub fn compile_ns_quantile(&self, q: f64) -> Option<u64> {
        if self.compile_ns.is_empty() {
            return None;
        }
        let mut sorted = self.compile_ns.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

/// Retained compile-time samples; old samples age out so p50/p95 track the
/// recent regime, not the process lifetime.
const COMPILE_SAMPLE_CAP: usize = 256;

enum Slot {
    /// Compiled and resident; the `u64` is the LRU tick of last use.
    Ready(Arc<CompiledVariant>, u64),
    /// A leader is compiling; followers wait on the condvar.
    Pending,
}

struct CacheInner {
    slots: HashMap<u64, Slot>,
    clock: u64,
    stats: VariantCacheStats,
}

/// A bounded, digest-keyed, single-flight cache of compiled variants.
pub struct VariantCache {
    inner: Mutex<CacheInner>,
    ready: Condvar,
    capacity: usize,
}

impl VariantCache {
    /// A cache retaining at most `capacity` compiled variants (LRU beyond
    /// that). In-flight compiles are never evicted.
    pub fn new(capacity: usize) -> VariantCache {
        VariantCache {
            inner: Mutex::new(CacheInner {
                slots: HashMap::new(),
                clock: 0,
                stats: VariantCacheStats::default(),
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Fetch the variant for `(kind, query, threshold)`, compiling it on
    /// first use. Concurrent callers racing on the same new key compile
    /// once: the first becomes the leader, the rest block until the leader
    /// publishes and then count as hits (they did no work).
    pub fn get_or_compile(
        &self,
        kind: VariantKind,
        query: &CompiledSeq,
        threshold: u16,
    ) -> Arc<CompiledVariant> {
        let digest = variant_digest(kind, query, threshold);
        let mut inner = self.inner.lock().unwrap();
        loop {
            let resident = match inner.slots.get(&digest) {
                Some(Slot::Ready(variant, _)) => Some(Arc::clone(variant)),
                Some(Slot::Pending) => {
                    // Follower: the leader is compiling this digest right
                    // now. Wait for publication; the shared result counts
                    // as a hit (no duplicate compile happened).
                    inner = self.ready.wait(inner).unwrap();
                    continue;
                }
                None => None,
            };
            if let Some(variant) = resident {
                inner.clock += 1;
                let clock = inner.clock;
                if let Some(Slot::Ready(_, tick)) = inner.slots.get_mut(&digest) {
                    *tick = clock;
                }
                inner.stats.hits += 1;
                return variant;
            }
            inner.slots.insert(digest, Slot::Pending);
            drop(inner);
            // Leader: compile outside the lock so unrelated digests keep
            // flowing.
            let variant = Arc::new(CompiledVariant::compile(kind, query, threshold));
            let mut inner = self.inner.lock().unwrap();
            inner.clock += 1;
            let tick = inner.clock;
            inner
                .slots
                .insert(digest, Slot::Ready(Arc::clone(&variant), tick));
            inner.stats.misses += 1;
            inner.stats.compiles += 1;
            if inner.stats.compile_ns.len() == COMPILE_SAMPLE_CAP {
                inner.stats.compile_ns.remove(0);
            }
            inner.stats.compile_ns.push(variant.compile_ns);
            Self::evict_over_capacity(&mut inner, self.capacity);
            drop(inner);
            self.ready.notify_all();
            return variant;
        }
    }

    fn evict_over_capacity(inner: &mut CacheInner, capacity: usize) {
        loop {
            let resident = inner
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready(..)))
                .count();
            if resident <= capacity {
                return;
            }
            let coldest = inner
                .slots
                .iter()
                .filter_map(|(digest, slot)| match slot {
                    Slot::Ready(_, tick) => Some((*tick, *digest)),
                    Slot::Pending => None,
                })
                .min();
            match coldest {
                Some((_, digest)) => {
                    inner.slots.remove(&digest);
                    inner.stats.evictions += 1;
                }
                None => return,
            }
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> VariantCacheStats {
        self.inner.lock().unwrap().stats.clone()
    }

    /// Number of resident (compiled) variants.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready(..)))
            .count()
    }

    /// True when no variant is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Default bound of the process-wide cache: a serving process sees a few
/// guides per library workload; 64 variants is ~16 guides x 4 kinds.
pub const GLOBAL_VARIANT_CAPACITY: usize = 64;

/// The process-wide variant cache both chunk runners share, so a pattern
/// compiled for one device's runner is a hit on every other.
pub fn global_cache() -> &'static VariantCache {
    static CACHE: OnceLock<VariantCache> = OnceLock::new();
    CACHE.get_or_init(|| VariantCache::new(GLOBAL_VARIANT_CAPACITY))
}

/// The specialized char comparer: the generic [`ComparerKernel`]'s phase-1
/// semantics with the pattern and threshold folded to immediates. Single
/// phase — there is nothing to stage — and no local memory.
///
/// [`ComparerKernel`]: super::ComparerKernel
#[derive(Debug, Clone)]
pub struct SpecializedComparerKernel {
    /// Chunk bases.
    pub chr: DeviceBuffer<u8>,
    /// Candidate loci from the finder (chunk-relative).
    pub loci: DeviceBuffer<u32>,
    /// Strand flags from the finder.
    pub flags: DeviceBuffer<u8>,
    /// Number of candidate loci.
    pub locicnt: u32,
    /// Output arrays.
    pub out: ComparerOutput,
    /// The compiled variant (pattern, threshold, resources).
    pub variant: Arc<CompiledVariant>,
}

impl SpecializedComparerKernel {
    fn compare_strand(&self, item: &mut ItemCtx, locus: u32, half: usize) {
        let p = &self.variant.pattern;
        let mut lmm: u16 = 0;
        item.ops(1);
        for j in 0..p.plen() {
            let k = p.index(half, j);
            if k < 0 {
                break;
            }
            let k = k as usize;
            // The pattern byte is an immediate operand; only the genome
            // load and the compare cost anything.
            let pat_c = p.chr(half, k);
            let chr_c = self.chr.load(item, locus as usize + k);
            item.ops(1);
            if is_mismatch(pat_c, chr_c) {
                lmm += 1;
                item.ops(1);
                if lmm > p.threshold() {
                    break;
                }
            }
        }
        item.ops(1);
        if lmm <= p.threshold() {
            let slot = self.out.count.atomic_inc(item, 0) as usize;
            self.out.mm_count.store(item, slot, lmm);
            self.out
                .direction
                .store(item, slot, if half == 0 { b'+' } else { b'-' });
            self.out.loci.store(item, slot, locus);
        }
    }
}

impl KernelProgram for SpecializedComparerKernel {
    type Private = ();

    fn name(&self) -> &str {
        VariantKind::CharComparer.kernel_name()
    }

    fn code_model(&self) -> CodeModel {
        specialized_model(VariantKind::CharComparer, self.variant.pattern.plen())
    }

    fn run_phase(&self, _phase: usize, item: &mut ItemCtx, _p: &mut (), _local: &mut LocalMem) {
        let i = item.global_id(0);
        item.ops(1);
        if i >= self.locicnt as usize {
            return;
        }
        let flag = self.flags.load(item, i);
        let locus = self.loci.load(item, i);
        item.ops(2);
        if flag == FLAG_BOTH || flag == FLAG_FORWARD {
            self.compare_strand(item, locus, 0);
        }
        item.ops(2);
        if flag == FLAG_BOTH || flag == FLAG_REVERSE {
            self.compare_strand(item, locus, 1);
        }
    }
}

/// The specialized 2-bit comparer: [`TwoBitComparerKernel`] semantics with
/// folded pattern/threshold. The packed-byte + mask-byte decode stays — the
/// genome side is still data.
///
/// [`TwoBitComparerKernel`]: super::TwoBitComparerKernel
#[derive(Debug, Clone)]
pub struct SpecializedTwoBitComparerKernel {
    /// Packed chunk bases, 4 per byte.
    pub packed: DeviceBuffer<u8>,
    /// Ambiguity mask, 8 bases per byte.
    pub mask: DeviceBuffer<u8>,
    /// Candidate loci (chunk-relative).
    pub loci: DeviceBuffer<u32>,
    /// Strand flags from the finder.
    pub flags: DeviceBuffer<u8>,
    /// Number of candidates.
    pub locicnt: u32,
    /// Output arrays.
    pub out: ComparerOutput,
    /// The compiled variant.
    pub variant: Arc<CompiledVariant>,
}

impl SpecializedTwoBitComparerKernel {
    fn base_at(&self, item: &mut ItemCtx, cache: &mut (usize, u8, usize, u8), pos: usize) -> u8 {
        let (pb_idx, mb_idx) = (pos / 4, pos / 8);
        if cache.0 != pb_idx {
            cache.0 = pb_idx;
            cache.1 = self.packed.load(item, pb_idx);
        }
        if cache.2 != mb_idx {
            cache.2 = mb_idx;
            cache.3 = self.mask.load(item, mb_idx);
        }
        item.ops(4);
        if (cache.3 >> (pos % 8)) & 1 == 1 {
            b'N'
        } else {
            code_to_char((cache.1 >> ((pos % 4) * 2)) & 0b11)
        }
    }

    fn compare_strand(&self, item: &mut ItemCtx, locus: u32, half: usize) {
        let p = &self.variant.pattern;
        let mut lmm: u16 = 0;
        let mut cache = (usize::MAX, 0u8, usize::MAX, 0u8);
        item.ops(2);
        for j in 0..p.plen() {
            let k = p.index(half, j);
            if k < 0 {
                break;
            }
            let k = k as usize;
            let pat_c = p.chr(half, k);
            let chr_c = self.base_at(item, &mut cache, locus as usize + k);
            item.ops(1);
            if is_mismatch(pat_c, chr_c) {
                lmm += 1;
                item.ops(1);
                if lmm > p.threshold() {
                    break;
                }
            }
        }
        item.ops(1);
        if lmm <= p.threshold() {
            let slot = self.out.count.atomic_inc(item, 0) as usize;
            self.out.mm_count.store(item, slot, lmm);
            self.out
                .direction
                .store(item, slot, if half == 0 { b'+' } else { b'-' });
            self.out.loci.store(item, slot, locus);
        }
    }
}

impl KernelProgram for SpecializedTwoBitComparerKernel {
    type Private = ();

    fn name(&self) -> &str {
        VariantKind::TwoBitComparer.kernel_name()
    }

    fn code_model(&self) -> CodeModel {
        specialized_model(VariantKind::TwoBitComparer, self.variant.pattern.plen())
    }

    fn run_phase(&self, _phase: usize, item: &mut ItemCtx, _p: &mut (), _local: &mut LocalMem) {
        let i = item.global_id(0);
        item.ops(1);
        if i >= self.locicnt as usize {
            return;
        }
        let flag = self.flags.load(item, i);
        let locus = self.loci.load(item, i);
        item.ops(2);
        if flag == FLAG_BOTH || flag == FLAG_FORWARD {
            self.compare_strand(item, locus, 0);
        }
        item.ops(2);
        if flag == FLAG_BOTH || flag == FLAG_REVERSE {
            self.compare_strand(item, locus, 1);
        }
    }
}

/// The specialized 4-bit comparer: [`FourBitComparerKernel`] semantics with
/// the pattern's possibility masks folded — the subset test runs against an
/// immediate, saving the `base_mask` lookup on top of the pattern load.
///
/// [`FourBitComparerKernel`]: super::FourBitComparerKernel
#[derive(Debug, Clone)]
pub struct SpecializedFourBitComparerKernel {
    /// Nibble-packed chunk bases, 2 per byte, low nibble first.
    pub nibbles: DeviceBuffer<u8>,
    /// Candidate loci (chunk-relative).
    pub loci: DeviceBuffer<u32>,
    /// Strand flags from the finder.
    pub flags: DeviceBuffer<u8>,
    /// Number of candidates.
    pub locicnt: u32,
    /// Output arrays.
    pub out: ComparerOutput,
    /// The compiled variant.
    pub variant: Arc<CompiledVariant>,
}

impl SpecializedFourBitComparerKernel {
    fn mask_at(&self, item: &mut ItemCtx, cache: &mut (usize, u8), pos: usize) -> u8 {
        let idx = pos / 2;
        if cache.0 != idx {
            cache.0 = idx;
            cache.1 = self.nibbles.load(item, idx);
        }
        item.ops(2);
        (cache.1 >> ((pos % 2) * 4)) & 0b1111
    }

    fn compare_strand(&self, item: &mut ItemCtx, locus: u32, half: usize) {
        let pat = &self.variant.pattern;
        let mut lmm: u16 = 0;
        let mut cache = (usize::MAX, 0u8);
        item.ops(2);
        for j in 0..pat.plen() {
            let k = pat.index(half, j);
            if k < 0 {
                break;
            }
            let k = k as usize;
            let g = self.mask_at(item, &mut cache, locus as usize + k);
            // Folded possibility mask: immediate operand, no lookup.
            let p = pat.mask(half, k);
            item.ops(1);
            if !(g != 0 && (g & p) == g) {
                lmm += 1;
                item.ops(1);
                if lmm > pat.threshold() {
                    break;
                }
            }
        }
        item.ops(1);
        if lmm <= pat.threshold() {
            let slot = self.out.count.atomic_inc(item, 0) as usize;
            self.out.mm_count.store(item, slot, lmm);
            self.out
                .direction
                .store(item, slot, if half == 0 { b'+' } else { b'-' });
            self.out.loci.store(item, slot, locus);
        }
    }
}

impl KernelProgram for SpecializedFourBitComparerKernel {
    type Private = ();

    fn name(&self) -> &str {
        VariantKind::FourBitComparer.kernel_name()
    }

    fn code_model(&self) -> CodeModel {
        specialized_model(VariantKind::FourBitComparer, self.variant.pattern.plen())
    }

    fn run_phase(&self, _phase: usize, item: &mut ItemCtx, _p: &mut (), _local: &mut LocalMem) {
        let i = item.global_id(0);
        item.ops(1);
        if i >= self.locicnt as usize {
            return;
        }
        let flag = self.flags.load(item, i);
        let locus = self.loci.load(item, i);
        item.ops(2);
        if flag == FLAG_BOTH || flag == FLAG_FORWARD {
            self.compare_strand(item, locus, 0);
        }
        item.ops(2);
        if flag == FLAG_BOTH || flag == FLAG_REVERSE {
            self.compare_strand(item, locus, 1);
        }
    }
}

/// The specialized nibble finder: scans nibble words directly against the
/// folded PAM masks. The generic [`NibbleFinderKernel`] first decodes the
/// whole read window into the `chr` scratch, then stages the pattern, then
/// scans — three phases. Folding deletes the first two: the subset test
/// `g != 0 && (g & p) == g` on the raw nibble is bit-identical to
/// `is_mismatch` on the decoded char ([`genome::base::matches`]), so this
/// single-phase kernel returns exactly the generic results with no `chr`
/// traffic at all.
///
/// [`NibbleFinderKernel`]: super::NibbleFinderKernel
#[derive(Debug, Clone)]
pub struct SpecializedNibbleFinderKernel {
    /// Nibble-packed chunk bases (2 per byte, low nibble first).
    pub nibbles: DeviceBuffer<u8>,
    /// Output arrays.
    pub out: FinderOutput,
    /// Number of owned scan positions.
    pub scan_len: u32,
    /// Total bases available (scan positions + overlap).
    pub seq_len: u32,
    /// The compiled variant (the PAM pattern; threshold 0).
    pub variant: Arc<CompiledVariant>,
}

impl SpecializedNibbleFinderKernel {
    fn strand_matches(
        &self,
        item: &mut ItemCtx,
        cache: &mut (usize, u8),
        pos: usize,
        half: usize,
    ) -> bool {
        let pat = &self.variant.pattern;
        for j in 0..pat.plen() {
            let k = pat.index(half, j);
            if k < 0 {
                break;
            }
            let k = k as usize;
            let abs = pos + k;
            let idx = abs / 2;
            if cache.0 != idx {
                cache.0 = idx;
                // Lane-adjacent nibble reads: fully coalesced.
                cache.1 = self.nibbles.load_coalesced(item, idx);
            }
            let g = (cache.1 >> ((abs % 2) * 4)) & 0b1111;
            let p = pat.mask(half, k);
            item.ops(2);
            if !(g != 0 && (g & p) == g) {
                return false;
            }
        }
        true
    }
}

impl KernelProgram for SpecializedNibbleFinderKernel {
    type Private = ();

    fn name(&self) -> &str {
        VariantKind::NibbleFinder.kernel_name()
    }

    fn code_model(&self) -> CodeModel {
        specialized_model(VariantKind::NibbleFinder, self.variant.pattern.plen())
    }

    fn run_phase(&self, _phase: usize, item: &mut ItemCtx, _p: &mut (), _local: &mut LocalMem) {
        let plen = self.variant.pattern.plen();
        let i = item.global_id(0);
        item.ops(2);
        if i >= self.scan_len as usize || i + plen > self.seq_len as usize {
            return;
        }
        let mut cache = (usize::MAX, 0u8);
        let forward = self.strand_matches(item, &mut cache, i, 0);
        let reverse = self.strand_matches(item, &mut cache, i, 1);
        let flag = match (forward, reverse) {
            (true, true) => FLAG_BOTH,
            (true, false) => FLAG_FORWARD,
            (false, true) => FLAG_REVERSE,
            (false, false) => return,
        };
        let slot = self.out.count.atomic_inc(item, 0) as usize;
        self.out.loci.store(item, slot, i as u32);
        self.out.flags.store(item, slot, flag);
    }
}

/// The local layout every specialized kernel shares: none. Kept as a helper
/// so call sites don't hand-build empty layouts.
pub fn empty_layout() -> LocalLayout {
    LocalLayout::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{
        ComparerKernel, FinderKernel, FourBitComparerKernel, NibbleFinderKernel, OptLevel,
        TwoBitComparerKernel,
    };
    use genome::fourbit::NibbleSeq;
    use genome::rng::Xoshiro256;
    use genome::twobit::PackedSeq;
    use gpu_sim::{Device, DeviceSpec, ExecMode, NdRange};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn device() -> Device {
        Device::with_mode(DeviceSpec::mi100(), ExecMode::Sequential)
    }

    /// A degenerate sequence mixing concrete, soft-masked, `N`, and IUPAC
    /// bases — the worst case for every encoding.
    fn degenerate_seq(len: usize, seed: u64) -> Vec<u8> {
        let alphabet = b"ACGTACGTACGTacgtNRYSWKMBDHVN";
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0, alphabet.len())])
            .collect()
    }

    fn candidates(seq_len: usize, plen: usize, seed: u64) -> Vec<(u32, u8)> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..64)
            .map(|_| {
                (
                    rng.gen_range(0, seq_len - plen) as u32,
                    [FLAG_BOTH, FLAG_FORWARD, FLAG_REVERSE][rng.gen_range(0, 3)],
                )
            })
            .collect()
    }

    fn sorted(mut entries: Vec<(u32, u8, u16)>) -> Vec<(u32, u8, u16)> {
        entries.sort_unstable();
        entries
    }

    fn finder_hits(out: &FinderOutput) -> Vec<(u32, u8)> {
        let n = out.count_matches();
        let loci = out.loci.to_vec();
        let flags = out.flags.to_vec();
        let mut hits: Vec<(u32, u8)> = (0..n).map(|i| (loci[i], flags[i])).collect();
        hits.sort_unstable();
        hits
    }

    fn generic_char(
        seq: &[u8],
        query: &CompiledSeq,
        cands: &[(u32, u8)],
        threshold: u16,
    ) -> Vec<(u32, u8, u16)> {
        let device = device();
        let chr = device.alloc_from_slice(seq).unwrap();
        let loci_host: Vec<u32> = cands.iter().map(|&(p, _)| p).collect();
        let flags_host: Vec<u8> = cands.iter().map(|&(_, f)| f).collect();
        let loci = device.alloc_from_slice(&loci_host).unwrap();
        let flags = device.alloc_from_slice(&flags_host).unwrap();
        let comp = device.alloc_from_slice(query.comp()).unwrap();
        let comp_index = device.alloc_from_slice(query.comp_index()).unwrap();
        let out = ComparerOutput::allocate(&device, cands.len() * 2 + 1).unwrap();
        let (kernel, _) = ComparerKernel::new(
            OptLevel::Opt4,
            chr,
            loci,
            flags,
            comp,
            comp_index,
            cands.len(),
            threshold,
            out,
            query,
        );
        device
            .launch(&kernel, NdRange::linear_cover(cands.len(), 256))
            .unwrap();
        sorted(kernel.out.entries())
    }

    fn specialized_char(
        seq: &[u8],
        query: &CompiledSeq,
        cands: &[(u32, u8)],
        threshold: u16,
    ) -> Vec<(u32, u8, u16)> {
        let device = device();
        let chr = device.alloc_from_slice(seq).unwrap();
        let loci_host: Vec<u32> = cands.iter().map(|&(p, _)| p).collect();
        let flags_host: Vec<u8> = cands.iter().map(|&(_, f)| f).collect();
        let kernel = SpecializedComparerKernel {
            chr,
            loci: device.alloc_from_slice(&loci_host).unwrap(),
            flags: device.alloc_from_slice(&flags_host).unwrap(),
            locicnt: cands.len() as u32,
            out: ComparerOutput::allocate(&device, cands.len() * 2 + 1).unwrap(),
            variant: Arc::new(CompiledVariant::compile(
                VariantKind::CharComparer,
                query,
                threshold,
            )),
        };
        device
            .launch(&kernel, NdRange::linear_cover(cands.len(), 256))
            .unwrap();
        sorted(kernel.out.entries())
    }

    fn generic_2bit(
        seq: &[u8],
        query: &CompiledSeq,
        cands: &[(u32, u8)],
        threshold: u16,
    ) -> Vec<(u32, u8, u16)> {
        let device = device();
        let packed = PackedSeq::encode(seq);
        let packed_buf = device.alloc_from_slice(packed.packed_bytes()).unwrap();
        let mask_buf = device.alloc_from_slice(packed.mask_bytes()).unwrap();
        let loci_host: Vec<u32> = cands.iter().map(|&(p, _)| p).collect();
        let flags_host: Vec<u8> = cands.iter().map(|&(_, f)| f).collect();
        let loci = device.alloc_from_slice(&loci_host).unwrap();
        let flags = device.alloc_from_slice(&flags_host).unwrap();
        let comp = device.alloc_from_slice(query.comp()).unwrap();
        let comp_index = device.alloc_from_slice(query.comp_index()).unwrap();
        let out = ComparerOutput::allocate(&device, cands.len() * 2 + 1).unwrap();
        let (kernel, _) = TwoBitComparerKernel::new(
            packed_buf,
            mask_buf,
            loci,
            flags,
            comp,
            comp_index,
            cands.len(),
            threshold,
            out,
            query,
        );
        device
            .launch(&kernel, NdRange::linear_cover(cands.len(), 256))
            .unwrap();
        sorted(kernel.out.entries())
    }

    fn specialized_2bit(
        seq: &[u8],
        query: &CompiledSeq,
        cands: &[(u32, u8)],
        threshold: u16,
    ) -> Vec<(u32, u8, u16)> {
        let device = device();
        let packed = PackedSeq::encode(seq);
        let loci_host: Vec<u32> = cands.iter().map(|&(p, _)| p).collect();
        let flags_host: Vec<u8> = cands.iter().map(|&(_, f)| f).collect();
        let kernel = SpecializedTwoBitComparerKernel {
            packed: device.alloc_from_slice(packed.packed_bytes()).unwrap(),
            mask: device.alloc_from_slice(packed.mask_bytes()).unwrap(),
            loci: device.alloc_from_slice(&loci_host).unwrap(),
            flags: device.alloc_from_slice(&flags_host).unwrap(),
            locicnt: cands.len() as u32,
            out: ComparerOutput::allocate(&device, cands.len() * 2 + 1).unwrap(),
            variant: Arc::new(CompiledVariant::compile(
                VariantKind::TwoBitComparer,
                query,
                threshold,
            )),
        };
        device
            .launch(&kernel, NdRange::linear_cover(cands.len(), 256))
            .unwrap();
        sorted(kernel.out.entries())
    }

    fn generic_4bit(
        seq: &[u8],
        query: &CompiledSeq,
        cands: &[(u32, u8)],
        threshold: u16,
    ) -> Vec<(u32, u8, u16)> {
        let device = device();
        let packed = NibbleSeq::encode(seq);
        let nibbles = device.alloc_from_slice(packed.nibble_bytes()).unwrap();
        let loci_host: Vec<u32> = cands.iter().map(|&(p, _)| p).collect();
        let flags_host: Vec<u8> = cands.iter().map(|&(_, f)| f).collect();
        let loci = device.alloc_from_slice(&loci_host).unwrap();
        let flags = device.alloc_from_slice(&flags_host).unwrap();
        let comp = device.alloc_from_slice(query.comp()).unwrap();
        let comp_index = device.alloc_from_slice(query.comp_index()).unwrap();
        let out = ComparerOutput::allocate(&device, cands.len() * 2 + 1).unwrap();
        let (kernel, _) = FourBitComparerKernel::new(
            nibbles,
            loci,
            flags,
            comp,
            comp_index,
            cands.len(),
            threshold,
            out,
            query,
        );
        device
            .launch(&kernel, NdRange::linear_cover(cands.len(), 256))
            .unwrap();
        sorted(kernel.out.entries())
    }

    fn specialized_4bit(
        seq: &[u8],
        query: &CompiledSeq,
        cands: &[(u32, u8)],
        threshold: u16,
    ) -> Vec<(u32, u8, u16)> {
        let device = device();
        let packed = NibbleSeq::encode(seq);
        let loci_host: Vec<u32> = cands.iter().map(|&(p, _)| p).collect();
        let flags_host: Vec<u8> = cands.iter().map(|&(_, f)| f).collect();
        let kernel = SpecializedFourBitComparerKernel {
            nibbles: device.alloc_from_slice(packed.nibble_bytes()).unwrap(),
            loci: device.alloc_from_slice(&loci_host).unwrap(),
            flags: device.alloc_from_slice(&flags_host).unwrap(),
            locicnt: cands.len() as u32,
            out: ComparerOutput::allocate(&device, cands.len() * 2 + 1).unwrap(),
            variant: Arc::new(CompiledVariant::compile(
                VariantKind::FourBitComparer,
                query,
                threshold,
            )),
        };
        device
            .launch(&kernel, NdRange::linear_cover(cands.len(), 256))
            .unwrap();
        sorted(kernel.out.entries())
    }

    const QUERIES: [&[u8]; 3] = [
        b"GGCACTGCGGCTGGAGGTGGNGG",    // cas-offinder demo guide
        b"ACGTNNNRYSWKMBDHVACGTNN",    // degenerate IUPAC everywhere
        b"NNNNNNNNNNNNNNNNNNNNNGG",    // PAM-only (all-N guide)
    ];
    const THRESHOLDS: [u16; 3] = [0, 2, 5];

    #[test]
    fn specialized_char_is_byte_identical_to_generic() {
        let seq = degenerate_seq(4096, 11);
        for (qi, query) in QUERIES.iter().enumerate() {
            let compiled = CompiledSeq::compile(query);
            let cands = candidates(seq.len(), compiled.plen(), 100 + qi as u64);
            for &t in &THRESHOLDS {
                assert_eq!(
                    specialized_char(&seq, &compiled, &cands, t),
                    generic_char(&seq, &compiled, &cands, t),
                    "query {qi} threshold {t}"
                );
            }
        }
    }

    #[test]
    fn specialized_2bit_is_byte_identical_to_generic() {
        let seq = degenerate_seq(4096, 13);
        for (qi, query) in QUERIES.iter().enumerate() {
            let compiled = CompiledSeq::compile(query);
            let cands = candidates(seq.len(), compiled.plen(), 200 + qi as u64);
            for &t in &THRESHOLDS {
                assert_eq!(
                    specialized_2bit(&seq, &compiled, &cands, t),
                    generic_2bit(&seq, &compiled, &cands, t),
                    "query {qi} threshold {t}"
                );
            }
        }
    }

    #[test]
    fn specialized_4bit_is_byte_identical_to_generic() {
        let seq = degenerate_seq(4096, 17);
        for (qi, query) in QUERIES.iter().enumerate() {
            let compiled = CompiledSeq::compile(query);
            let cands = candidates(seq.len(), compiled.plen(), 300 + qi as u64);
            for &t in &THRESHOLDS {
                assert_eq!(
                    specialized_4bit(&seq, &compiled, &cands, t),
                    generic_4bit(&seq, &compiled, &cands, t),
                    "query {qi} threshold {t}"
                );
            }
        }
    }

    #[test]
    fn specialized_nibble_finder_matches_the_generic_three_phase_kernel() {
        let seq = degenerate_seq(8192, 19);
        let pam = CompiledSeq::compile(b"NNNNNNNNNNNNNNNNNNNNNGG");
        let plen = pam.plen();
        let scan_len = seq.len() - plen;
        let packed = NibbleSeq::encode(&seq);

        let run_generic = || {
            let device = device();
            let chr = device.alloc(seq.len()).unwrap();
            let nibbles = device.alloc_from_slice(packed.nibble_bytes()).unwrap();
            let pat = device.alloc_from_slice(pam.comp()).unwrap();
            let pat_index = device.alloc_from_slice(pam.comp_index()).unwrap();
            let out = FinderOutput::allocate(&device, scan_len * 2 + 1).unwrap();
            let (inner, _) = FinderKernel::new(
                chr,
                pat,
                pat_index,
                out,
                scan_len,
                seq.len(),
                &pam,
            );
            let kernel = NibbleFinderKernel { inner, nibbles };
            device
                .launch(&kernel, NdRange::linear_cover(scan_len, 256))
                .unwrap();
            finder_hits(&kernel.inner.out)
        };

        let run_spec = || {
            let device = device();
            let kernel = SpecializedNibbleFinderKernel {
                nibbles: device.alloc_from_slice(packed.nibble_bytes()).unwrap(),
                out: FinderOutput::allocate(&device, scan_len * 2 + 1).unwrap(),
                scan_len: scan_len as u32,
                seq_len: seq.len() as u32,
                variant: Arc::new(CompiledVariant::compile(VariantKind::NibbleFinder, &pam, 0)),
            };
            device
                .launch(&kernel, NdRange::linear_cover(scan_len, 256))
                .unwrap();
            finder_hits(&kernel.out)
        };

        let generic = run_generic();
        assert!(!generic.is_empty(), "the PAM must hit somewhere in 8 kB");
        assert_eq!(run_spec(), generic);
    }

    #[test]
    fn variants_price_below_their_generic_kernels() {
        use gpu_sim::occupancy::occupancy;
        let plen = 23;
        let nd = NdRange::linear(4096, 256);
        for kind in VariantKind::ALL.iter() {
            let generic = generic_model(*kind, OptLevel::Opt4);
            let spec_res = isa::compile(&specialized_model(*kind, plen));
            let gen_res = isa::compile(&generic);
            assert!(
                spec_res.code_bytes < gen_res.code_bytes,
                "{kind:?}: specialized {} B vs generic {} B",
                spec_res.code_bytes,
                gen_res.code_bytes
            );
            for hw in [DeviceSpec::mi100(), DeviceSpec::mi60(), DeviceSpec::radeon_vii()] {
                let spec_occ = occupancy(&spec_res, &nd, &hw).waves_per_simd;
                let gen_occ = occupancy(&gen_res, &nd, &hw).waves_per_simd;
                assert!(
                    spec_occ >= gen_occ,
                    "{kind:?} on {}: specialized {spec_occ} waves vs generic {gen_occ}",
                    hw.name
                );
            }
        }
    }

    #[test]
    fn digest_distinguishes_kind_pattern_and_threshold() {
        let a = CompiledSeq::compile(b"GGCACTGCGGCTGGAGGTGGNGG");
        let b = CompiledSeq::compile(b"ACGTNNNRYSWKMBDHVACGTNN");
        let base = variant_digest(VariantKind::CharComparer, &a, 3);
        assert_ne!(base, variant_digest(VariantKind::TwoBitComparer, &a, 3));
        assert_ne!(base, variant_digest(VariantKind::CharComparer, &b, 3));
        assert_ne!(base, variant_digest(VariantKind::CharComparer, &a, 4));
        assert_eq!(base, variant_digest(VariantKind::CharComparer, &a, 3));
    }

    #[test]
    fn cache_hits_after_first_compile_and_evicts_lru() {
        let cache = VariantCache::new(2);
        let queries: Vec<CompiledSeq> = [
            b"GGCACTGCGGCTGGAGGTGGNGG" as &[u8],
            b"ACGTNNNRYSWKMBDHVACGTNN",
            b"NNNNNNNNNNNNNNNNNNNNNGG",
        ]
        .iter()
        .map(|q| CompiledSeq::compile(q))
        .collect();

        let v0 = cache.get_or_compile(VariantKind::CharComparer, &queries[0], 3);
        let again = cache.get_or_compile(VariantKind::CharComparer, &queries[0], 3);
        assert!(Arc::ptr_eq(&v0, &again), "second lookup reuses the compile");
        cache.get_or_compile(VariantKind::CharComparer, &queries[1], 3);
        // Touch query 0 so query 1 is the LRU victim.
        cache.get_or_compile(VariantKind::CharComparer, &queries[0], 3);
        cache.get_or_compile(VariantKind::CharComparer, &queries[2], 3);

        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.compiles, 3);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(cache.len(), 2);
        // Query 0 survived the eviction; query 1 did not.
        cache.get_or_compile(VariantKind::CharComparer, &queries[0], 3);
        assert_eq!(cache.stats().hits, 3, "query 0 still resident");
        cache.get_or_compile(VariantKind::CharComparer, &queries[1], 3);
        assert_eq!(cache.stats().misses, 4, "query 1 was the LRU victim");
        assert!(stats.compile_ns_quantile(0.5).is_some());
        assert!(stats.compile_ns_quantile(0.95).unwrap() >= stats.compile_ns_quantile(0.5).unwrap());
    }

    #[test]
    fn racing_lookups_compile_once() {
        // Regression for the single-flight requirement: N threads racing on
        // the same new (pattern, threshold) must produce exactly one
        // compile; the losers block and then share the leader's variant.
        let cache = Arc::new(VariantCache::new(8));
        let query = Arc::new(CompiledSeq::compile(b"GGCACTGCGGCTGGAGGTGGNGG"));
        let go = Arc::new(AtomicUsize::new(0));
        const RACERS: usize = 8;

        let handles: Vec<_> = (0..RACERS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let query = Arc::clone(&query);
                let go = Arc::clone(&go);
                std::thread::spawn(move || {
                    go.fetch_add(1, Ordering::SeqCst);
                    while go.load(Ordering::SeqCst) < RACERS {
                        std::hint::spin_loop();
                    }
                    cache.get_or_compile(VariantKind::FourBitComparer, &query, 4)
                })
            })
            .collect();
        let variants: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        let stats = cache.stats();
        assert_eq!(stats.compiles, 1, "single-flight: exactly one compile");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits as usize, RACERS - 1);
        for v in &variants {
            assert!(Arc::ptr_eq(v, &variants[0]), "all racers share one variant");
        }
    }
}
