//! The `finder` kernel: select sites containing the PAM sequence (§II.A,
//! Table VI of the paper).
//!
//! One work-item per scan position. Phase 0 cooperatively stages the
//! pattern and its index array into shared local memory; phase 1 (after the
//! barrier) tests the position against the forward pattern and the
//! reverse-complement pattern and, on a hit, appends `(locus, strand flag)`
//! to the output through an atomic counter.
//!
//! The finder's reference reads are *sequential* — work-item `i` reads
//! `chr[i + k]`, so a wavefront's 64 lanes touch 64 adjacent bytes and
//! coalesce into one transaction. They are therefore issued through the
//! cached-load path of the simulator, which is what keeps the finder at a
//! few percent of total kernel time while the comparer's scattered reads
//! dominate (the paper measures the comparer at ~98%).

use gpu_sim::isa::{CodeModel, Staging};
use gpu_sim::kernel::{KernelProgram, LocalHandle, LocalLayout, LocalMem};
use gpu_sim::{Device, DeviceBuffer, ItemCtx, NdRange, SimResult};

use genome::base::is_mismatch;

use crate::pattern::CompiledSeq;

/// Flag value: the PAM matched on both strands (Listing 1's `flag` array).
pub const FLAG_BOTH: u8 = 0;
/// Flag value: the PAM matched on the forward strand only.
pub const FLAG_FORWARD: u8 = 1;
/// Flag value: the PAM matched on the reverse strand only.
pub const FLAG_REVERSE: u8 = 2;

/// Device-side output of a finder launch.
#[derive(Debug, Clone)]
pub struct FinderOutput {
    /// Matched positions (chunk-relative), compacted by the atomic counter.
    pub loci: DeviceBuffer<u32>,
    /// Strand flag per matched position (0 both, 1 forward, 2 reverse).
    pub flags: DeviceBuffer<u8>,
    /// Single-element match counter.
    pub count: DeviceBuffer<u32>,
}

impl FinderOutput {
    /// Allocate output buffers for up to `capacity` matches.
    ///
    /// # Errors
    ///
    /// Returns an error when the device is out of memory.
    pub fn allocate(device: &Device, capacity: usize) -> SimResult<FinderOutput> {
        Ok(FinderOutput {
            loci: device.alloc(capacity)?,
            flags: device.alloc(capacity)?,
            count: device.alloc(1)?,
        })
    }

    /// Read back the match count.
    pub fn count_matches(&self) -> usize {
        self.count.to_vec()[0] as usize
    }
}

/// The finder kernel.
#[derive(Debug, Clone)]
pub struct FinderKernel {
    /// Chunk bases: `scan_len` owned positions plus window overlap.
    pub chr: DeviceBuffer<u8>,
    /// `[forward pattern | reverse-complement pattern]`, `2 * plen` bytes,
    /// constant memory (the `__constant char* pat` of Table VI).
    pub pat: DeviceBuffer<u8>,
    /// Non-`N` indices per half, `-1` terminated, constant memory.
    pub pat_index: DeviceBuffer<i32>,
    /// Output arrays.
    pub out: FinderOutput,
    /// Number of owned scan positions.
    pub scan_len: u32,
    /// Total bases available in `chr` (scan positions + overlap).
    pub seq_len: u32,
    /// Pattern length.
    pub plen: u32,
    /// Local staging handle for the pattern (`__local char* l_pat`).
    pub l_pat: LocalHandle<u8>,
    /// Local staging handle for the index array (`__local int* l_pat_index`).
    pub l_pat_index: LocalHandle<i32>,
}

impl FinderKernel {
    /// Build the kernel and its local layout for `pattern` over a chunk.
    pub fn new(
        chr: DeviceBuffer<u8>,
        pat: DeviceBuffer<u8>,
        pat_index: DeviceBuffer<i32>,
        out: FinderOutput,
        scan_len: usize,
        seq_len: usize,
        pattern: &CompiledSeq,
    ) -> (FinderKernel, LocalLayout) {
        let mut layout = LocalLayout::new();
        let l_pat = layout.array::<u8>(2 * pattern.plen());
        let l_pat_index = layout.array::<i32>(2 * pattern.plen());
        (
            FinderKernel {
                chr,
                pat,
                pat_index,
                out,
                scan_len: scan_len as u32,
                seq_len: seq_len as u32,
                plen: pattern.plen() as u32,
                l_pat,
                l_pat_index,
            },
            layout,
        )
    }

    /// Check one strand half (`half` 0 = forward, 1 = reverse) at `pos`.
    /// Returns `true` when every compared position matches.
    fn strand_matches(
        &self,
        item: &mut ItemCtx,
        local: &LocalMem,
        pos: usize,
        half: usize,
    ) -> bool {
        let plen = self.plen as usize;
        for j in 0..plen {
            let k = local.load(item, self.l_pat_index, half * plen + j);
            item.ops(1);
            if k < 0 {
                break;
            }
            let pat_c = local.load(item, self.l_pat, half * plen + k as usize);
            // Sequential lane-adjacent read: fully coalesced.
            let chr_c = self.chr.load_coalesced(item, pos + k as usize);
            item.ops(2);
            if is_mismatch(pat_c, chr_c) {
                return false;
            }
        }
        true
    }
}

impl KernelProgram for FinderKernel {
    type Private = ();

    fn name(&self) -> &str {
        "finder"
    }

    fn phases(&self) -> usize {
        2
    }

    fn local_layout(&self) -> LocalLayout {
        let mut layout = LocalLayout::new();
        let _ = layout.array::<u8>(2 * self.plen as usize);
        let _ = layout.array::<i32>(2 * self.plen as usize);
        layout
    }

    fn code_model(&self) -> CodeModel {
        CodeModel::new("finder")
            .pointer_args(6)
            .scalar_args(3)
            .noalias(true)
            .staging(Staging::Parallel)
            .staged_arrays(2)
            .guarded_blocks(2)
            .ladder_arms(13)
            .atomic_output(true)
    }

    fn run_phase(&self, phase: usize, item: &mut ItemCtx, _p: &mut (), local: &mut LocalMem) {
        let plen = self.plen as usize;
        match phase {
            0 => {
                // Cooperative staging: strided over the group.
                let li = item.local_id(0);
                let group = item.local_range(0);
                let mut k = li;
                while k < 2 * plen {
                    let c = self.pat.load(item, k);
                    local.store(item, self.l_pat, k, c);
                    let idx = self.pat_index.load(item, k);
                    local.store(item, self.l_pat_index, k, idx);
                    item.ops(2);
                    k += group;
                }
            }
            _ => {
                let i = item.global_id(0);
                item.ops(2); // bounds checks
                if i >= self.scan_len as usize || i + plen > self.seq_len as usize {
                    return;
                }
                let fwd = self.strand_matches(item, local, i, 0);
                let rev = self.strand_matches(item, local, i, 1);
                let flag = match (fwd, rev) {
                    (true, true) => FLAG_BOTH,
                    (true, false) => FLAG_FORWARD,
                    (false, true) => FLAG_REVERSE,
                    (false, false) => return,
                };
                let slot = self.out.count.atomic_inc(item, 0) as usize;
                self.out.loci.store(item, slot, i as u32);
                self.out.flags.store(item, slot, flag);
            }
        }
    }
}

/// The finder kernel over a 2-bit packed chunk.
///
/// Identical to [`FinderKernel`] except that the chunk arrives on the device
/// in the lossless packed form of [`genome::twobit::PackedSeq`] — ~4x fewer
/// upload bytes — and the kernel decodes it into the `chr` buffer before
/// scanning, so the comparer (which reads `chr` as plain bases) runs
/// unchanged and results stay byte-identical to the unpacked path.
///
/// Phase layout:
///
/// 0. each work-group decodes its own read window (`group span + plen`
///    overlap) from the packed/mask arrays into `chr` — fully coalesced
///    streaming stores;
/// 1. the group applies the (rare) exception bytes that land in its window —
///    a separate phase so the barrier orders them after the decode stores;
/// 2. cooperative pattern staging (the plain finder's phase 0);
/// 3. scan (the plain finder's phase 1).
///
/// Overlapping window positions are written by two adjacent groups, but both
/// write the same decoded value and both re-apply the same exceptions after
/// their own decode, so the result is order-independent.
#[derive(Debug, Clone)]
pub struct PackedFinderKernel {
    /// The plain finder this kernel decodes into and then runs.
    pub inner: FinderKernel,
    /// Packed base bytes (4 bases per byte, LSB first).
    pub packed: DeviceBuffer<u8>,
    /// Ambiguity mask bytes (8 bases per byte, LSB first).
    pub mask: DeviceBuffer<u8>,
    /// Exception positions (sorted ascending), `n_exc` entries used.
    pub exc_pos: DeviceBuffer<u32>,
    /// Exception bytes, parallel to `exc_pos`.
    pub exc_val: DeviceBuffer<u8>,
    /// Number of valid exception entries.
    pub n_exc: u32,
}

impl KernelProgram for PackedFinderKernel {
    type Private = ();

    fn name(&self) -> &str {
        "finder_packed"
    }

    fn phases(&self) -> usize {
        4
    }

    fn local_layout(&self) -> LocalLayout {
        self.inner.local_layout()
    }

    fn code_model(&self) -> CodeModel {
        CodeModel::new("finder_packed")
            .pointer_args(10)
            .scalar_args(4)
            .noalias(true)
            .staging(Staging::Parallel)
            .staged_arrays(2)
            .guarded_blocks(3)
            .ladder_arms(13)
            .atomic_output(true)
            .extra_valu(16)
    }

    fn run_phase(&self, phase: usize, item: &mut ItemCtx, p: &mut (), local: &mut LocalMem) {
        use genome::twobit::code_to_char;
        let plen = self.inner.plen as usize;
        let seq_len = self.inner.seq_len as usize;
        let li = item.local_id(0);
        let group = item.local_range(0);
        let start = item.group(0) * group;
        let end = (start + group + plen).min(seq_len);
        match phase {
            0 => {
                // Strided decode of the group's read window: lane-adjacent
                // packed/mask reads and chr writes, all coalesced.
                let mut k = start + li;
                while k < end {
                    let byte = self.packed.load_coalesced(item, k / 4);
                    let mbyte = self.mask.load_coalesced(item, k / 8);
                    item.ops(4); // shifts, mask test, select
                    let c = if (mbyte >> (k % 8)) & 1 == 1 {
                        b'N'
                    } else {
                        code_to_char(byte >> ((k % 4) * 2))
                    };
                    self.inner.chr.store_coalesced(item, k, c);
                    k += group;
                }
            }
            1 => {
                // Cooperative pass over the exception list (degenerate IUPAC
                // codes and case oddities — empty for plain ACGT/N genomes):
                // each group applies the entries inside its own window.
                let n = self.n_exc as usize;
                let mut e = li;
                while e < n {
                    let pos = self.exc_pos.load_coalesced(item, e) as usize;
                    item.ops(2); // window test
                    if pos >= start && pos < end {
                        let v = self.exc_val.load_coalesced(item, e);
                        self.inner.chr.store(item, pos, v); // scattered, rare
                    }
                    e += group;
                }
            }
            _ => self.inner.run_phase(phase - 2, item, p, local),
        }
    }
}

/// Convenience: run the finder over a chunk already resident on `device`.
///
/// Returns the number of matches.
///
/// # Errors
///
/// Propagates launch failures.
pub fn run_finder(
    device: &Device,
    kernel: &FinderKernel,
    work_group_size: usize,
) -> SimResult<usize> {
    let nd = NdRange::linear_cover(kernel.scan_len as usize, work_group_size);
    device.launch(kernel, nd)?;
    Ok(kernel.out.count_matches())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, ExecMode};

    fn device() -> Device {
        Device::with_mode(DeviceSpec::mi100(), ExecMode::Sequential)
    }

    fn run(seq: &[u8], pattern: &[u8]) -> Vec<(u32, u8)> {
        let device = device();
        let compiled = CompiledSeq::compile(pattern);
        let chr = device.alloc_from_slice(seq).unwrap();
        let pat = device.alloc_constant_from_slice(compiled.comp()).unwrap();
        let pat_index = device
            .alloc_constant_from_slice(compiled.comp_index())
            .unwrap();
        let out = FinderOutput::allocate(&device, seq.len()).unwrap();
        let scan_len = seq.len();
        let (kernel, _layout) = FinderKernel::new(
            chr,
            pat,
            pat_index,
            out,
            scan_len,
            seq.len(),
            &compiled,
        );
        let n = run_finder(&device, &kernel, 64).unwrap();
        let loci = kernel.out.loci.to_vec();
        let flags = kernel.out.flags.to_vec();
        let mut hits: Vec<(u32, u8)> = (0..n).map(|s| (loci[s], flags[s])).collect();
        hits.sort_unstable();
        hits
    }

    #[test]
    fn finds_forward_pam_sites() {
        // Pattern NGG: any base then GG.
        //            position: 0123456
        let hits = run(b"AAGGTGG", b"NGG");
        // Forward NGG at 1 (AGG) and 4 (TGG). Reverse pattern is CCN:
        // no CC in the sequence.
        assert_eq!(hits, vec![(1, FLAG_FORWARD), (4, FLAG_FORWARD)]);
    }

    #[test]
    fn finds_reverse_pam_sites() {
        // CCA at 0 is the reverse-complement image of TGG.
        let hits = run(b"CCAAAA", b"NGG");
        assert_eq!(hits, vec![(0, FLAG_REVERSE)]);
    }

    #[test]
    fn flags_sites_matching_both_strands() {
        // CCTAGG: "CC.." matches reverse at 0..2 window CCT? window is 3
        // long: positions 0 (CCT: rev pattern CCN ✓; fwd needs .GG ✗) -> 2,
        // position 3 (AGG fwd ✓).
        let hits = run(b"CCTAGG", b"NGG");
        assert!(hits.contains(&(0, FLAG_REVERSE)));
        assert!(hits.contains(&(3, FLAG_FORWARD)));
        // A window that is both: CCGG with pattern NGG -> position 1 "CGG"
        // forward ✓; reverse CCN ✓ at position 0.
        let hits = run(b"CCGG", b"NGG");
        assert!(hits.contains(&(1, FLAG_FORWARD)));
        assert!(hits.contains(&(0, FLAG_REVERSE)));
    }

    #[test]
    fn degenerate_pam_matches_a_and_g() {
        // NRG: R = A/G, so AAG and AGG both match forward.
        let hits = run(b"AAGCAGG", b"NRG");
        let fwd: Vec<u32> = hits
            .iter()
            .filter(|&&(_, f)| f == FLAG_FORWARD)
            .map(|&(p, _)| p)
            .collect();
        assert!(fwd.contains(&0), "AAG matches NRG");
        assert!(fwd.contains(&4), "AGG matches NRG");
    }

    #[test]
    fn n_runs_produce_no_sites() {
        let hits = run(&[b'N'; 100], b"NGG");
        assert!(hits.is_empty(), "masked bases match no PAM");
    }

    #[test]
    fn windows_beyond_seq_len_are_skipped() {
        // Only position 0 has a full window.
        let hits = run(b"AGG", b"NGG");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn scan_len_limits_ownership() {
        // Same sequence, but only the first 2 positions owned.
        let device = device();
        let compiled = CompiledSeq::compile(b"NGG");
        let seq = b"AGGTGG";
        let chr = device.alloc_from_slice(seq).unwrap();
        let pat = device.alloc_constant_from_slice(compiled.comp()).unwrap();
        let pat_index = device
            .alloc_constant_from_slice(compiled.comp_index())
            .unwrap();
        let out = FinderOutput::allocate(&device, seq.len()).unwrap();
        let (kernel, _) = FinderKernel::new(chr, pat, pat_index, out, 2, seq.len(), &compiled);
        let n = run_finder(&device, &kernel, 64).unwrap();
        let loci = &kernel.out.loci.to_vec()[..n];
        assert_eq!(loci, &[0], "position 3's TGG is outside the owned range");
    }

    fn run_packed(seq: &[u8], pattern: &[u8]) -> (Vec<(u32, u8)>, Vec<u8>) {
        use genome::twobit::PackedSeq;
        let device = device();
        let compiled = CompiledSeq::compile(pattern);
        let chr = device.alloc::<u8>(seq.len()).unwrap();
        let pat = device.alloc_constant_from_slice(compiled.comp()).unwrap();
        let pat_index = device
            .alloc_constant_from_slice(compiled.comp_index())
            .unwrap();
        let out = FinderOutput::allocate(&device, seq.len()).unwrap();
        let packed = PackedSeq::encode(seq);
        let (pos, val) = packed.exception_arrays();
        let (inner, _) = FinderKernel::new(chr, pat, pat_index, out, seq.len(), seq.len(), &compiled);
        let kernel = PackedFinderKernel {
            inner,
            packed: device.alloc_from_slice(packed.packed_bytes()).unwrap(),
            mask: device.alloc_from_slice(packed.mask_bytes()).unwrap(),
            exc_pos: device
                .alloc_from_slice(if pos.is_empty() { &[0u32] } else { &pos[..] })
                .unwrap(),
            exc_val: device
                .alloc_from_slice(if val.is_empty() { &[0u8] } else { &val[..] })
                .unwrap(),
            n_exc: pos.len() as u32,
        };
        let nd = NdRange::linear_cover(seq.len(), 64);
        device.launch(&kernel, nd).unwrap();
        let n = kernel.inner.out.count_matches();
        let loci = kernel.inner.out.loci.to_vec();
        let flags = kernel.inner.out.flags.to_vec();
        let mut hits: Vec<(u32, u8)> = (0..n).map(|s| (loci[s], flags[s])).collect();
        hits.sort_unstable();
        (hits, kernel.inner.chr.to_vec())
    }

    #[test]
    fn packed_finder_matches_plain_finder_and_decodes_exactly() {
        // Degenerate codes, lowercase and N runs all round-trip through the
        // on-device decode, and the hits match the plain finder's.
        let mut seq = b"NNNNAGGtggCCAaagRYSWKMaggNNNN".to_vec();
        seq.extend(std::iter::repeat_n(*b"ACGTAGGCCT", 40).flatten());
        for pattern in [&b"NGG"[..], b"NRG"] {
            let plain = run(&seq, pattern);
            let (hits, decoded) = run_packed(&seq, pattern);
            assert_eq!(decoded, seq, "on-device decode must be byte-exact");
            assert_eq!(hits, plain, "pattern {}", std::str::from_utf8(pattern).unwrap());
            assert!(!hits.is_empty());
        }
    }

    #[test]
    fn packed_finder_stores_are_coalesced_class() {
        let seq = vec![b'A'; 256];
        let device = device();
        let compiled = CompiledSeq::compile(b"NGG");
        let chr = device.alloc::<u8>(256).unwrap();
        let pat = device.alloc_constant_from_slice(compiled.comp()).unwrap();
        let pat_index = device
            .alloc_constant_from_slice(compiled.comp_index())
            .unwrap();
        let out = FinderOutput::allocate(&device, 256).unwrap();
        let packed = genome::twobit::PackedSeq::encode(&seq);
        let (inner, _) = FinderKernel::new(chr, pat, pat_index, out, 256, 256, &compiled);
        let kernel = PackedFinderKernel {
            inner,
            packed: device.alloc_from_slice(packed.packed_bytes()).unwrap(),
            mask: device.alloc_from_slice(packed.mask_bytes()).unwrap(),
            exc_pos: device.alloc_from_slice(&[0u32]).unwrap(),
            exc_val: device.alloc_from_slice(&[0u8]).unwrap(),
            n_exc: 0,
        };
        let report = device.launch(&kernel, NdRange::linear_cover(256, 64)).unwrap();
        assert!(report.counters.global_coalesced_stores >= 256);
        assert_eq!(
            report.counters.global_stores, 0,
            "no scattered stores without exceptions or hits"
        );
    }

    #[test]
    fn finder_reads_are_cached_class() {
        let device = device();
        let compiled = CompiledSeq::compile(b"NGG");
        let seq = vec![b'A'; 256];
        let chr = device.alloc_from_slice(&seq).unwrap();
        let pat = device.alloc_constant_from_slice(compiled.comp()).unwrap();
        let pat_index = device
            .alloc_constant_from_slice(compiled.comp_index())
            .unwrap();
        let out = FinderOutput::allocate(&device, seq.len()).unwrap();
        let (kernel, _) = FinderKernel::new(chr, pat, pat_index, out, 256, 256, &compiled);
        let nd = NdRange::linear_cover(256, 64);
        let report = device.launch(&kernel, nd).unwrap();
        assert_eq!(
            report.counters.global_loads, 0,
            "all reference reads go through the coalesced path"
        );
        assert!(report.counters.global_coalesced_loads > 0);
        assert!(report.counters.constant_loads > 0, "pattern staging reads");
    }
}
