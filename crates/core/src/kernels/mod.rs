//! The device kernels: `finder` (PAM-site search) and `comparer` (mismatch
//! counting), in the paper's five optimization stages.

mod comparer;
mod finder;
mod fourbit;
mod ladder;
mod multi;
mod twobit;

pub mod cl;
pub mod specialize;

pub use comparer::{run_comparer, ComparerKernel, ComparerOutput};
pub use finder::{run_finder, FinderKernel, FinderOutput, PackedFinderKernel};
pub use fourbit::{FourBitComparerKernel, NibbleFinderKernel};
pub use ladder::{ladder_rank, LADDER};
pub use multi::{
    char_multi_model, fourbit_multi_model, twobit_multi_model, FourBitMultiComparerKernel,
    GuideThresholds, MultiComparerKernel, MultiComparerOutput, TwoBitMultiComparerKernel,
    GUIDE_BLOCK,
};
pub use specialize::{
    CompiledVariant, FoldedPattern, SpecializedComparerKernel, SpecializedFourBitComparerKernel,
    SpecializedNibbleFinderKernel, SpecializedTwoBitComparerKernel, VariantCache,
    VariantCacheStats, VariantKind,
};
pub use twobit::TwoBitComparerKernel;

use std::fmt;

/// Cumulative optimization level of the comparer kernel (§IV.B of the
/// paper). Each level includes all previous ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// The ported baseline of Listing 1.
    #[default]
    Base,
    /// opt1: `__restrict` on every pointer argument — the compiler no longer
    /// re-issues the reference load in each ladder arm.
    Opt1,
    /// opt2: `loci[i]` and `flag[i]` are read once into registers instead of
    /// being re-loaded at every use site.
    Opt2,
    /// opt3: all work-items of a group cooperate in fetching the pattern
    /// arrays to shared local memory, instead of work-item 0 copying
    /// serially.
    Opt3,
    /// opt4: the pattern character is fetched from shared local memory into
    /// a register once per loop iteration — fewer LDS reads, but the extra
    /// register pressure drops occupancy from 10 to 9.
    Opt4,
}

impl OptLevel {
    /// All levels, in Fig. 2 order.
    pub const ALL: [OptLevel; 5] = [
        OptLevel::Base,
        OptLevel::Opt1,
        OptLevel::Opt2,
        OptLevel::Opt3,
        OptLevel::Opt4,
    ];

    /// The short label used by the paper's figures (`base`, `opt1`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::Base => "base",
            OptLevel::Opt1 => "opt1",
            OptLevel::Opt2 => "opt2",
            OptLevel::Opt3 => "opt3",
            OptLevel::Opt4 => "opt4",
        }
    }

    /// Whether pointer arguments are `__restrict`-qualified (opt1+).
    pub fn has_restrict(&self) -> bool {
        *self >= OptLevel::Opt1
    }

    /// Whether `loci[i]`/`flag[i]` are cached in registers (opt2+).
    pub fn caches_global_scalars(&self) -> bool {
        *self >= OptLevel::Opt2
    }

    /// Whether local staging is cooperative (opt3+).
    pub fn parallel_staging(&self) -> bool {
        *self >= OptLevel::Opt3
    }

    /// Whether pattern characters are registered per iteration (opt4).
    pub fn caches_local_reads(&self) -> bool {
        *self >= OptLevel::Opt4
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        assert!(!OptLevel::Base.has_restrict());
        assert!(OptLevel::Opt1.has_restrict());
        assert!(!OptLevel::Opt1.caches_global_scalars());
        assert!(OptLevel::Opt2.caches_global_scalars());
        assert!(OptLevel::Opt2.has_restrict(), "opt2 includes opt1");
        assert!(!OptLevel::Opt2.parallel_staging());
        assert!(OptLevel::Opt3.parallel_staging());
        assert!(!OptLevel::Opt3.caches_local_reads());
        assert!(OptLevel::Opt4.caches_local_reads());
        assert!(OptLevel::Opt4.parallel_staging(), "opt4 includes opt3");
    }

    #[test]
    fn labels_match_figure_2() {
        let labels: Vec<&str> = OptLevel::ALL.iter().map(|o| o.label()).collect();
        assert_eq!(labels, ["base", "opt1", "opt2", "opt3", "opt4"]);
        assert_eq!(OptLevel::Opt3.to_string(), "opt3");
    }
}
