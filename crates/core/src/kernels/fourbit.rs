//! The 4-bit (nibble) comparer and finder — the universal packed path.
//!
//! The 2-bit kernels ([`super::twobit`], [`super::finder::PackedFinderKernel`])
//! win on concrete genomes but lean on an exception list for everything the
//! 2-bit code can't express; a chunk dense in soft-masked or degenerate bases
//! either bloats its upload with exceptions or falls back to the char
//! comparer entirely. The nibble encoding ([`genome::fourbit`]) stores every
//! byte's IUPAC possibility mask directly, and since the match rule the
//! kernels implement is *subset-of-mask* (`g != 0 && (g & p) == g`,
//! [`genome::base::matches`]), a kernel reading nibbles reproduces the char
//! comparer bit for bit on any input — no exceptions, no fallback — at half
//! a byte per base of device traffic.
//!
//! Two kernels live here:
//!
//! * [`FourBitComparerKernel`] — the comparer over nibble words. Builds on
//!   the opt3 shape (restrict, registered scalars, cooperative staging) like
//!   the 2-bit comparer; the per-base decode is one shift-and-mask, cheaper
//!   than the 2-bit kernel's packed-byte + mask-byte merge.
//! * [`NibbleFinderKernel`] — the finder over a nibble-packed chunk: each
//!   work-group decodes its read window into the `chr` scratch (uppercase
//!   canonical codes via [`mask_to_char`]) and then runs the plain finder's
//!   phases unchanged. No exception phase: the nibbles are already exact for
//!   matching purposes.

use gpu_sim::isa::{CodeModel, Staging};
use gpu_sim::kernel::{KernelProgram, LocalHandle, LocalLayout, LocalMem};
use gpu_sim::{DeviceBuffer, ItemCtx};

use genome::base::base_mask;
use genome::fourbit::mask_to_char;

use super::comparer::ComparerOutput;
use super::finder::{FinderKernel, FLAG_BOTH, FLAG_FORWARD, FLAG_REVERSE};
use crate::pattern::CompiledSeq;

/// The 4-bit comparer kernel: mismatch counting by mask intersection on
/// nibble words.
#[derive(Debug, Clone)]
pub struct FourBitComparerKernel {
    /// Nibble-packed chunk bases, 2 per byte, low nibble first.
    pub nibbles: DeviceBuffer<u8>,
    /// Candidate loci (chunk-relative).
    pub loci: DeviceBuffer<u32>,
    /// Strand flags from the finder.
    pub flags: DeviceBuffer<u8>,
    /// `[forward query | revcomp query]`, global memory.
    pub comp: DeviceBuffer<u8>,
    /// Non-`N` indices, `-1` terminated, global memory.
    pub comp_index: DeviceBuffer<i32>,
    /// Number of candidates.
    pub locicnt: u32,
    /// Pattern length.
    pub plen: u32,
    /// Mismatch threshold.
    pub threshold: u16,
    /// Output arrays.
    pub out: ComparerOutput,
    /// Local staging handle for the query characters.
    pub l_comp: LocalHandle<u8>,
    /// Local staging handle for the index array.
    pub l_comp_index: LocalHandle<i32>,
}

impl FourBitComparerKernel {
    /// Build the kernel and its local layout.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        nibbles: DeviceBuffer<u8>,
        loci: DeviceBuffer<u32>,
        flags: DeviceBuffer<u8>,
        comp: DeviceBuffer<u8>,
        comp_index: DeviceBuffer<i32>,
        locicnt: usize,
        threshold: u16,
        out: ComparerOutput,
        query: &CompiledSeq,
    ) -> (FourBitComparerKernel, LocalLayout) {
        let mut layout = LocalLayout::new();
        let l_comp = layout.array::<u8>(2 * query.plen());
        let l_comp_index = layout.array::<i32>(2 * query.plen());
        (
            FourBitComparerKernel {
                nibbles,
                loci,
                flags,
                comp,
                comp_index,
                locicnt: locicnt as u32,
                plen: query.plen() as u32,
                threshold,
                out,
                l_comp,
                l_comp_index,
            },
            layout,
        )
    }

    /// The possibility mask at absolute position `pos`, reusing the last
    /// nibble word when `pos` falls in the same byte (`cache` holds
    /// `(byte_index, byte)`). Two bases share a byte, so sequential
    /// positions cost one load per pair.
    fn mask_at(&self, item: &mut ItemCtx, cache: &mut (usize, u8), pos: usize) -> u8 {
        let idx = pos / 2;
        if cache.0 != idx {
            cache.0 = idx;
            cache.1 = self.nibbles.load(item, idx);
        }
        item.ops(2); // shift + mask
        (cache.1 >> ((pos % 2) * 4)) & 0b1111
    }

    fn compare_strand(&self, item: &mut ItemCtx, local: &LocalMem, locus: u32, half: usize) {
        let plen = self.plen as usize;
        let mut lmm: u16 = 0;
        // usize::MAX sentinel forces the first load.
        let mut cache = (usize::MAX, 0u8);
        item.ops(2);

        for j in 0..plen {
            let k = local.load(item, self.l_comp_index, half * plen + j);
            item.ops(1);
            if k < 0 {
                break;
            }
            let k = k as usize;
            let pat_c = local.load(item, self.l_comp, half * plen + k);
            let g = self.mask_at(item, &mut cache, locus as usize + k);
            // Subset test replaces the char kernel's comparison ladder: the
            // genome mask must be non-empty and contained in the pattern's.
            let p = base_mask(pat_c);
            item.ops(3); // mask lookup + and + compares
            if !(g != 0 && (g & p) == g) {
                lmm += 1;
                item.ops(1);
                if lmm > self.threshold {
                    break;
                }
            }
        }

        item.ops(1);
        if lmm <= self.threshold {
            let slot = self.out.count.atomic_inc(item, 0) as usize;
            self.out.mm_count.store(item, slot, lmm);
            self.out
                .direction
                .store(item, slot, if half == 0 { b'+' } else { b'-' });
            self.out.loci.store(item, slot, locus);
        }
    }
}

impl KernelProgram for FourBitComparerKernel {
    type Private = ();

    fn name(&self) -> &str {
        "comparer-4bit"
    }

    fn phases(&self) -> usize {
        2
    }

    fn local_layout(&self) -> LocalLayout {
        let mut layout = LocalLayout::new();
        let _ = layout.array::<u8>(2 * self.plen as usize);
        let _ = layout.array::<i32>(2 * self.plen as usize);
        layout
    }

    fn code_model(&self) -> CodeModel {
        CodeModel::new("comparer-4bit")
            .pointer_args(9)
            .scalar_args(3)
            .noalias(true)
            .cached_global_scalars(2)
            .staging(Staging::Parallel)
            .staged_arrays(2)
            .guarded_blocks(2)
            .ladder_arms(13)
            .atomic_output(true)
            .extra_valu(24) // one shift-and-mask decode + subset test
    }

    fn run_phase(&self, phase: usize, item: &mut ItemCtx, _p: &mut (), local: &mut LocalMem) {
        let plen = self.plen as usize;
        match phase {
            0 => {
                let li = item.local_id(0);
                let group = item.local_range(0);
                let mut k = li;
                while k < 2 * plen {
                    let c = self.comp.load(item, k);
                    local.store(item, self.l_comp, k, c);
                    let idx = self.comp_index.load(item, k);
                    local.store(item, self.l_comp_index, k, idx);
                    item.ops(2);
                    k += group;
                }
            }
            _ => {
                let i = item.global_id(0);
                item.ops(1);
                if i >= self.locicnt as usize {
                    return;
                }
                let flag = self.flags.load(item, i);
                let locus = self.loci.load(item, i);
                item.ops(2);
                if flag == FLAG_BOTH || flag == FLAG_FORWARD {
                    self.compare_strand(item, local, locus, 0);
                }
                item.ops(2);
                if flag == FLAG_BOTH || flag == FLAG_REVERSE {
                    self.compare_strand(item, local, locus, 1);
                }
            }
        }
    }
}

/// The finder over a nibble-packed chunk.
///
/// Phase layout:
///
/// 0. each work-group decodes its own read window (`group span + plen`
///    overlap) from the nibble array into `chr` — each base becomes the
///    canonical uppercase code of its mask ([`mask_to_char`]), which matches
///    identically to the original byte;
/// 1. cooperative pattern staging (the plain finder's phase 0);
/// 2. scan (the plain finder's phase 1).
///
/// Unlike [`super::finder::PackedFinderKernel`] there is no exception phase:
/// the nibble mask is already exact for matching, so nothing needs patching.
/// Overlapping window positions are written by two adjacent groups with the
/// same decoded value, so the result is order-independent.
#[derive(Debug, Clone)]
pub struct NibbleFinderKernel {
    /// The plain finder this kernel decodes into and then runs.
    pub inner: FinderKernel,
    /// Nibble-packed chunk bases (2 per byte, low nibble first).
    pub nibbles: DeviceBuffer<u8>,
}

impl KernelProgram for NibbleFinderKernel {
    type Private = ();

    fn name(&self) -> &str {
        "finder_nibble"
    }

    fn phases(&self) -> usize {
        3
    }

    fn local_layout(&self) -> LocalLayout {
        self.inner.local_layout()
    }

    fn code_model(&self) -> CodeModel {
        CodeModel::new("finder_nibble")
            .pointer_args(7)
            .scalar_args(3)
            .noalias(true)
            .staging(Staging::Parallel)
            .staged_arrays(2)
            .guarded_blocks(2)
            .ladder_arms(13)
            .atomic_output(true)
            .extra_valu(8)
    }

    fn run_phase(&self, phase: usize, item: &mut ItemCtx, p: &mut (), local: &mut LocalMem) {
        match phase {
            0 => {
                // Strided decode of the group's read window: lane-adjacent
                // nibble reads and chr writes, all coalesced.
                let plen = self.inner.plen as usize;
                let seq_len = self.inner.seq_len as usize;
                let li = item.local_id(0);
                let group = item.local_range(0);
                let start = item.group(0) * group;
                let end = (start + group + plen).min(seq_len);
                let mut k = start + li;
                while k < end {
                    let byte = self.nibbles.load_coalesced(item, k / 2);
                    item.ops(3); // shift, mask, LUT
                    let c = mask_to_char((byte >> ((k % 2) * 4)) & 0b1111);
                    self.inner.chr.store_coalesced(item, k, c);
                    k += group;
                }
            }
            _ => self.inner.run_phase(phase - 1, item, p, local),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{ComparerKernel, FinderOutput, OptLevel};
    use genome::fourbit::NibbleSeq;
    use gpu_sim::{Device, DeviceSpec, ExecMode, NdRange};

    fn device() -> Device {
        Device::with_mode(DeviceSpec::mi100(), ExecMode::Sequential)
    }

    fn run_4bit(
        seq: &[u8],
        query: &[u8],
        candidates: &[(u32, u8)],
        threshold: u16,
    ) -> (Vec<(u32, u8, u16)>, gpu_sim::LaunchReport) {
        let device = device();
        let compiled = CompiledSeq::compile(query);
        let packed = NibbleSeq::encode(seq);
        let nibbles = device.alloc_from_slice(packed.nibble_bytes()).unwrap();
        let loci_host: Vec<u32> = candidates.iter().map(|&(p, _)| p).collect();
        let flags_host: Vec<u8> = candidates.iter().map(|&(_, f)| f).collect();
        let loci = device.alloc_from_slice(&loci_host).unwrap();
        let flags = device.alloc_from_slice(&flags_host).unwrap();
        let comp = device.alloc_from_slice(compiled.comp()).unwrap();
        let comp_index = device.alloc_from_slice(compiled.comp_index()).unwrap();
        let out = ComparerOutput::allocate(&device, candidates.len() * 2 + 1).unwrap();
        let (kernel, _) = FourBitComparerKernel::new(
            nibbles,
            loci,
            flags,
            comp,
            comp_index,
            candidates.len(),
            threshold,
            out,
            &compiled,
        );
        let nd = NdRange::linear_cover(candidates.len(), 256);
        let report = device.launch(&kernel, nd).unwrap();
        let mut entries = kernel.out.entries();
        entries.sort_unstable();
        (entries, report)
    }

    fn run_char(
        seq: &[u8],
        query: &[u8],
        candidates: &[(u32, u8)],
        threshold: u16,
    ) -> (Vec<(u32, u8, u16)>, gpu_sim::LaunchReport) {
        let device = device();
        let compiled = CompiledSeq::compile(query);
        let chr = device.alloc_from_slice(seq).unwrap();
        let loci_host: Vec<u32> = candidates.iter().map(|&(p, _)| p).collect();
        let flags_host: Vec<u8> = candidates.iter().map(|&(_, f)| f).collect();
        let loci = device.alloc_from_slice(&loci_host).unwrap();
        let flags = device.alloc_from_slice(&flags_host).unwrap();
        let comp = device.alloc_from_slice(compiled.comp()).unwrap();
        let comp_index = device.alloc_from_slice(compiled.comp_index()).unwrap();
        let out = ComparerOutput::allocate(&device, candidates.len() * 2 + 1).unwrap();
        let (kernel, _) = ComparerKernel::new(
            OptLevel::Opt3,
            chr,
            loci,
            flags,
            comp,
            comp_index,
            candidates.len(),
            threshold,
            out,
            &compiled,
        );
        let nd = NdRange::linear_cover(candidates.len(), 256);
        let report = device.launch(&kernel, nd).unwrap();
        let mut entries = kernel.out.entries();
        entries.sort_unstable();
        (entries, report)
    }

    #[test]
    fn matches_char_comparer_on_concrete_genomes() {
        let seq = b"ACGTACGTACGTAAGGCCTTACGTACGT";
        let query = b"ACGTACNN";
        let candidates: Vec<(u32, u8)> = (0..20).map(|p| (p, FLAG_BOTH)).collect();
        let (a, _) = run_4bit(seq, query, &candidates, 3);
        let (b, _) = run_char(seq, query, &candidates, 3);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn matches_char_comparer_on_exception_dense_sequences() {
        // Soft-masked runs, every degenerate code, U and invalid bytes: the
        // 2-bit path would fall back to char here; the nibble path must
        // reproduce char results exactly.
        let mut seq = b"acgtacgtRYSWKMBDHVNnryswkmbdhvUu-@acgtACGT".to_vec();
        seq.extend(std::iter::repeat_n(*b"aCgTtagRYn", 20).flatten());
        for query in [&b"ACGTACNN"[..], b"NRGNNacgt", b"RYSWKMBD"] {
            let candidates: Vec<(u32, u8)> =
                (0..seq.len() as u32 - 10).map(|p| (p, FLAG_BOTH)).collect();
            for threshold in [0u16, 2, 5] {
                let (a, _) = run_4bit(&seq, query, &candidates, threshold);
                let (b, _) = run_char(&seq, query, &candidates, threshold);
                assert_eq!(
                    a,
                    b,
                    "query {} threshold {threshold}",
                    std::str::from_utf8(query).unwrap()
                );
            }
        }
    }

    #[test]
    fn masked_bases_count_as_mismatches() {
        let (entries, _) = run_4bit(b"ACGNN", b"ACGTA", &[(0, FLAG_FORWARD)], 4);
        assert_eq!(entries, vec![(0, b'+', 2)]);
    }

    #[test]
    fn nibble_loads_are_fewer_than_char_loads() {
        let seq: Vec<u8> = (0..4096u32)
            .map(|i| b"acgt"[(i as usize * 13 + 5) % 4]) // all soft-masked
            .collect();
        let query = b"GGCCGACCTGTCGCTGACGCNNN";
        let candidates: Vec<(u32, u8)> = (0..2048).map(|p| (p, FLAG_BOTH)).collect();
        let (_, nibble_report) = run_4bit(&seq, query, &candidates, 22);
        let (_, char_report) = run_char(&seq, query, &candidates, 22);
        // With threshold 22 (no early exit) every compared base costs the
        // char kernel one load; the nibble kernel shares bytes across two.
        assert!(
            (nibble_report.counters.global_loads as f64)
                < char_report.counters.global_loads as f64 * 0.75,
            "nibble {} vs char {}",
            nibble_report.counters.global_loads,
            char_report.counters.global_loads
        );
    }

    fn run_plain_finder(seq: &[u8], pattern: &[u8]) -> Vec<(u32, u8)> {
        let device = device();
        let compiled = CompiledSeq::compile(pattern);
        let chr = device.alloc_from_slice(seq).unwrap();
        let pat = device.alloc_constant_from_slice(compiled.comp()).unwrap();
        let pat_index = device
            .alloc_constant_from_slice(compiled.comp_index())
            .unwrap();
        let out = FinderOutput::allocate(&device, seq.len()).unwrap();
        let (kernel, _) =
            FinderKernel::new(chr, pat, pat_index, out, seq.len(), seq.len(), &compiled);
        let nd = NdRange::linear_cover(seq.len(), 64);
        device.launch(&kernel, nd).unwrap();
        let n = kernel.out.count_matches();
        let loci = kernel.out.loci.to_vec();
        let flags = kernel.out.flags.to_vec();
        let mut hits: Vec<(u32, u8)> = (0..n).map(|s| (loci[s], flags[s])).collect();
        hits.sort_unstable();
        hits
    }

    fn run_nibble_finder(seq: &[u8], pattern: &[u8]) -> (Vec<(u32, u8)>, Vec<u8>) {
        let device = device();
        let compiled = CompiledSeq::compile(pattern);
        let packed = NibbleSeq::encode(seq);
        let chr = device.alloc::<u8>(seq.len()).unwrap();
        let pat = device.alloc_constant_from_slice(compiled.comp()).unwrap();
        let pat_index = device
            .alloc_constant_from_slice(compiled.comp_index())
            .unwrap();
        let out = FinderOutput::allocate(&device, seq.len()).unwrap();
        let (inner, _) =
            FinderKernel::new(chr, pat, pat_index, out, seq.len(), seq.len(), &compiled);
        let kernel = NibbleFinderKernel {
            inner,
            nibbles: device.alloc_from_slice(packed.nibble_bytes()).unwrap(),
        };
        let nd = NdRange::linear_cover(seq.len(), 64);
        device.launch(&kernel, nd).unwrap();
        let n = kernel.inner.out.count_matches();
        let loci = kernel.inner.out.loci.to_vec();
        let flags = kernel.inner.out.flags.to_vec();
        let mut hits: Vec<(u32, u8)> = (0..n).map(|s| (loci[s], flags[s])).collect();
        hits.sort_unstable();
        (hits, kernel.inner.chr.to_vec())
    }

    #[test]
    fn nibble_finder_matches_plain_finder_on_masked_sequences() {
        let mut seq = b"NNNNAGGtggCCAaagRYSWKMaggNNNN".to_vec();
        seq.extend(std::iter::repeat_n(*b"acgtaggcct", 40).flatten());
        for pattern in [&b"NGG"[..], b"NRG"] {
            let plain = run_plain_finder(&seq, pattern);
            let (hits, decoded) = run_nibble_finder(&seq, pattern);
            // The decode canonicalizes case (matching is case-insensitive).
            let canonical: Vec<u8> = seq
                .iter()
                .map(|&b| mask_to_char(base_mask(b)))
                .collect();
            assert_eq!(decoded, canonical, "decode is the canonical code of each mask");
            assert_eq!(hits, plain, "pattern {}", std::str::from_utf8(pattern).unwrap());
            assert!(!hits.is_empty());
        }
    }

    #[test]
    fn nibble_finder_stores_are_coalesced_class() {
        let seq = vec![b'a'; 256]; // soft-masked everywhere
        let device = device();
        let compiled = CompiledSeq::compile(b"NGG");
        let packed = NibbleSeq::encode(&seq);
        let chr = device.alloc::<u8>(256).unwrap();
        let pat = device.alloc_constant_from_slice(compiled.comp()).unwrap();
        let pat_index = device
            .alloc_constant_from_slice(compiled.comp_index())
            .unwrap();
        let out = FinderOutput::allocate(&device, 256).unwrap();
        let (inner, _) = FinderKernel::new(chr, pat, pat_index, out, 256, 256, &compiled);
        let kernel = NibbleFinderKernel {
            inner,
            nibbles: device.alloc_from_slice(packed.nibble_bytes()).unwrap(),
        };
        let report = device
            .launch(&kernel, NdRange::linear_cover(256, 64))
            .unwrap();
        assert!(report.counters.global_coalesced_stores >= 256);
        assert_eq!(
            report.counters.global_stores, 0,
            "no scattered stores: the nibble path has no exceptions"
        );
    }
}
