//! OpenCL bindings of the kernels: the `__kernel` entry points the OpenCL
//! host pipeline compiles into its program object (Table VI of the paper).
//!
//! These adapters translate the positional, type-erased `clSetKernelArg`
//! argument lists into the typed kernel structs, validating types, counts
//! and `__local` allocation sizes the way a real OpenCL runtime validates
//! argument sizes.

use gpu_sim::executor::LaunchReport;
use gpu_sim::kernel::{KernelProgram, LocalLayout};
use gpu_sim::{Device, NdRange, SimResult};

use opencl_rt::{BoundKernel, ClError, ClKernelFunction, ClResult, KernelArg};

use std::sync::Arc;

use super::comparer::{ComparerKernel, ComparerOutput};
use super::finder::{FinderKernel, FinderOutput, PackedFinderKernel};
use super::fourbit::{FourBitComparerKernel, NibbleFinderKernel};
use super::multi::{
    FourBitMultiComparerKernel, GuideThresholds, MultiComparerKernel, MultiComparerOutput,
    TwoBitMultiComparerKernel,
};
use super::specialize::{
    CompiledVariant, SpecializedComparerKernel, SpecializedFourBitComparerKernel,
    SpecializedNibbleFinderKernel, SpecializedTwoBitComparerKernel, VariantKind,
};
use super::twobit::TwoBitComparerKernel;
use super::OptLevel;

struct Bound<K: KernelProgram>(K);

impl<K: KernelProgram> BoundKernel for Bound<K> {
    fn launch(&self, device: &Device, nd: NdRange) -> SimResult<LaunchReport> {
        device.launch(&self.0, nd)
    }
}

fn expect_local_bytes(arg: &KernelArg, index: usize, expected: usize) -> ClResult<()> {
    let bytes = arg.as_local_bytes(index)?;
    if bytes != expected {
        return Err(ClError::InvalidArgValue {
            index,
            expected: format!("__local allocation of {expected} bytes, got {bytes}"),
        });
    }
    Ok(())
}

/// The `finder` kernel as an OpenCL kernel function.
///
/// Argument layout (mirrors Table VI):
///
/// | # | argument | type |
/// |---|----------|------|
/// | 0 | `chr` | buffer\<u8\> |
/// | 1 | `pat` | buffer\<u8\> (`__constant`) |
/// | 2 | `pat_index` | buffer\<i32\> (`__constant`) |
/// | 3 | `loci` (out) | buffer\<u32\> |
/// | 4 | `flags` (out) | buffer\<u8\> |
/// | 5 | `count` (out) | buffer\<u32\> |
/// | 6 | `scan_len` | u32 |
/// | 7 | `seq_len` | u32 |
/// | 8 | `patternlen` | u32 |
/// | 9 | `l_pat` | `__local` 2·plen bytes |
/// | 10 | `l_pat_index` | `__local` 8·plen bytes |
#[derive(Debug, Default, Clone, Copy)]
pub struct ClFinder;

impl ClKernelFunction for ClFinder {
    fn name(&self) -> &str {
        "finder"
    }

    fn arity(&self) -> usize {
        11
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[8].as_u32(8)? as usize;
        expect_local_bytes(&args[9], 9, 2 * plen)?;
        expect_local_bytes(&args[10], 10, 2 * plen * 4)?;
        let mut layout = LocalLayout::new();
        let l_pat = layout.array::<u8>(2 * plen);
        let l_pat_index = layout.array::<i32>(2 * plen);
        Ok(Box::new(Bound(FinderKernel {
            chr: args[0].as_buf_u8(0)?,
            pat: args[1].as_buf_u8(1)?,
            pat_index: args[2].as_buf_i32(2)?,
            out: FinderOutput {
                loci: args[3].as_buf_u32(3)?,
                flags: args[4].as_buf_u8(4)?,
                count: args[5].as_buf_u32(5)?,
            },
            scan_len: args[6].as_u32(6)?,
            seq_len: args[7].as_u32(7)?,
            plen: plen as u32,
            l_pat,
            l_pat_index,
        })))
    }
}

/// The `finder_packed` kernel as an OpenCL kernel function: the finder over
/// a losslessly 2-bit packed chunk (see
/// [`PackedFinderKernel`](crate::kernels::PackedFinderKernel)).
///
/// Argument layout:
///
/// | # | argument | type |
/// |---|----------|------|
/// | 0 | `packed` | buffer\<u8\> |
/// | 1 | `mask` | buffer\<u8\> |
/// | 2 | `exc_pos` | buffer\<u32\> |
/// | 3 | `exc_val` | buffer\<u8\> |
/// | 4 | `n_exc` | u32 |
/// | 5 | `chr` (out: decoded bases) | buffer\<u8\> |
/// | 6 | `pat` | buffer\<u8\> (`__constant`) |
/// | 7 | `pat_index` | buffer\<i32\> (`__constant`) |
/// | 8 | `loci` (out) | buffer\<u32\> |
/// | 9 | `flags` (out) | buffer\<u8\> |
/// | 10 | `count` (out) | buffer\<u32\> |
/// | 11 | `scan_len` | u32 |
/// | 12 | `seq_len` | u32 |
/// | 13 | `patternlen` | u32 |
/// | 14 | `l_pat` | `__local` 2·plen bytes |
/// | 15 | `l_pat_index` | `__local` 8·plen bytes |
#[derive(Debug, Default, Clone, Copy)]
pub struct ClPackedFinder;

impl ClKernelFunction for ClPackedFinder {
    fn name(&self) -> &str {
        "finder_packed"
    }

    fn arity(&self) -> usize {
        16
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[13].as_u32(13)? as usize;
        expect_local_bytes(&args[14], 14, 2 * plen)?;
        expect_local_bytes(&args[15], 15, 2 * plen * 4)?;
        let mut layout = LocalLayout::new();
        let l_pat = layout.array::<u8>(2 * plen);
        let l_pat_index = layout.array::<i32>(2 * plen);
        Ok(Box::new(Bound(PackedFinderKernel {
            inner: FinderKernel {
                chr: args[5].as_buf_u8(5)?,
                pat: args[6].as_buf_u8(6)?,
                pat_index: args[7].as_buf_i32(7)?,
                out: FinderOutput {
                    loci: args[8].as_buf_u32(8)?,
                    flags: args[9].as_buf_u8(9)?,
                    count: args[10].as_buf_u32(10)?,
                },
                scan_len: args[11].as_u32(11)?,
                seq_len: args[12].as_u32(12)?,
                plen: plen as u32,
                l_pat,
                l_pat_index,
            },
            packed: args[0].as_buf_u8(0)?,
            mask: args[1].as_buf_u8(1)?,
            exc_pos: args[2].as_buf_u32(2)?,
            exc_val: args[3].as_buf_u8(3)?,
            n_exc: args[4].as_u32(4)?,
        })))
    }
}

/// The `comparer` kernel as an OpenCL kernel function, at a fixed
/// [`OptLevel`] (the level is a compile-time property of the kernel source,
/// not a runtime argument).
///
/// Argument layout (mirrors Listing 1's parameter list):
///
/// | # | argument | type |
/// |---|----------|------|
/// | 0 | `chr` | buffer\<u8\> |
/// | 1 | `loci` | buffer\<u32\> |
/// | 2 | `flag` | buffer\<u8\> |
/// | 3 | `comp` | buffer\<u8\> (`__constant`) |
/// | 4 | `comp_index` | buffer\<i32\> (`__constant`) |
/// | 5 | `locicnts` | u32 |
/// | 6 | `patternlen` | u32 |
/// | 7 | `threshold` | u16 |
/// | 8 | `mm_count` (out) | buffer\<u16\> |
/// | 9 | `direction` (out) | buffer\<u8\> |
/// | 10 | `mm_loci` (out) | buffer\<u32\> |
/// | 11 | `entrycount` (out) | buffer\<u32\> |
/// | 12 | `l_comp` | `__local` 2·plen bytes |
/// | 13 | `l_comp_index` | `__local` 8·plen bytes |
#[derive(Debug, Default, Clone, Copy)]
pub struct ClComparer {
    /// Optimization stage this kernel was "compiled" at.
    pub opt: OptLevel,
}

impl ClComparer {
    /// The comparer at `opt`.
    pub fn new(opt: OptLevel) -> Self {
        ClComparer { opt }
    }
}

impl ClKernelFunction for ClComparer {
    fn name(&self) -> &str {
        "comparer"
    }

    fn arity(&self) -> usize {
        14
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[6].as_u32(6)? as usize;
        expect_local_bytes(&args[12], 12, 2 * plen)?;
        expect_local_bytes(&args[13], 13, 2 * plen * 4)?;
        let mut layout = LocalLayout::new();
        let l_comp = layout.array::<u8>(2 * plen);
        let l_comp_index = layout.array::<i32>(2 * plen);
        Ok(Box::new(Bound(ComparerKernel {
            opt: self.opt,
            chr: args[0].as_buf_u8(0)?,
            loci: args[1].as_buf_u32(1)?,
            flags: args[2].as_buf_u8(2)?,
            comp: args[3].as_buf_u8(3)?,
            comp_index: args[4].as_buf_i32(4)?,
            locicnt: args[5].as_u32(5)?,
            plen: plen as u32,
            threshold: args[7].as_u16(7)?,
            out: ComparerOutput {
                mm_count: args[8].as_buf_u16(8)?,
                direction: args[9].as_buf_u8(9)?,
                loci: args[10].as_buf_u32(10)?,
                count: args[11].as_buf_u32(11)?,
            },
            l_comp,
            l_comp_index,
        })))
    }
}

/// The `comparer_2bit` kernel as an OpenCL kernel function: the comparer
/// reading the 2-bit packed chunk directly (see
/// [`TwoBitComparerKernel`](crate::kernels::TwoBitComparerKernel)) instead
/// of the decoded byte-per-base scratch — roughly `plen/4 + plen/8` global
/// bytes per site instead of `plen`.
///
/// Argument layout:
///
/// | # | argument | type |
/// |---|----------|------|
/// | 0 | `packed` | buffer\<u8\> |
/// | 1 | `mask` | buffer\<u8\> |
/// | 2 | `loci` | buffer\<u32\> |
/// | 3 | `flag` | buffer\<u8\> |
/// | 4 | `comp` | buffer\<u8\> (`__constant`) |
/// | 5 | `comp_index` | buffer\<i32\> (`__constant`) |
/// | 6 | `locicnts` | u32 |
/// | 7 | `patternlen` | u32 |
/// | 8 | `threshold` | u16 |
/// | 9 | `mm_count` (out) | buffer\<u16\> |
/// | 10 | `direction` (out) | buffer\<u8\> |
/// | 11 | `mm_loci` (out) | buffer\<u32\> |
/// | 12 | `entrycount` (out) | buffer\<u32\> |
/// | 13 | `l_comp` | `__local` 2·plen bytes |
/// | 14 | `l_comp_index` | `__local` 8·plen bytes |
#[derive(Debug, Default, Clone, Copy)]
pub struct ClTwoBitComparer;

impl ClKernelFunction for ClTwoBitComparer {
    fn name(&self) -> &str {
        "comparer_2bit"
    }

    fn arity(&self) -> usize {
        15
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[7].as_u32(7)? as usize;
        expect_local_bytes(&args[13], 13, 2 * plen)?;
        expect_local_bytes(&args[14], 14, 2 * plen * 4)?;
        let mut layout = LocalLayout::new();
        let l_comp = layout.array::<u8>(2 * plen);
        let l_comp_index = layout.array::<i32>(2 * plen);
        Ok(Box::new(Bound(TwoBitComparerKernel {
            packed: args[0].as_buf_u8(0)?,
            mask: args[1].as_buf_u8(1)?,
            loci: args[2].as_buf_u32(2)?,
            flags: args[3].as_buf_u8(3)?,
            comp: args[4].as_buf_u8(4)?,
            comp_index: args[5].as_buf_i32(5)?,
            locicnt: args[6].as_u32(6)?,
            plen: plen as u32,
            threshold: args[8].as_u16(8)?,
            out: ComparerOutput {
                mm_count: args[9].as_buf_u16(9)?,
                direction: args[10].as_buf_u8(10)?,
                loci: args[11].as_buf_u32(11)?,
                count: args[12].as_buf_u32(12)?,
            },
            l_comp,
            l_comp_index,
        })))
    }
}

/// The `finder_nibble` kernel as an OpenCL kernel function: the finder over
/// a 4-bit nibble-packed chunk (see
/// [`NibbleFinderKernel`](crate::kernels::NibbleFinderKernel)). No exception
/// arguments: the nibble masks are exact for matching.
///
/// Argument layout:
///
/// | # | argument | type |
/// |---|----------|------|
/// | 0 | `nibbles` | buffer\<u8\> |
/// | 1 | `chr` (out: decoded bases) | buffer\<u8\> |
/// | 2 | `pat` | buffer\<u8\> (`__constant`) |
/// | 3 | `pat_index` | buffer\<i32\> (`__constant`) |
/// | 4 | `loci` (out) | buffer\<u32\> |
/// | 5 | `flags` (out) | buffer\<u8\> |
/// | 6 | `count` (out) | buffer\<u32\> |
/// | 7 | `scan_len` | u32 |
/// | 8 | `seq_len` | u32 |
/// | 9 | `patternlen` | u32 |
/// | 10 | `l_pat` | `__local` 2·plen bytes |
/// | 11 | `l_pat_index` | `__local` 8·plen bytes |
#[derive(Debug, Default, Clone, Copy)]
pub struct ClNibbleFinder;

impl ClKernelFunction for ClNibbleFinder {
    fn name(&self) -> &str {
        "finder_nibble"
    }

    fn arity(&self) -> usize {
        12
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[9].as_u32(9)? as usize;
        expect_local_bytes(&args[10], 10, 2 * plen)?;
        expect_local_bytes(&args[11], 11, 2 * plen * 4)?;
        let mut layout = LocalLayout::new();
        let l_pat = layout.array::<u8>(2 * plen);
        let l_pat_index = layout.array::<i32>(2 * plen);
        Ok(Box::new(Bound(NibbleFinderKernel {
            inner: FinderKernel {
                chr: args[1].as_buf_u8(1)?,
                pat: args[2].as_buf_u8(2)?,
                pat_index: args[3].as_buf_i32(3)?,
                out: FinderOutput {
                    loci: args[4].as_buf_u32(4)?,
                    flags: args[5].as_buf_u8(5)?,
                    count: args[6].as_buf_u32(6)?,
                },
                scan_len: args[7].as_u32(7)?,
                seq_len: args[8].as_u32(8)?,
                plen: plen as u32,
                l_pat,
                l_pat_index,
            },
            nibbles: args[0].as_buf_u8(0)?,
        })))
    }
}

/// The `comparer_4bit` kernel as an OpenCL kernel function: the comparer
/// counting mismatches by mask intersection directly on the nibble words
/// (see [`FourBitComparerKernel`](crate::kernels::FourBitComparerKernel)) —
/// `plen/2` global bytes per site for any input, degenerate or soft-masked
/// included.
///
/// Argument layout:
///
/// | # | argument | type |
/// |---|----------|------|
/// | 0 | `nibbles` | buffer\<u8\> |
/// | 1 | `loci` | buffer\<u32\> |
/// | 2 | `flag` | buffer\<u8\> |
/// | 3 | `comp` | buffer\<u8\> (`__constant`) |
/// | 4 | `comp_index` | buffer\<i32\> (`__constant`) |
/// | 5 | `locicnts` | u32 |
/// | 6 | `patternlen` | u32 |
/// | 7 | `threshold` | u16 |
/// | 8 | `mm_count` (out) | buffer\<u16\> |
/// | 9 | `direction` (out) | buffer\<u8\> |
/// | 10 | `mm_loci` (out) | buffer\<u32\> |
/// | 11 | `entrycount` (out) | buffer\<u32\> |
/// | 12 | `l_comp` | `__local` 2·plen bytes |
/// | 13 | `l_comp_index` | `__local` 8·plen bytes |
#[derive(Debug, Default, Clone, Copy)]
pub struct ClFourBitComparer;

impl ClKernelFunction for ClFourBitComparer {
    fn name(&self) -> &str {
        "comparer_4bit"
    }

    fn arity(&self) -> usize {
        14
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[6].as_u32(6)? as usize;
        expect_local_bytes(&args[12], 12, 2 * plen)?;
        expect_local_bytes(&args[13], 13, 2 * plen * 4)?;
        let mut layout = LocalLayout::new();
        let l_comp = layout.array::<u8>(2 * plen);
        let l_comp_index = layout.array::<i32>(2 * plen);
        Ok(Box::new(Bound(FourBitComparerKernel {
            nibbles: args[0].as_buf_u8(0)?,
            loci: args[1].as_buf_u32(1)?,
            flags: args[2].as_buf_u8(2)?,
            comp: args[3].as_buf_u8(3)?,
            comp_index: args[4].as_buf_i32(4)?,
            locicnt: args[5].as_u32(5)?,
            plen: plen as u32,
            threshold: args[7].as_u16(7)?,
            out: ComparerOutput {
                mm_count: args[8].as_buf_u16(8)?,
                direction: args[9].as_buf_u8(9)?,
                loci: args[10].as_buf_u32(10)?,
                count: args[11].as_buf_u32(11)?,
            },
            l_comp,
            l_comp_index,
        })))
    }
}

/// A JIT-specialized comparer variant as an OpenCL kernel function. The
/// pattern, its length, and the threshold live inside the compiled variant,
/// so the argument list shrinks to the genome-side buffers, the candidate
/// set, and the outputs — no `__constant` pattern arguments, no `__local`
/// staging allocations.
///
/// Argument layout (char variant):
///
/// | # | argument | type |
/// |---|----------|------|
/// | 0 | `chr` | buffer\<u8\> |
/// | 1 | `loci` | buffer\<u32\> |
/// | 2 | `flag` | buffer\<u8\> |
/// | 3 | `mm_count` (out) | buffer\<u16\> |
/// | 4 | `direction` (out) | buffer\<u8\> |
/// | 5 | `mm_loci` (out) | buffer\<u32\> |
/// | 6 | `entrycount` (out) | buffer\<u32\> |
/// | 7 | `locicnts` | u32 |
#[derive(Debug, Clone)]
pub struct ClSpecializedComparer {
    /// The compiled (pattern, threshold) variant this function embodies.
    pub variant: Arc<CompiledVariant>,
}

impl ClKernelFunction for ClSpecializedComparer {
    fn name(&self) -> &str {
        VariantKind::CharComparer.kernel_name()
    }

    fn arity(&self) -> usize {
        8
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        Ok(Box::new(Bound(SpecializedComparerKernel {
            chr: args[0].as_buf_u8(0)?,
            loci: args[1].as_buf_u32(1)?,
            flags: args[2].as_buf_u8(2)?,
            out: ComparerOutput {
                mm_count: args[3].as_buf_u16(3)?,
                direction: args[4].as_buf_u8(4)?,
                loci: args[5].as_buf_u32(5)?,
                count: args[6].as_buf_u32(6)?,
            },
            locicnt: args[7].as_u32(7)?,
            variant: Arc::clone(&self.variant),
        })))
    }
}

/// The specialized 2-bit comparer as an OpenCL kernel function.
///
/// Argument layout: `packed`, `mask`, then as [`ClSpecializedComparer`]
/// from index 2 (loci, flag, 4 outputs, locicnts).
#[derive(Debug, Clone)]
pub struct ClSpecializedTwoBitComparer {
    /// The compiled (pattern, threshold) variant this function embodies.
    pub variant: Arc<CompiledVariant>,
}

impl ClKernelFunction for ClSpecializedTwoBitComparer {
    fn name(&self) -> &str {
        VariantKind::TwoBitComparer.kernel_name()
    }

    fn arity(&self) -> usize {
        9
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        Ok(Box::new(Bound(SpecializedTwoBitComparerKernel {
            packed: args[0].as_buf_u8(0)?,
            mask: args[1].as_buf_u8(1)?,
            loci: args[2].as_buf_u32(2)?,
            flags: args[3].as_buf_u8(3)?,
            out: ComparerOutput {
                mm_count: args[4].as_buf_u16(4)?,
                direction: args[5].as_buf_u8(5)?,
                loci: args[6].as_buf_u32(6)?,
                count: args[7].as_buf_u32(7)?,
            },
            locicnt: args[8].as_u32(8)?,
            variant: Arc::clone(&self.variant),
        })))
    }
}

/// The specialized 4-bit comparer as an OpenCL kernel function.
///
/// Argument layout: `nibbles`, then as [`ClSpecializedComparer`] from
/// index 1 (loci, flag, 4 outputs, locicnts).
#[derive(Debug, Clone)]
pub struct ClSpecializedFourBitComparer {
    /// The compiled (pattern, threshold) variant this function embodies.
    pub variant: Arc<CompiledVariant>,
}

impl ClKernelFunction for ClSpecializedFourBitComparer {
    fn name(&self) -> &str {
        VariantKind::FourBitComparer.kernel_name()
    }

    fn arity(&self) -> usize {
        8
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        Ok(Box::new(Bound(SpecializedFourBitComparerKernel {
            nibbles: args[0].as_buf_u8(0)?,
            loci: args[1].as_buf_u32(1)?,
            flags: args[2].as_buf_u8(2)?,
            out: ComparerOutput {
                mm_count: args[3].as_buf_u16(3)?,
                direction: args[4].as_buf_u8(4)?,
                loci: args[5].as_buf_u32(5)?,
                count: args[6].as_buf_u32(6)?,
            },
            locicnt: args[7].as_u32(7)?,
            variant: Arc::clone(&self.variant),
        })))
    }
}

/// The specialized nibble finder as an OpenCL kernel function: scans the
/// nibble words directly, no decode scratch, no pattern arguments.
///
/// Argument layout:
///
/// | # | argument | type |
/// |---|----------|------|
/// | 0 | `nibbles` | buffer\<u8\> |
/// | 1 | `loci` (out) | buffer\<u32\> |
/// | 2 | `flags` (out) | buffer\<u8\> |
/// | 3 | `count` (out) | buffer\<u32\> |
/// | 4 | `scan_len` | u32 |
/// | 5 | `seq_len` | u32 |
#[derive(Debug, Clone)]
pub struct ClSpecializedNibbleFinder {
    /// The compiled PAM variant (threshold 0) this function embodies.
    pub variant: Arc<CompiledVariant>,
}

impl ClKernelFunction for ClSpecializedNibbleFinder {
    fn name(&self) -> &str {
        VariantKind::NibbleFinder.kernel_name()
    }

    fn arity(&self) -> usize {
        6
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        Ok(Box::new(Bound(SpecializedNibbleFinderKernel {
            nibbles: args[0].as_buf_u8(0)?,
            out: FinderOutput {
                loci: args[1].as_buf_u32(1)?,
                flags: args[2].as_buf_u8(2)?,
                count: args[3].as_buf_u32(3)?,
            },
            scan_len: args[4].as_u32(4)?,
            seq_len: args[5].as_u32(5)?,
            variant: Arc::clone(&self.variant),
        })))
    }
}

/// The `comparer_multi` kernel as an OpenCL kernel function: the fused
/// multi-guide comparer over raw chunk bytes (see
/// [`MultiComparerKernel`](crate::kernels::MultiComparerKernel)).
///
/// Argument layout:
///
/// | # | argument | type |
/// |---|----------|------|
/// | 0 | `chr` | buffer\<u8\> |
/// | 1 | `loci` | buffer\<u32\> |
/// | 2 | `flag` | buffer\<u8\> |
/// | 3 | `comp` (block) | buffer\<u8\> (`__constant`) |
/// | 4 | `comp_index` (block) | buffer\<i32\> (`__constant`) |
/// | 5 | `thresholds` | buffer\<u16\> |
/// | 6 | `locicnts` | u32 |
/// | 7 | `patternlen` | u32 |
/// | 8 | `nguides` | u32 |
/// | 9 | `mm_count` (out) | buffer\<u16\> |
/// | 10 | `direction` (out) | buffer\<u8\> |
/// | 11 | `mm_loci` (out) | buffer\<u32\> |
/// | 12 | `guide` (out) | buffer\<u16\> |
/// | 13 | `entrycount` (out) | buffer\<u32\> |
/// | 14 | `l_comp` | `__local` nguides·2·plen bytes |
/// | 15 | `l_comp_index` | `__local` nguides·8·plen bytes |
/// | 16 | `l_thr` | `__local` 2·nguides bytes |
#[derive(Debug, Default, Clone, Copy)]
pub struct ClMultiComparer;

impl ClKernelFunction for ClMultiComparer {
    fn name(&self) -> &str {
        "comparer_multi"
    }

    fn arity(&self) -> usize {
        17
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[7].as_u32(7)? as usize;
        let nguides = args[8].as_u32(8)? as usize;
        expect_local_bytes(&args[14], 14, nguides * 2 * plen)?;
        expect_local_bytes(&args[15], 15, nguides * 2 * plen * 4)?;
        expect_local_bytes(&args[16], 16, nguides * 2)?;
        let (kernel, _) = MultiComparerKernel::new(
            args[0].as_buf_u8(0)?,
            args[1].as_buf_u32(1)?,
            args[2].as_buf_u8(2)?,
            args[3].as_buf_u8(3)?,
            args[4].as_buf_i32(4)?,
            GuideThresholds::PerGuide(args[5].as_buf_u16(5)?),
            args[6].as_u32(6)? as usize,
            plen,
            nguides,
            MultiComparerOutput {
                mm_count: args[9].as_buf_u16(9)?,
                direction: args[10].as_buf_u8(10)?,
                loci: args[11].as_buf_u32(11)?,
                guide: args[12].as_buf_u16(12)?,
                count: args[13].as_buf_u32(13)?,
            },
        );
        Ok(Box::new(Bound(kernel)))
    }
}

/// The `comparer_multi_2bit` kernel as an OpenCL kernel function.
///
/// Argument layout: `packed`, `mask`, then as [`ClMultiComparer`] from
/// index 2.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClTwoBitMultiComparer;

impl ClKernelFunction for ClTwoBitMultiComparer {
    fn name(&self) -> &str {
        "comparer_multi_2bit"
    }

    fn arity(&self) -> usize {
        18
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[8].as_u32(8)? as usize;
        let nguides = args[9].as_u32(9)? as usize;
        expect_local_bytes(&args[15], 15, nguides * 2 * plen)?;
        expect_local_bytes(&args[16], 16, nguides * 2 * plen * 4)?;
        expect_local_bytes(&args[17], 17, nguides * 2)?;
        let (kernel, _) = TwoBitMultiComparerKernel::new(
            args[0].as_buf_u8(0)?,
            args[1].as_buf_u8(1)?,
            args[2].as_buf_u32(2)?,
            args[3].as_buf_u8(3)?,
            args[4].as_buf_u8(4)?,
            args[5].as_buf_i32(5)?,
            GuideThresholds::PerGuide(args[6].as_buf_u16(6)?),
            args[7].as_u32(7)? as usize,
            plen,
            nguides,
            MultiComparerOutput {
                mm_count: args[10].as_buf_u16(10)?,
                direction: args[11].as_buf_u8(11)?,
                loci: args[12].as_buf_u32(12)?,
                guide: args[13].as_buf_u16(13)?,
                count: args[14].as_buf_u32(14)?,
            },
        );
        Ok(Box::new(Bound(kernel)))
    }
}

/// The `comparer_multi_4bit` kernel as an OpenCL kernel function.
///
/// Argument layout: `nibbles`, then as [`ClMultiComparer`] from index 1.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClFourBitMultiComparer;

impl ClKernelFunction for ClFourBitMultiComparer {
    fn name(&self) -> &str {
        "comparer_multi_4bit"
    }

    fn arity(&self) -> usize {
        17
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[7].as_u32(7)? as usize;
        let nguides = args[8].as_u32(8)? as usize;
        expect_local_bytes(&args[14], 14, nguides * 2 * plen)?;
        expect_local_bytes(&args[15], 15, nguides * 2 * plen * 4)?;
        expect_local_bytes(&args[16], 16, nguides * 2)?;
        let (kernel, _) = FourBitMultiComparerKernel::new(
            args[0].as_buf_u8(0)?,
            args[1].as_buf_u32(1)?,
            args[2].as_buf_u8(2)?,
            args[3].as_buf_u8(3)?,
            args[4].as_buf_i32(4)?,
            GuideThresholds::PerGuide(args[5].as_buf_u16(5)?),
            args[6].as_u32(6)? as usize,
            plen,
            nguides,
            MultiComparerOutput {
                mm_count: args[9].as_buf_u16(9)?,
                direction: args[10].as_buf_u8(10)?,
                loci: args[11].as_buf_u32(11)?,
                guide: args[12].as_buf_u16(12)?,
                count: args[13].as_buf_u32(13)?,
            },
        );
        Ok(Box::new(Bound(kernel)))
    }
}

/// The JIT-specialized fused comparer as an OpenCL kernel function: the
/// block's shared threshold is folded into the variant, so the threshold
/// table and its `__local` staging disappear from the argument list.
///
/// Argument layout: as [`ClMultiComparer`] minus arguments 5 (`thresholds`)
/// and 16 (`l_thr`).
#[derive(Debug, Clone)]
pub struct ClSpecializedMultiComparer {
    /// The compiled (PAM, threshold) variant this function embodies.
    pub variant: Arc<CompiledVariant>,
}

impl ClKernelFunction for ClSpecializedMultiComparer {
    fn name(&self) -> &str {
        VariantKind::MultiComparer.kernel_name()
    }

    fn arity(&self) -> usize {
        15
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[6].as_u32(6)? as usize;
        let nguides = args[7].as_u32(7)? as usize;
        expect_local_bytes(&args[13], 13, nguides * 2 * plen)?;
        expect_local_bytes(&args[14], 14, nguides * 2 * plen * 4)?;
        let (kernel, _) = MultiComparerKernel::new(
            args[0].as_buf_u8(0)?,
            args[1].as_buf_u32(1)?,
            args[2].as_buf_u8(2)?,
            args[3].as_buf_u8(3)?,
            args[4].as_buf_i32(4)?,
            GuideThresholds::Folded {
                threshold: self.variant.pattern.threshold(),
                variant: Arc::clone(&self.variant),
            },
            args[5].as_u32(5)? as usize,
            plen,
            nguides,
            MultiComparerOutput {
                mm_count: args[8].as_buf_u16(8)?,
                direction: args[9].as_buf_u8(9)?,
                loci: args[10].as_buf_u32(10)?,
                guide: args[11].as_buf_u16(11)?,
                count: args[12].as_buf_u32(12)?,
            },
        );
        Ok(Box::new(Bound(kernel)))
    }
}

/// The specialized fused 2-bit comparer as an OpenCL kernel function.
///
/// Argument layout: `packed`, `mask`, then as
/// [`ClSpecializedMultiComparer`] from index 2.
#[derive(Debug, Clone)]
pub struct ClSpecializedTwoBitMultiComparer {
    /// The compiled (PAM, threshold) variant this function embodies.
    pub variant: Arc<CompiledVariant>,
}

impl ClKernelFunction for ClSpecializedTwoBitMultiComparer {
    fn name(&self) -> &str {
        "comparer_multi-2bit-spec"
    }

    fn arity(&self) -> usize {
        16
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[7].as_u32(7)? as usize;
        let nguides = args[8].as_u32(8)? as usize;
        expect_local_bytes(&args[14], 14, nguides * 2 * plen)?;
        expect_local_bytes(&args[15], 15, nguides * 2 * plen * 4)?;
        let (kernel, _) = TwoBitMultiComparerKernel::new(
            args[0].as_buf_u8(0)?,
            args[1].as_buf_u8(1)?,
            args[2].as_buf_u32(2)?,
            args[3].as_buf_u8(3)?,
            args[4].as_buf_u8(4)?,
            args[5].as_buf_i32(5)?,
            GuideThresholds::Folded {
                threshold: self.variant.pattern.threshold(),
                variant: Arc::clone(&self.variant),
            },
            args[6].as_u32(6)? as usize,
            plen,
            nguides,
            MultiComparerOutput {
                mm_count: args[9].as_buf_u16(9)?,
                direction: args[10].as_buf_u8(10)?,
                loci: args[11].as_buf_u32(11)?,
                guide: args[12].as_buf_u16(12)?,
                count: args[13].as_buf_u32(13)?,
            },
        );
        Ok(Box::new(Bound(kernel)))
    }
}

/// The specialized fused 4-bit comparer as an OpenCL kernel function.
///
/// Argument layout: `nibbles`, then as [`ClSpecializedMultiComparer`] from
/// index 1.
#[derive(Debug, Clone)]
pub struct ClSpecializedFourBitMultiComparer {
    /// The compiled (PAM, threshold) variant this function embodies.
    pub variant: Arc<CompiledVariant>,
}

impl ClKernelFunction for ClSpecializedFourBitMultiComparer {
    fn name(&self) -> &str {
        "comparer_multi-4bit-spec"
    }

    fn arity(&self) -> usize {
        15
    }

    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        let plen = args[6].as_u32(6)? as usize;
        let nguides = args[7].as_u32(7)? as usize;
        expect_local_bytes(&args[13], 13, nguides * 2 * plen)?;
        expect_local_bytes(&args[14], 14, nguides * 2 * plen * 4)?;
        let (kernel, _) = FourBitMultiComparerKernel::new(
            args[0].as_buf_u8(0)?,
            args[1].as_buf_u32(1)?,
            args[2].as_buf_u8(2)?,
            args[3].as_buf_u8(3)?,
            args[4].as_buf_i32(4)?,
            GuideThresholds::Folded {
                threshold: self.variant.pattern.threshold(),
                variant: Arc::clone(&self.variant),
            },
            args[5].as_u32(5)? as usize,
            plen,
            nguides,
            MultiComparerOutput {
                mm_count: args[8].as_buf_u16(8)?,
                direction: args[9].as_buf_u8(9)?,
                loci: args[10].as_buf_u32(10)?,
                guide: args[11].as_buf_u16(11)?,
                count: args[12].as_buf_u32(12)?,
            },
        );
        Ok(Box::new(Bound(kernel)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn device() -> Device {
        Device::new(DeviceSpec::mi100())
    }

    #[test]
    fn finder_binding_validates_local_sizes() {
        let d = device();
        let plen = 3usize;
        let args = vec![
            KernelArg::BufU8(d.alloc(16).unwrap()),
            KernelArg::BufU8(d.alloc(6).unwrap()),
            KernelArg::BufI32(d.alloc(6).unwrap()),
            KernelArg::BufU32(d.alloc(16).unwrap()),
            KernelArg::BufU8(d.alloc(16).unwrap()),
            KernelArg::BufU32(d.alloc(1).unwrap()),
            KernelArg::U32(16),
            KernelArg::U32(16),
            KernelArg::U32(plen as u32),
            KernelArg::Local { bytes: 2 * plen },
            KernelArg::Local { bytes: 8 * plen },
        ];
        assert!(ClFinder.bind(&args).is_ok());

        let mut bad = args.clone();
        bad[9] = KernelArg::Local { bytes: 1 };
        let err = ClFinder.bind(&bad).map(|_| ()).unwrap_err();
        assert!(matches!(err, ClError::InvalidArgValue { index: 9, .. }));
    }

    #[test]
    fn comparer_binding_validates_types() {
        let d = device();
        let plen = 4usize;
        let mut args = vec![
            KernelArg::BufU8(d.alloc(32).unwrap()),
            KernelArg::BufU32(d.alloc(8).unwrap()),
            KernelArg::BufU8(d.alloc(8).unwrap()),
            KernelArg::BufU8(d.alloc(8).unwrap()),
            KernelArg::BufI32(d.alloc(8).unwrap()),
            KernelArg::U32(8),
            KernelArg::U32(plen as u32),
            KernelArg::U16(4),
            KernelArg::BufU16(d.alloc(16).unwrap()),
            KernelArg::BufU8(d.alloc(16).unwrap()),
            KernelArg::BufU32(d.alloc(16).unwrap()),
            KernelArg::BufU32(d.alloc(1).unwrap()),
            KernelArg::Local { bytes: 2 * plen },
            KernelArg::Local { bytes: 8 * plen },
        ];
        assert!(ClComparer::new(OptLevel::Opt3).bind(&args).is_ok());

        args[7] = KernelArg::U32(4); // threshold must be u16
        let err = ClComparer::default().bind(&args).map(|_| ()).unwrap_err();
        assert!(matches!(err, ClError::InvalidArgValue { index: 7, .. }));
    }

    #[test]
    fn arities_match_the_kernel_signatures() {
        assert_eq!(ClFinder.arity(), 11);
        assert_eq!(ClComparer::default().arity(), 14);
        assert_eq!(ClTwoBitComparer.arity(), 15);
        assert_eq!(ClNibbleFinder.arity(), 12);
        assert_eq!(ClFourBitComparer.arity(), 14);
        assert_eq!(ClMultiComparer.arity(), 17);
        assert_eq!(ClTwoBitMultiComparer.arity(), 18);
        assert_eq!(ClFourBitMultiComparer.arity(), 17);
        assert_eq!(ClFinder.name(), "finder");
        assert_eq!(ClComparer::default().name(), "comparer");
        assert_eq!(ClTwoBitComparer.name(), "comparer_2bit");
        assert_eq!(ClNibbleFinder.name(), "finder_nibble");
        assert_eq!(ClFourBitComparer.name(), "comparer_4bit");
        assert_eq!(ClMultiComparer.name(), "comparer_multi");
        assert_eq!(ClTwoBitMultiComparer.name(), "comparer_multi_2bit");
        assert_eq!(ClFourBitMultiComparer.name(), "comparer_multi_4bit");
    }

    #[test]
    fn multi_comparer_binding_validates_local_sizes() {
        let d = device();
        let (plen, nguides) = (4usize, 3usize);
        let mut args = vec![
            KernelArg::BufU8(d.alloc(64).unwrap()),
            KernelArg::BufU32(d.alloc(8).unwrap()),
            KernelArg::BufU8(d.alloc(8).unwrap()),
            KernelArg::BufU8(d.alloc(nguides * 2 * plen).unwrap()),
            KernelArg::BufI32(d.alloc(nguides * 2 * plen).unwrap()),
            KernelArg::BufU16(d.alloc(nguides).unwrap()),
            KernelArg::U32(8),
            KernelArg::U32(plen as u32),
            KernelArg::U32(nguides as u32),
            KernelArg::BufU16(d.alloc(64).unwrap()),
            KernelArg::BufU8(d.alloc(64).unwrap()),
            KernelArg::BufU32(d.alloc(64).unwrap()),
            KernelArg::BufU16(d.alloc(64).unwrap()),
            KernelArg::BufU32(d.alloc(1).unwrap()),
            KernelArg::Local {
                bytes: nguides * 2 * plen,
            },
            KernelArg::Local {
                bytes: nguides * 8 * plen,
            },
            KernelArg::Local { bytes: nguides * 2 },
        ];
        assert!(ClMultiComparer.bind(&args).is_ok());

        args[16] = KernelArg::Local { bytes: 1 };
        let err = ClMultiComparer.bind(&args).map(|_| ()).unwrap_err();
        assert!(matches!(err, ClError::InvalidArgValue { index: 16, .. }));
    }

    #[test]
    fn fourbit_comparer_binding_validates_local_sizes() {
        let d = device();
        let plen = 4usize;
        let mut args = vec![
            KernelArg::BufU8(d.alloc(4).unwrap()),
            KernelArg::BufU32(d.alloc(8).unwrap()),
            KernelArg::BufU8(d.alloc(8).unwrap()),
            KernelArg::BufU8(d.alloc(8).unwrap()),
            KernelArg::BufI32(d.alloc(8).unwrap()),
            KernelArg::U32(8),
            KernelArg::U32(plen as u32),
            KernelArg::U16(4),
            KernelArg::BufU16(d.alloc(16).unwrap()),
            KernelArg::BufU8(d.alloc(16).unwrap()),
            KernelArg::BufU32(d.alloc(16).unwrap()),
            KernelArg::BufU32(d.alloc(1).unwrap()),
            KernelArg::Local { bytes: 2 * plen },
            KernelArg::Local { bytes: 8 * plen },
        ];
        assert!(ClFourBitComparer.bind(&args).is_ok());

        args[13] = KernelArg::Local { bytes: 2 };
        let err = ClFourBitComparer.bind(&args).map(|_| ()).unwrap_err();
        assert!(matches!(err, ClError::InvalidArgValue { index: 13, .. }));
    }

    #[test]
    fn twobit_comparer_binding_validates_local_sizes() {
        let d = device();
        let plen = 4usize;
        let mut args = vec![
            KernelArg::BufU8(d.alloc(8).unwrap()),
            KernelArg::BufU8(d.alloc(4).unwrap()),
            KernelArg::BufU32(d.alloc(8).unwrap()),
            KernelArg::BufU8(d.alloc(8).unwrap()),
            KernelArg::BufU8(d.alloc(8).unwrap()),
            KernelArg::BufI32(d.alloc(8).unwrap()),
            KernelArg::U32(8),
            KernelArg::U32(plen as u32),
            KernelArg::U16(4),
            KernelArg::BufU16(d.alloc(16).unwrap()),
            KernelArg::BufU8(d.alloc(16).unwrap()),
            KernelArg::BufU32(d.alloc(16).unwrap()),
            KernelArg::BufU32(d.alloc(1).unwrap()),
            KernelArg::Local { bytes: 2 * plen },
            KernelArg::Local { bytes: 8 * plen },
        ];
        assert!(ClTwoBitComparer.bind(&args).is_ok());

        args[14] = KernelArg::Local { bytes: 2 };
        let err = ClTwoBitComparer.bind(&args).map(|_| ()).unwrap_err();
        assert!(matches!(err, ClError::InvalidArgValue { index: 14, .. }));
    }
}
