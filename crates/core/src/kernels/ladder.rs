//! The IUPAC compare ladder of Listing 1, as a *cost* model.
//!
//! The paper's comparer evaluates a chain of thirteen `||`-connected arms,
//! one per pattern letter, each of which re-reads the pattern character from
//! shared local memory. Semantically our kernels use the correct subset rule
//! from [`genome::base`]; *dynamically* they charge the number of arms the
//! compiled ladder would evaluate before reaching the arm for the pattern
//! character — which is what makes opt4's register caching worth the
//! register pressure it costs.

/// The ladder's arm order (Listing 1: degenerate codes first, the concrete
/// bases last — so concrete-base queries walk most of the ladder).
pub const LADDER: [u8; 13] = [
    b'R', b'Y', b'M', b'W', b'K', b'S', b'H', b'B', b'V', b'D', b'G', b'C', b'T',
];

/// Number of ladder arms evaluated for pattern character `c`: the 1-based
/// position of its arm, or the full ladder length when no arm matches
/// (`A` and `N` have no arm in Listing 1; `N` positions are skipped by
/// `comp_index` anyway).
#[inline]
pub fn ladder_rank(c: u8) -> u64 {
    match LADDER.iter().position(|&a| a == c) {
        Some(i) => i as u64 + 1,
        None => LADDER.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_has_thirteen_arms_like_listing_1() {
        assert_eq!(LADDER.len(), 13);
    }

    #[test]
    fn degenerate_codes_resolve_early_concrete_late() {
        assert_eq!(ladder_rank(b'R'), 1);
        assert_eq!(ladder_rank(b'Y'), 2);
        assert_eq!(ladder_rank(b'G'), 11);
        assert_eq!(ladder_rank(b'T'), 13);
        assert!(ladder_rank(b'W') < ladder_rank(b'C'));
    }

    #[test]
    fn unknown_characters_walk_the_whole_ladder() {
        assert_eq!(ladder_rank(b'A'), 13);
        assert_eq!(ladder_rank(b'N'), 13);
        assert_eq!(ladder_rank(b'x'), 13);
    }
}
