//! The 2-bit-encoded comparer — the Cas-OFFinder authors' follow-up
//! optimization (related work \[21\] of the paper).
//!
//! The genome chunk is packed at 2 bits per base with a 1-bit ambiguity
//! mask ([`genome::twobit`]). Four consecutive bases share one packed byte,
//! so a site comparison loads roughly `plen/4 + plen/8` bytes instead of
//! `plen` — the memory-traffic reduction that gave the original authors
//! their ~30x combined improvement. The kernel builds on the opt3 comparer
//! (restrict, registered scalars, cooperative staging).

use gpu_sim::isa::{CodeModel, Staging};
use gpu_sim::kernel::{KernelProgram, LocalHandle, LocalLayout, LocalMem};
use gpu_sim::{DeviceBuffer, ItemCtx};

use genome::base::is_mismatch;
use genome::twobit::code_to_char;

use super::comparer::ComparerOutput;
use super::finder::{FLAG_BOTH, FLAG_FORWARD, FLAG_REVERSE};
use crate::pattern::CompiledSeq;

/// The 2-bit comparer kernel.
#[derive(Debug, Clone)]
pub struct TwoBitComparerKernel {
    /// Packed chunk bases, 4 per byte.
    pub packed: DeviceBuffer<u8>,
    /// Ambiguity mask, 8 bases per byte.
    pub mask: DeviceBuffer<u8>,
    /// Candidate loci (chunk-relative).
    pub loci: DeviceBuffer<u32>,
    /// Strand flags from the finder.
    pub flags: DeviceBuffer<u8>,
    /// `[forward query | revcomp query]`, global memory.
    pub comp: DeviceBuffer<u8>,
    /// Non-`N` indices, `-1` terminated, global memory.
    pub comp_index: DeviceBuffer<i32>,
    /// Number of candidates.
    pub locicnt: u32,
    /// Pattern length.
    pub plen: u32,
    /// Mismatch threshold.
    pub threshold: u16,
    /// Output arrays.
    pub out: ComparerOutput,
    /// Local staging handle for the query characters.
    pub l_comp: LocalHandle<u8>,
    /// Local staging handle for the index array.
    pub l_comp_index: LocalHandle<i32>,
}

impl TwoBitComparerKernel {
    /// Build the kernel and its local layout.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        packed: DeviceBuffer<u8>,
        mask: DeviceBuffer<u8>,
        loci: DeviceBuffer<u32>,
        flags: DeviceBuffer<u8>,
        comp: DeviceBuffer<u8>,
        comp_index: DeviceBuffer<i32>,
        locicnt: usize,
        threshold: u16,
        out: ComparerOutput,
        query: &CompiledSeq,
    ) -> (TwoBitComparerKernel, LocalLayout) {
        let mut layout = LocalLayout::new();
        let l_comp = layout.array::<u8>(2 * query.plen());
        let l_comp_index = layout.array::<i32>(2 * query.plen());
        (
            TwoBitComparerKernel {
                packed,
                mask,
                loci,
                flags,
                comp,
                comp_index,
                locicnt: locicnt as u32,
                plen: query.plen() as u32,
                threshold,
                out,
                l_comp,
                l_comp_index,
            },
            layout,
        )
    }

    /// Decode the base at absolute position `pos`, reusing the last packed
    /// and mask bytes when `pos` falls in the same byte (`cache` holds
    /// `(packed_byte_index, packed_byte, mask_byte_index, mask_byte)`).
    fn base_at(
        &self,
        item: &mut ItemCtx,
        cache: &mut (usize, u8, usize, u8),
        pos: usize,
    ) -> u8 {
        let (pb_idx, mb_idx) = (pos / 4, pos / 8);
        if cache.0 != pb_idx {
            cache.0 = pb_idx;
            cache.1 = self.packed.load(item, pb_idx);
        }
        if cache.2 != mb_idx {
            cache.2 = mb_idx;
            cache.3 = self.mask.load(item, mb_idx);
        }
        item.ops(4); // shifts and masks
        if (cache.3 >> (pos % 8)) & 1 == 1 {
            b'N'
        } else {
            code_to_char((cache.1 >> ((pos % 4) * 2)) & 0b11)
        }
    }

    fn compare_strand(&self, item: &mut ItemCtx, local: &LocalMem, locus: u32, half: usize) {
        let plen = self.plen as usize;
        let mut lmm: u16 = 0;
        // usize::MAX sentinels force the first loads.
        let mut cache = (usize::MAX, 0u8, usize::MAX, 0u8);
        item.ops(2);

        for j in 0..plen {
            let k = local.load(item, self.l_comp_index, half * plen + j);
            item.ops(1);
            if k < 0 {
                break;
            }
            let k = k as usize;
            let pat_c = local.load(item, self.l_comp, half * plen + k);
            let chr_c = self.base_at(item, &mut cache, locus as usize + k);
            item.ops(2);
            if is_mismatch(pat_c, chr_c) {
                lmm += 1;
                item.ops(1);
                if lmm > self.threshold {
                    break;
                }
            }
        }

        item.ops(1);
        if lmm <= self.threshold {
            let slot = self.out.count.atomic_inc(item, 0) as usize;
            self.out.mm_count.store(item, slot, lmm);
            self.out
                .direction
                .store(item, slot, if half == 0 { b'+' } else { b'-' });
            self.out.loci.store(item, slot, locus);
        }
    }
}

impl KernelProgram for TwoBitComparerKernel {
    type Private = ();

    fn name(&self) -> &str {
        "comparer-2bit"
    }

    fn phases(&self) -> usize {
        2
    }

    fn local_layout(&self) -> LocalLayout {
        let mut layout = LocalLayout::new();
        let _ = layout.array::<u8>(2 * self.plen as usize);
        let _ = layout.array::<i32>(2 * self.plen as usize);
        layout
    }

    fn code_model(&self) -> CodeModel {
        CodeModel::new("comparer-2bit")
            .pointer_args(10)
            .scalar_args(3)
            .noalias(true)
            .cached_global_scalars(2)
            .staging(Staging::Parallel)
            .staged_arrays(2)
            .guarded_blocks(2)
            .ladder_arms(13)
            .atomic_output(true)
            .extra_valu(40) // decode shifts/masks
    }

    fn run_phase(&self, phase: usize, item: &mut ItemCtx, _p: &mut (), local: &mut LocalMem) {
        let plen = self.plen as usize;
        match phase {
            0 => {
                let li = item.local_id(0);
                let group = item.local_range(0);
                let mut k = li;
                while k < 2 * plen {
                    let c = self.comp.load(item, k);
                    local.store(item, self.l_comp, k, c);
                    let idx = self.comp_index.load(item, k);
                    local.store(item, self.l_comp_index, k, idx);
                    item.ops(2);
                    k += group;
                }
            }
            _ => {
                let i = item.global_id(0);
                item.ops(1);
                if i >= self.locicnt as usize {
                    return;
                }
                let flag = self.flags.load(item, i);
                let locus = self.loci.load(item, i);
                item.ops(2);
                if flag == FLAG_BOTH || flag == FLAG_FORWARD {
                    self.compare_strand(item, local, locus, 0);
                }
                item.ops(2);
                if flag == FLAG_BOTH || flag == FLAG_REVERSE {
                    self.compare_strand(item, local, locus, 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{ComparerKernel, OptLevel};
    use genome::twobit::TwoBitSeq;
    use gpu_sim::{Device, DeviceSpec, ExecMode, NdRange};

    fn device() -> Device {
        Device::with_mode(DeviceSpec::mi100(), ExecMode::Sequential)
    }

    fn run_2bit(
        seq: &[u8],
        query: &[u8],
        candidates: &[(u32, u8)],
        threshold: u16,
    ) -> (Vec<(u32, u8, u16)>, gpu_sim::LaunchReport) {
        let device = device();
        let compiled = CompiledSeq::compile(query);
        let packed_seq = TwoBitSeq::encode(seq);
        let packed = device.alloc_from_slice(packed_seq.packed_bytes()).unwrap();
        let mask = device.alloc_from_slice(packed_seq.mask_bytes()).unwrap();
        let loci_host: Vec<u32> = candidates.iter().map(|&(p, _)| p).collect();
        let flags_host: Vec<u8> = candidates.iter().map(|&(_, f)| f).collect();
        let loci = device.alloc_from_slice(&loci_host).unwrap();
        let flags = device.alloc_from_slice(&flags_host).unwrap();
        let comp = device.alloc_from_slice(compiled.comp()).unwrap();
        let comp_index = device.alloc_from_slice(compiled.comp_index()).unwrap();
        let out = ComparerOutput::allocate(&device, candidates.len() * 2 + 1).unwrap();
        let (kernel, _) = TwoBitComparerKernel::new(
            packed,
            mask,
            loci,
            flags,
            comp,
            comp_index,
            candidates.len(),
            threshold,
            out,
            &compiled,
        );
        let nd = NdRange::linear_cover(candidates.len(), 256);
        let report = device.launch(&kernel, nd).unwrap();
        let mut entries = kernel.out.entries();
        entries.sort_unstable();
        (entries, report)
    }

    fn run_char(
        seq: &[u8],
        query: &[u8],
        candidates: &[(u32, u8)],
        threshold: u16,
    ) -> (Vec<(u32, u8, u16)>, gpu_sim::LaunchReport) {
        let device = device();
        let compiled = CompiledSeq::compile(query);
        let chr = device.alloc_from_slice(seq).unwrap();
        let loci_host: Vec<u32> = candidates.iter().map(|&(p, _)| p).collect();
        let flags_host: Vec<u8> = candidates.iter().map(|&(_, f)| f).collect();
        let loci = device.alloc_from_slice(&loci_host).unwrap();
        let flags = device.alloc_from_slice(&flags_host).unwrap();
        let comp = device.alloc_from_slice(compiled.comp()).unwrap();
        let comp_index = device.alloc_from_slice(compiled.comp_index()).unwrap();
        let out = ComparerOutput::allocate(&device, candidates.len() * 2 + 1).unwrap();
        let (kernel, _) = ComparerKernel::new(
            OptLevel::Opt3,
            chr,
            loci,
            flags,
            comp,
            comp_index,
            candidates.len(),
            threshold,
            out,
            &compiled,
        );
        let nd = NdRange::linear_cover(candidates.len(), 256);
        let report = device.launch(&kernel, nd).unwrap();
        let mut entries = kernel.out.entries();
        entries.sort_unstable();
        (entries, report)
    }

    #[test]
    fn matches_char_comparer_on_concrete_genomes() {
        let seq = b"ACGTACGTACGTAAGGCCTTACGTACGT";
        let query = b"ACGTACNN";
        let candidates: Vec<(u32, u8)> = (0..20).map(|p| (p, FLAG_BOTH)).collect();
        let (a, _) = run_2bit(seq, query, &candidates, 3);
        let (b, _) = run_char(seq, query, &candidates, 3);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn masked_bases_decode_as_n_and_mismatch() {
        let (entries, _) = run_2bit(b"ACGNN", b"ACGTA", &[(0, FLAG_FORWARD)], 4);
        assert_eq!(entries, vec![(0, b'+', 2)]);
    }

    #[test]
    fn packed_loads_are_fewer_than_char_loads() {
        let seq: Vec<u8> = (0..4096u32)
            .map(|i| b"ACGT"[(i as usize * 13 + 5) % 4])
            .collect();
        let query = b"GGCCGACCTGTCGCTGACGCNNN";
        let candidates: Vec<(u32, u8)> = (0..2048).map(|p| (p, FLAG_BOTH)).collect();
        let (_, packed_report) = run_2bit(&seq, query, &candidates, 22);
        let (_, char_report) = run_char(&seq, query, &candidates, 22);
        // With threshold 22 (no early exit) every compared base costs the
        // char kernel one load; the packed kernel shares bytes across four.
        assert!(
            (packed_report.counters.global_loads as f64)
                < char_report.counters.global_loads as f64 * 0.6,
            "packed {} vs char {}",
            packed_report.counters.global_loads,
            char_report.counters.global_loads
        );
    }
}
