//! Host-side verification of a result set.
//!
//! Recounts every reported site directly against the genome (independent of
//! the kernels, the pipelines, and the chunker) and checks the set is
//! complete with respect to the scalar oracle. Useful in tests and as a
//! sanity pass after porting the kernels to a new backend — the reproduction
//! analogue of diffing a migrated application's output against the original.

use std::error::Error;
use std::fmt;

use genome::base::{is_mismatch, reverse_complement};
use genome::Assembly;

use crate::cpu::search_sequential;
use crate::input::SearchInput;
use crate::site::{OffTarget, Strand};

/// Why a result set failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// A record referenced a chromosome the assembly does not have.
    UnknownChromosome {
        /// The missing chromosome name.
        chrom: String,
    },
    /// A record's window would run past the chromosome end.
    OutOfRange {
        /// Chromosome name.
        chrom: String,
        /// Reported position.
        position: usize,
    },
    /// The recount disagreed with the reported mismatch count.
    MismatchCount {
        /// Chromosome name.
        chrom: String,
        /// Reported position.
        position: usize,
        /// Count stored in the record.
        reported: u16,
        /// Count obtained by re-comparing against the genome.
        recounted: u16,
    },
    /// A reported count exceeds the query's threshold.
    OverThreshold {
        /// Chromosome name.
        chrom: String,
        /// Reported position.
        position: usize,
        /// Count stored in the record.
        reported: u16,
        /// The query's threshold.
        threshold: u16,
    },
    /// A record's query does not appear in the input.
    UnknownQuery {
        /// The orphan query sequence.
        query: String,
    },
    /// The set differs from the oracle (missing or extra sites).
    SetMismatch {
        /// Records in the set but not the oracle.
        extra: usize,
        /// Oracle records missing from the set.
        missing: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnknownChromosome { chrom } => {
                write!(f, "record references unknown chromosome {chrom:?}")
            }
            VerifyError::OutOfRange { chrom, position } => {
                write!(f, "window at {chrom}:{position} runs past the chromosome")
            }
            VerifyError::MismatchCount {
                chrom,
                position,
                reported,
                recounted,
            } => write!(
                f,
                "mismatch recount at {chrom}:{position} gives {recounted}, record says {reported}"
            ),
            VerifyError::OverThreshold {
                chrom,
                position,
                reported,
                threshold,
            } => write!(
                f,
                "record at {chrom}:{position} reports {reported} mismatches over threshold {threshold}"
            ),
            VerifyError::UnknownQuery { query } => {
                write!(f, "record's query {query:?} is not in the input")
            }
            VerifyError::SetMismatch { extra, missing } => {
                write!(f, "result set disagrees with the oracle: {extra} extra, {missing} missing")
            }
        }
    }
}

impl Error for VerifyError {}

/// Verify each record individually against the genome: window bounds,
/// mismatch recount, threshold.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_records(
    assembly: &Assembly,
    input: &SearchInput,
    hits: &[OffTarget],
) -> Result<(), VerifyError> {
    let plen = input.pattern_len();
    for hit in hits {
        let query = input
            .queries
            .iter()
            .find(|q| q.seq == hit.query)
            .ok_or_else(|| VerifyError::UnknownQuery {
                query: String::from_utf8_lossy(&hit.query).into_owned(),
            })?;
        let chrom = assembly
            .chromosome(&hit.chrom)
            .ok_or_else(|| VerifyError::UnknownChromosome {
                chrom: hit.chrom.clone(),
            })?;
        if hit.position + plen > chrom.len() {
            return Err(VerifyError::OutOfRange {
                chrom: hit.chrom.clone(),
                position: hit.position,
            });
        }
        let window = &chrom.seq[hit.position..hit.position + plen];
        let oriented = match hit.strand {
            Strand::Forward => window.to_vec(),
            Strand::Reverse => reverse_complement(window),
        };
        let recounted = oriented
            .iter()
            .zip(&hit.query)
            .filter(|&(&g, &q)| is_mismatch(q, g))
            .count() as u16;
        if recounted != hit.mismatches {
            return Err(VerifyError::MismatchCount {
                chrom: hit.chrom.clone(),
                position: hit.position,
                reported: hit.mismatches,
                recounted,
            });
        }
        if hit.mismatches > query.max_mismatches {
            return Err(VerifyError::OverThreshold {
                chrom: hit.chrom.clone(),
                position: hit.position,
                reported: hit.mismatches,
                threshold: query.max_mismatches,
            });
        }
    }
    Ok(())
}

/// Full verification: per-record checks plus set equality against the
/// scalar oracle.
///
/// # Errors
///
/// Returns the first per-record [`VerifyError`], or
/// [`VerifyError::SetMismatch`] when the sets differ.
pub fn verify_complete(
    assembly: &Assembly,
    input: &SearchInput,
    hits: &[OffTarget],
) -> Result<(), VerifyError> {
    verify_records(assembly, input, hits)?;
    let oracle = search_sequential(assembly, input);
    if hits == oracle.as_slice() {
        return Ok(());
    }
    let extra = hits.iter().filter(|h| !oracle.contains(h)).count();
    let missing = oracle.iter().filter(|h| !hits.contains(h)).count();
    Err(VerifyError::SetMismatch { extra, missing })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{self, PipelineConfig};
    use gpu_sim::DeviceSpec;

    fn workload() -> (Assembly, SearchInput) {
        let assembly = genome::synth::hg19_mini(0.004);
        let input = SearchInput::canonical_example(assembly.name());
        (assembly, input)
    }

    #[test]
    fn pipeline_output_verifies_completely() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 13);
        let report = pipeline::sycl::run(&assembly, &input, &config).unwrap();
        assert!(!report.offtargets.is_empty());
        verify_complete(&assembly, &input, &report.offtargets).unwrap();
    }

    #[test]
    fn corrupted_counts_are_caught() {
        let (assembly, input) = workload();
        let mut hits = search_sequential(&assembly, &input);
        hits[0].mismatches = hits[0].mismatches.wrapping_add(1);
        let err = verify_records(&assembly, &input, &hits).unwrap_err();
        assert!(matches!(err, VerifyError::MismatchCount { .. }));
    }

    #[test]
    fn dropped_sites_are_caught() {
        let (assembly, input) = workload();
        let mut hits = search_sequential(&assembly, &input);
        hits.pop();
        let err = verify_complete(&assembly, &input, &hits).unwrap_err();
        assert_eq!(err, VerifyError::SetMismatch { extra: 0, missing: 1 });
    }

    #[test]
    fn foreign_records_are_caught() {
        let (assembly, input) = workload();
        let mut hits = search_sequential(&assembly, &input);

        let mut bad_chrom = hits.clone();
        bad_chrom[0].chrom = "chrZ".to_owned();
        assert!(matches!(
            verify_records(&assembly, &input, &bad_chrom).unwrap_err(),
            VerifyError::UnknownChromosome { .. }
        ));

        let mut bad_query = hits.clone();
        bad_query[0].query = b"TTTTTTTTTTTTTTTTTTTTTTT".to_vec();
        assert!(matches!(
            verify_records(&assembly, &input, &bad_query).unwrap_err(),
            VerifyError::UnknownQuery { .. }
        ));

        hits[0].position = usize::MAX / 2;
        assert!(matches!(
            verify_records(&assembly, &input, &hits).unwrap_err(),
            VerifyError::OutOfRange { .. }
        ));
    }

    #[test]
    fn errors_render_helpfully() {
        let e = VerifyError::MismatchCount {
            chrom: "chr1".into(),
            position: 42,
            reported: 3,
            recounted: 4,
        };
        assert_eq!(
            e.to_string(),
            "mismatch recount at chr1:42 gives 4, record says 3"
        );
    }
}
