//! Off-target site records and output formatting.
//!
//! Cas-OFFinder "saves the results (chromosome number, position, direction,
//! the number of mismatched bases and potential off-target DNA sequence with
//! mismatched bases) in a file for analysis" (§II.A). [`OffTarget`] is one
//! such record; [`OffTarget::to_line`] renders the tab-separated line the
//! real tool writes, with mismatched bases lowercased.

use std::fmt;

use genome::base::{is_mismatch, reverse_complement};

/// Strand of a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strand {
    /// Forward (`+`).
    Forward,
    /// Reverse complement (`-`).
    Reverse,
}

impl fmt::Display for Strand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Strand::Forward => "+",
            Strand::Reverse => "-",
        })
    }
}

/// One potential off-target site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OffTarget {
    /// The query sequence this site was found for.
    pub query: Vec<u8>,
    /// Chromosome name.
    pub chrom: String,
    /// 0-based position of the site's first base on the forward strand.
    pub position: usize,
    /// Strand the query aligns to.
    pub strand: Strand,
    /// Number of mismatched bases.
    pub mismatches: u16,
    /// The genomic site as compared against the query (reverse-complemented
    /// for `-` hits), mismatched bases lowercased.
    pub site: Vec<u8>,
}

impl OffTarget {
    /// Build a record from the raw genomic window at the site.
    ///
    /// `window` is the forward-strand genome slice of pattern length at
    /// `position`; for reverse hits it is reverse-complemented before
    /// comparing, exactly like the kernel compares against the reverse half
    /// of `comp`... after which mismatching positions (w.r.t. `query`) are
    /// lowercased.
    pub fn from_window(
        query: &[u8],
        chrom: impl Into<String>,
        position: usize,
        strand: Strand,
        mismatches: u16,
        window: &[u8],
    ) -> OffTarget {
        let oriented = match strand {
            Strand::Forward => window.to_vec(),
            Strand::Reverse => reverse_complement(window),
        };
        let site = oriented
            .iter()
            .zip(query)
            .map(|(&g, &q)| if is_mismatch(q, g) { g.to_ascii_lowercase() } else { g })
            .collect();
        OffTarget {
            query: query.to_vec(),
            chrom: chrom.into(),
            position,
            strand,
            mismatches,
            site,
        }
    }

    /// Render the tab-separated output line:
    /// `query  chrom  position  site  strand  mismatches`.
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            String::from_utf8_lossy(&self.query),
            self.chrom,
            self.position,
            String::from_utf8_lossy(&self.site),
            self.strand,
            self.mismatches
        )
    }
}

impl fmt::Display for OffTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// Sort records into the canonical reporting order: by query, chromosome,
/// position, then strand — making result sets comparable across pipelines
/// whose atomic compaction orders differ.
pub fn sort_canonical(records: &mut [OffTarget]) {
    records.sort_by(|a, b| {
        (&a.query, &a.chrom, a.position, a.strand).cmp(&(
            &b.query,
            &b.chrom,
            b.position,
            b.strand,
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_site_lowercases_mismatches() {
        // query ACGTA vs window ACTTA: position 2 mismatches.
        let ot = OffTarget::from_window(b"ACGTA", "chr1", 100, Strand::Forward, 1, b"ACTTA");
        assert_eq!(ot.site, b"ACtTA".to_vec());
        assert_eq!(ot.to_line(), "ACGTA\tchr1\t100\tACtTA\t+\t1");
    }

    #[test]
    fn reverse_site_is_reverse_complemented_before_comparison() {
        // window TACGT; revcomp = ACGTA; query ACGTA -> perfect match.
        let ot = OffTarget::from_window(b"ACGTA", "chr2", 5, Strand::Reverse, 0, b"TACGT");
        assert_eq!(ot.site, b"ACGTA".to_vec());
        assert_eq!(ot.strand.to_string(), "-");
    }

    #[test]
    fn n_pattern_positions_always_match() {
        // N in the query matches anything: no lowercasing at position 0.
        let ot = OffTarget::from_window(b"NCG", "chr1", 0, Strand::Forward, 0, b"TCG");
        assert_eq!(ot.site, b"TCG".to_vec());
    }

    #[test]
    fn canonical_sort_orders_by_query_then_location() {
        let mk = |q: &[u8], c: &str, p: usize, s| {
            OffTarget::from_window(q, c, p, s, 0, &vec![b'A'; q.len()])
        };
        let mut v = vec![
            mk(b"TT", "chr2", 5, Strand::Forward),
            mk(b"AA", "chr1", 9, Strand::Reverse),
            mk(b"AA", "chr1", 9, Strand::Forward),
            mk(b"AA", "chr1", 2, Strand::Forward),
        ];
        sort_canonical(&mut v);
        assert_eq!(v[0].position, 2);
        assert_eq!(v[1].strand, Strand::Forward);
        assert_eq!(v[2].strand, Strand::Reverse);
        assert_eq!(v[3].query, b"TT".to_vec());
    }

    #[test]
    fn display_matches_to_line() {
        let ot = OffTarget::from_window(b"AC", "chrX", 7, Strand::Forward, 0, b"AC");
        assert_eq!(format!("{ot}"), ot.to_line());
    }
}
