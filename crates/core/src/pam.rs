//! PAM presets for common nucleases.
//!
//! Cas-OFFinder is "one of the most popular tools for searching potential
//! off-target sites, with no limit to the number of mismatches, PAM types,
//! etc." (§II.A, citing \[11\]). The search engine takes any IUPAC pattern;
//! this module names the well-known ones — including 5′-PAM nucleases like
//! Cas12a, which work unchanged because the pattern's non-`N` positions may
//! sit anywhere.

use crate::input::{Query, SearchInput};

/// A named nuclease PAM preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Nuclease {
    /// SpCas9, `NGG` 3′ PAM (the strict form).
    SpCas9,
    /// SpCas9 relaxed, `NRG` 3′ PAM — the paper's evaluation pattern.
    SpCas9Nrg,
    /// SaCas9, `NNGRRT` 3′ PAM, 21-nt spacer.
    SaCas9,
    /// Cas12a (Cpf1), `TTTV` 5′ PAM, 23-nt spacer.
    Cas12a,
    /// xCas9, `NG` 3′ PAM.
    XCas9,
}

impl Nuclease {
    /// All presets.
    pub const ALL: [Nuclease; 5] = [
        Nuclease::SpCas9,
        Nuclease::SpCas9Nrg,
        Nuclease::SaCas9,
        Nuclease::Cas12a,
        Nuclease::XCas9,
    ];

    /// The PAM sequence in IUPAC code.
    pub fn pam(&self) -> &'static [u8] {
        match self {
            Nuclease::SpCas9 => b"NGG",
            Nuclease::SpCas9Nrg => b"NRG",
            Nuclease::SaCas9 => b"NNGRRT",
            Nuclease::Cas12a => b"TTTV",
            Nuclease::XCas9 => b"NG",
        }
    }

    /// Whether the PAM precedes the protospacer (5′, like Cas12a) or
    /// follows it (3′, like Cas9).
    pub fn is_five_prime(&self) -> bool {
        matches!(self, Nuclease::Cas12a)
    }

    /// Spacer (guide) length in bases.
    pub fn spacer_len(&self) -> usize {
        match self {
            Nuclease::SpCas9 | Nuclease::SpCas9Nrg | Nuclease::XCas9 => 20,
            Nuclease::SaCas9 => 21,
            Nuclease::Cas12a => 23,
        }
    }

    /// The full search pattern: `N` over the spacer, the PAM at its end
    /// (3′) or start (5′).
    pub fn pattern(&self) -> Vec<u8> {
        let spacer = vec![b'N'; self.spacer_len()];
        if self.is_five_prime() {
            [self.pam(), &spacer].concat()
        } else {
            [&spacer[..], self.pam()].concat()
        }
    }

    /// Build a query for `guide` under this preset: the guide goes over the
    /// spacer positions, `N` over the PAM positions.
    ///
    /// # Panics
    ///
    /// Panics if `guide.len() != spacer_len()`.
    pub fn query(&self, guide: &[u8], max_mismatches: u16) -> Query {
        assert_eq!(
            guide.len(),
            self.spacer_len(),
            "guide length must match the nuclease's spacer length"
        );
        let pam_ns = vec![b'N'; self.pam().len()];
        let seq = if self.is_five_prime() {
            [&pam_ns[..], guide].concat()
        } else {
            [guide, &pam_ns[..]].concat()
        };
        Query::new(seq, max_mismatches)
    }

    /// Build a complete [`SearchInput`] for a set of guides.
    ///
    /// # Panics
    ///
    /// Panics if any guide's length differs from [`spacer_len`](Self::spacer_len).
    pub fn search_input(
        &self,
        genome: impl Into<String>,
        guides: &[&[u8]],
        max_mismatches: u16,
    ) -> SearchInput {
        SearchInput {
            genome: genome.into(),
            pattern: self.pattern(),
            queries: guides
                .iter()
                .map(|g| self.query(g, max_mismatches))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::search_sequential;
    use crate::Strand;
    use genome::{Assembly, Chromosome};

    #[test]
    fn patterns_have_the_documented_shape() {
        assert_eq!(Nuclease::SpCas9.pattern(), b"NNNNNNNNNNNNNNNNNNNNNGG");
        assert_eq!(Nuclease::SpCas9Nrg.pattern(), b"NNNNNNNNNNNNNNNNNNNNNRG");
        assert_eq!(
            Nuclease::SaCas9.pattern(),
            b"NNNNNNNNNNNNNNNNNNNNNNNGRRT"
        );
        assert_eq!(
            Nuclease::Cas12a.pattern(),
            b"TTTVNNNNNNNNNNNNNNNNNNNNNNN"
        );
        assert_eq!(Nuclease::XCas9.pattern(), b"NNNNNNNNNNNNNNNNNNNNNG");
        for n in Nuclease::ALL {
            assert_eq!(n.pattern().len(), n.spacer_len() + n.pam().len());
        }
    }

    #[test]
    fn queries_put_n_over_the_pam() {
        let guide = vec![b'A'; 20];
        let q = Nuclease::SpCas9.query(&guide, 3);
        assert_eq!(&q.seq[..20], &guide[..]);
        assert_eq!(&q.seq[20..], b"NNN");

        let guide12a = vec![b'C'; 23];
        let q = Nuclease::Cas12a.query(&guide12a, 3);
        assert_eq!(&q.seq[..4], b"NNNN", "5' PAM positions are wildcards");
        assert_eq!(&q.seq[4..], &guide12a[..]);
    }

    #[test]
    #[should_panic(expected = "spacer length")]
    fn wrong_guide_length_panics() {
        Nuclease::SpCas9.query(b"ACGT", 1);
    }

    #[test]
    fn five_prime_pam_search_works_end_to_end() {
        // A Cas12a site: TTTA PAM then the 23-nt protospacer.
        let guide = b"ACGTACGTACGTACGTACGTACG";
        let mut seq = vec![b'G'; 10];
        seq.extend_from_slice(b"TTTA");
        seq.extend_from_slice(guide);
        seq.extend_from_slice(&[b'G'; 10]);
        let mut assembly = Assembly::new("cas12a");
        assembly.push(Chromosome::new("chr1", seq));

        let input = Nuclease::Cas12a.search_input("cas12a", &[guide], 0);
        let hits = search_sequential(&assembly, &input);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].position, 10, "site starts at the PAM");
        assert_eq!(hits[0].strand, Strand::Forward);
        assert_eq!(hits[0].mismatches, 0);
    }

    #[test]
    fn sa_cas9_pam_is_enforced() {
        // NNGRRT: "CCGAGT" satisfies it (G at the third position, A/G at
        // the R positions, T last); "CCGACT" puts C in an R position.
        let guide = vec![b'A'; 21];
        let mut good = guide.clone();
        good.extend_from_slice(b"CCGAGT"); // N N G R R T: C C G A G T ok
        let mut bad = guide.clone();
        bad.extend_from_slice(b"CCGACT"); // R position holds C: no match

        for (seq, expect) in [(good, 1usize), (bad, 0usize)] {
            let mut assembly = Assembly::new("sa");
            assembly.push(Chromosome::new("chr1", seq));
            let input = Nuclease::SaCas9.search_input("sa", &[&guide], 0);
            let hits = search_sequential(&assembly, &input);
            let forward = hits.iter().filter(|h| h.strand == Strand::Forward).count();
            assert_eq!(forward, expect);
        }
    }

    #[test]
    fn presets_run_on_the_gpu_pipeline_too() {
        use crate::pipeline::{self, PipelineConfig};
        let guide = b"ACGTACGTACGTACGTACGTACG";
        let mut seq = vec![b'G'; 40];
        seq.extend_from_slice(b"TTTC"); // V = A/C/G
        seq.extend_from_slice(guide);
        seq.extend_from_slice(&[b'G'; 40]);
        let mut assembly = Assembly::new("cas12a");
        assembly.push(Chromosome::new("chr1", seq));
        let input = Nuclease::Cas12a.search_input("cas12a", &[guide], 1);

        let config = PipelineConfig::new(gpu_sim::DeviceSpec::mi100()).chunk_size(64);
        let report = pipeline::sycl::run(&assembly, &input, &config).unwrap();
        assert_eq!(report.offtargets, search_sequential(&assembly, &input));
        assert!(!report.offtargets.is_empty());
    }
}
