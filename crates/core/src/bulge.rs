//! Bulge-aware search.
//!
//! §II.A of the paper notes that Cas-OFFinder "can also predict off-target
//! sites with deletions or insertions". A *DNA bulge* means the genomic site
//! carries extra bases relative to the guide (an insertion in the DNA); an
//! *RNA bulge* means the guide carries extra bases (a deletion in the DNA).
//!
//! Following the original tool's strategy, bulges are searched by
//! enumerating modified queries: a DNA bulge of size `b` at guide position
//! `p` inserts `b` wildcard (`N`) bases into the query (widening the genomic
//! window), and an RNA bulge deletes `b` bases (narrowing it). Each variant
//! is then an ordinary mismatch search.

use genome::Assembly;

use crate::cpu::search_sequential;
use crate::input::{Query, SearchInput};
use crate::site::OffTarget;

/// A search backend for bulge enumeration: anything that maps an
/// `(assembly, input)` pair to the canonical result set. The scalar oracle,
/// the GPU pipelines, and the multithreaded CPU baseline all fit.
pub trait SearchBackend {
    /// Run one plain mismatch search.
    fn search(&self, assembly: &Assembly, input: &SearchInput) -> Vec<OffTarget>;
}

/// The scalar oracle as a backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuBackend;

impl SearchBackend for CpuBackend {
    fn search(&self, assembly: &Assembly, input: &SearchInput) -> Vec<OffTarget> {
        search_sequential(assembly, input)
    }
}

/// The SYCL GPU pipeline as a backend.
#[derive(Debug, Clone)]
pub struct SyclBackend(pub crate::pipeline::PipelineConfig);

impl SearchBackend for SyclBackend {
    fn search(&self, assembly: &Assembly, input: &SearchInput) -> Vec<OffTarget> {
        crate::pipeline::sycl::run(assembly, input, &self.0)
            .expect("sycl pipeline failed during bulge search")
            .offtargets
    }
}

/// The bulge class of a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BulgeType {
    /// No bulge: a plain mismatch-only hit.
    None,
    /// DNA bulge of the given size: the genome has extra bases.
    Dna(u8),
    /// RNA bulge of the given size: the guide has extra bases.
    Rna(u8),
}

impl std::fmt::Display for BulgeType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BulgeType::None => write!(f, "X"),
            BulgeType::Dna(n) => write!(f, "DNA:{n}"),
            BulgeType::Rna(n) => write!(f, "RNA:{n}"),
        }
    }
}

/// One bulge-aware hit.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BulgeHit {
    /// The underlying off-target record (the query field holds the bulged
    /// variant actually compared).
    pub site: OffTarget,
    /// Bulge class of the variant that produced the hit.
    pub bulge: BulgeType,
    /// Guide position the bulge was introduced at (0 for [`BulgeType::None`]).
    pub bulge_pos: usize,
}

/// Bulge search limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BulgeLimits {
    /// Maximum DNA bulge size.
    pub max_dna: u8,
    /// Maximum RNA bulge size.
    pub max_rna: u8,
}

/// One enumerated bulge variant of a query: the (possibly widened or
/// shrunk) PAM pattern and the modified guide to run as an ordinary
/// mismatch search, plus the bulge class that labels any hits it produces.
///
/// [`enumerate_variants`] is the single source of truth for the variant
/// sweep; both [`search_with_bulges_on`] and the serving layer's bulge job
/// expansion drive their searches from it, so a bulge job served through
/// `casoff-serve` sees exactly the sweep the library search performs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BulgeVariant {
    /// PAM pattern to search this variant with.
    pub pattern: Vec<u8>,
    /// The modified guide sequence.
    pub query: Vec<u8>,
    /// Bulge class of the variant.
    pub bulge: BulgeType,
    /// Guide position the bulge was introduced at (0 for [`BulgeType::None`]).
    pub bulge_pos: usize,
}

/// Enumerate every search variant of `query` under `limits`, starting with
/// the plain (no-bulge) variant. A DNA bulge of size `b` at position `p`
/// inserts `b` wildcards into the guide and widens the pattern; an RNA
/// bulge deletes `b` guide bases and shrinks it. Queries whose spacer (the
/// non-`N` prefix) is shorter than 2 bases get only the plain variant.
pub fn enumerate_variants(pattern: &[u8], query: &Query, limits: BulgeLimits) -> Vec<BulgeVariant> {
    let mut variants = vec![BulgeVariant {
        pattern: pattern.to_vec(),
        query: query.seq.clone(),
        bulge: BulgeType::None,
        bulge_pos: 0,
    }];
    let spacer_len = query.seq.iter().take_while(|&&c| c != b'N').count();
    if spacer_len < 2 {
        return variants;
    }
    for b in 1..=limits.max_dna {
        for pos in 1..spacer_len {
            variants.push(BulgeVariant {
                pattern: extend_pattern(pattern, b as usize),
                query: insert_ns(&query.seq, pos, b as usize),
                bulge: BulgeType::Dna(b),
                bulge_pos: pos,
            });
        }
    }
    for b in 1..=limits.max_rna {
        if (b as usize) >= spacer_len {
            continue;
        }
        for pos in 1..spacer_len - b as usize {
            variants.push(BulgeVariant {
                pattern: shrink_pattern(pattern, b as usize),
                query: delete_bases(&query.seq, pos, b as usize),
                bulge: BulgeType::Rna(b),
                bulge_pos: pos,
            });
        }
    }
    variants
}

/// Search `assembly` for off-target sites of `input`'s queries allowing
/// mismatches *and* bulges up to `limits`.
///
/// The spacer region is taken to be the non-`N` prefix positions of each
/// query (the PAM is the pattern's non-`N` suffix and is never bulged).
/// Results are sorted and deduplicated; a site found both without a bulge
/// and via some bulged variant is reported once per variant class, as the
/// original tool does.
pub fn search_with_bulges(
    assembly: &Assembly,
    input: &SearchInput,
    limits: BulgeLimits,
) -> Vec<BulgeHit> {
    search_with_bulges_on(&CpuBackend, assembly, input, limits)
}

/// [`search_with_bulges`] over an arbitrary [`SearchBackend`] — run the
/// bulge variant sweep on a GPU pipeline instead of the scalar oracle.
pub fn search_with_bulges_on<B: SearchBackend>(
    backend: &B,
    assembly: &Assembly,
    input: &SearchInput,
    limits: BulgeLimits,
) -> Vec<BulgeHit> {
    let mut hits: Vec<BulgeHit> = Vec::new();

    for query in &input.queries {
        for v in enumerate_variants(&input.pattern, query, limits) {
            let sub_input = SearchInput {
                genome: String::new(),
                pattern: v.pattern,
                queries: vec![Query::new(v.query, query.max_mismatches)],
            };
            for site in backend.search(assembly, &sub_input) {
                hits.push(BulgeHit {
                    site,
                    bulge: v.bulge,
                    bulge_pos: v.bulge_pos,
                });
            }
        }
    }

    // Canonical order and per-(class, site) deduplication: the same genomic
    // site is often reachable from several bulge positions (homopolymer
    // runs); the original tool reports it once per bulge class.
    hits.sort_by(|a, b| dedup_key(a).cmp(&dedup_key(b)).then(a.cmp(b)));
    hits.dedup_by(|a, b| dedup_key(a) == dedup_key(b));
    hits
}

fn dedup_key(h: &BulgeHit) -> (&str, usize, crate::site::Strand, BulgeType) {
    (&h.site.chrom, h.site.position, h.site.strand, h.bulge)
}

fn insert_ns(seq: &[u8], pos: usize, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(seq.len() + n);
    out.extend_from_slice(&seq[..pos]);
    out.extend(std::iter::repeat_n(b'N', n));
    out.extend_from_slice(&seq[pos..]);
    out
}

fn delete_bases(seq: &[u8], pos: usize, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(seq.len() - n);
    out.extend_from_slice(&seq[..pos]);
    out.extend_from_slice(&seq[pos + n..]);
    out
}

/// Widen a PAM pattern by prepending `n` wildcards (the PAM is the non-`N`
/// suffix, so extra genome bases go in front of it).
fn extend_pattern(pattern: &[u8], n: usize) -> Vec<u8> {
    let mut out = vec![b'N'; n];
    out.extend_from_slice(pattern);
    out
}

fn shrink_pattern(pattern: &[u8], n: usize) -> Vec<u8> {
    pattern[n..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::Chromosome;

    fn assembly(seq: &[u8]) -> Assembly {
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new("chr1", seq.to_vec()));
        asm
    }

    #[test]
    fn variant_builders() {
        assert_eq!(insert_ns(b"ACGT", 2, 1), b"ACNGT");
        assert_eq!(delete_bases(b"ACGT", 1, 2), b"AT");
        assert_eq!(extend_pattern(b"NNNGG", 2), b"NNNNNGG");
        assert_eq!(shrink_pattern(b"NNNGG", 2), b"NGG");
    }

    #[test]
    fn plain_hits_are_class_none() {
        let asm = assembly(b"ACGTACGTAGG");
        let input = SearchInput::parse("t\nNNNNNNNNNGG\nACGTACGTNNN 1\n").unwrap();
        let hits = search_with_bulges(&asm, &input, BulgeLimits::default());
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.bulge == BulgeType::None));
    }

    #[test]
    fn dna_bulge_finds_inserted_base() {
        // Guide ACGTACGT; genome carries ACGTAACGT (extra A after pos 5)
        // followed by the AGG PAM: only reachable with a 1-base DNA bulge.
        let asm = assembly(b"TTTACGTAACGTAGGTTT");
        let input = SearchInput::parse("t\nNNNNNNNNNGG\nACGTACGTNNN 0\n").unwrap();
        let none = search_with_bulges(&asm, &input, BulgeLimits::default());
        assert!(none.iter().all(|h| h.bulge == BulgeType::None));
        assert!(
            !none.iter().any(|h| h.site.mismatches == 0),
            "not reachable without a bulge"
        );

        let hits = search_with_bulges(
            &asm,
            &input,
            BulgeLimits {
                max_dna: 1,
                max_rna: 0,
            },
        );
        let dna: Vec<_> = hits
            .iter()
            .filter(|h| h.bulge == BulgeType::Dna(1) && h.site.mismatches == 0)
            .collect();
        assert!(!dna.is_empty(), "1-base DNA bulge must recover the site");
    }

    #[test]
    fn rna_bulge_finds_deleted_base() {
        // Guide ACGTACGT; genome carries ACGACGT (G at pos 3 deleted) + PAM.
        let asm = assembly(b"TTTACGACGTAGGTTT");
        let input = SearchInput::parse("t\nNNNNNNNNNGG\nACGTACGTNNN 0\n").unwrap();
        let hits = search_with_bulges(
            &asm,
            &input,
            BulgeLimits {
                max_dna: 0,
                max_rna: 1,
            },
        );
        let rna: Vec<_> = hits
            .iter()
            .filter(|h| h.bulge == BulgeType::Rna(1) && h.site.mismatches == 0)
            .collect();
        assert!(!rna.is_empty(), "1-base RNA bulge must recover the site");
    }

    #[test]
    fn duplicate_variant_hits_are_deduplicated() {
        // A homopolymer run: inserting an N at different positions yields
        // the same genomic site; it must be reported once per bulge class.
        let asm = assembly(b"AAAAAAAAAAAAAGGTTT");
        let input = SearchInput::parse("t\nNNNNNNNNNGG\nAAAAAAAANNN 0\n").unwrap();
        let hits = search_with_bulges(
            &asm,
            &input,
            BulgeLimits {
                max_dna: 1,
                max_rna: 0,
            },
        );
        let mut keys: Vec<_> = hits
            .iter()
            .map(|h| (h.bulge, h.site.chrom.clone(), h.site.position, h.site.strand))
            .collect();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "no duplicate (class, site) pairs");
    }

    #[test]
    fn gpu_backend_agrees_with_the_cpu_backend() {
        use crate::pipeline::PipelineConfig;
        let asm = assembly(b"TTTACGTAACGTAGGTTTACGACGTAGGTTTACGTACGTAGGTT");
        let input = SearchInput::parse("t\nNNNNNNNNNGG\nACGTACGTNNN 1\n").unwrap();
        let limits = BulgeLimits {
            max_dna: 1,
            max_rna: 1,
        };
        let cpu = search_with_bulges(&asm, &input, limits);
        let gpu = search_with_bulges_on(
            &SyclBackend(PipelineConfig::new(gpu_sim::DeviceSpec::mi100()).chunk_size(64)),
            &asm,
            &input,
            limits,
        );
        assert_eq!(cpu, gpu);
        assert!(!cpu.is_empty());
    }

    #[test]
    fn enumerated_variants_start_plain_and_cover_both_classes() {
        let q = Query::new(b"ACGTACGTNNN".to_vec(), 1);
        let limits = BulgeLimits {
            max_dna: 2,
            max_rna: 1,
        };
        let vs = enumerate_variants(b"NNNNNNNNNGG", &q, limits);
        assert_eq!(vs[0].bulge, BulgeType::None);
        assert_eq!(vs[0].query, q.seq);
        assert_eq!(vs[0].pattern, b"NNNNNNNNNGG");
        // Spacer is 8 bases: 7 insert positions per DNA size, 7 and then
        // spacer_len-1-b positions for RNA deletions.
        let dna: Vec<_> = vs.iter().filter(|v| matches!(v.bulge, BulgeType::Dna(_))).collect();
        let rna: Vec<_> = vs.iter().filter(|v| matches!(v.bulge, BulgeType::Rna(_))).collect();
        assert_eq!(dna.len(), 14, "two DNA sizes x 7 positions");
        assert_eq!(rna.len(), 6, "one RNA size x 6 positions");
        for v in &dna {
            assert!(v.pattern.len() > 11 && v.query.len() > 11);
        }
        for v in &rna {
            assert!(v.pattern.len() < 11 && v.query.len() < 11);
        }
        // Short spacers fall back to the plain variant only.
        let short = Query::new(b"ANNN".to_vec(), 0);
        assert_eq!(enumerate_variants(b"NNGG", &short, limits).len(), 1);
    }

    #[test]
    fn display_labels() {
        assert_eq!(BulgeType::None.to_string(), "X");
        assert_eq!(BulgeType::Dna(2).to_string(), "DNA:2");
        assert_eq!(BulgeType::Rna(1).to_string(), "RNA:1");
    }
}
