//! Bulge-aware search.
//!
//! §II.A of the paper notes that Cas-OFFinder "can also predict off-target
//! sites with deletions or insertions". A *DNA bulge* means the genomic site
//! carries extra bases relative to the guide (an insertion in the DNA); an
//! *RNA bulge* means the guide carries extra bases (a deletion in the DNA).
//!
//! Following the original tool's strategy, bulges are searched by
//! enumerating modified queries: a DNA bulge of size `b` at guide position
//! `p` inserts `b` wildcard (`N`) bases into the query (widening the genomic
//! window), and an RNA bulge deletes `b` bases (narrowing it). Each variant
//! is then an ordinary mismatch search.

use genome::Assembly;

use crate::cpu::search_sequential;
use crate::input::{Query, SearchInput};
use crate::site::OffTarget;

/// A search backend for bulge enumeration: anything that maps an
/// `(assembly, input)` pair to the canonical result set. The scalar oracle,
/// the GPU pipelines, and the multithreaded CPU baseline all fit.
pub trait SearchBackend {
    /// Run one plain mismatch search.
    fn search(&self, assembly: &Assembly, input: &SearchInput) -> Vec<OffTarget>;
}

/// The scalar oracle as a backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuBackend;

impl SearchBackend for CpuBackend {
    fn search(&self, assembly: &Assembly, input: &SearchInput) -> Vec<OffTarget> {
        search_sequential(assembly, input)
    }
}

/// The SYCL GPU pipeline as a backend.
#[derive(Debug, Clone)]
pub struct SyclBackend(pub crate::pipeline::PipelineConfig);

impl SearchBackend for SyclBackend {
    fn search(&self, assembly: &Assembly, input: &SearchInput) -> Vec<OffTarget> {
        crate::pipeline::sycl::run(assembly, input, &self.0)
            .expect("sycl pipeline failed during bulge search")
            .offtargets
    }
}

/// The bulge class of a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BulgeType {
    /// No bulge: a plain mismatch-only hit.
    None,
    /// DNA bulge of the given size: the genome has extra bases.
    Dna(u8),
    /// RNA bulge of the given size: the guide has extra bases.
    Rna(u8),
}

impl std::fmt::Display for BulgeType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BulgeType::None => write!(f, "X"),
            BulgeType::Dna(n) => write!(f, "DNA:{n}"),
            BulgeType::Rna(n) => write!(f, "RNA:{n}"),
        }
    }
}

/// One bulge-aware hit.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BulgeHit {
    /// The underlying off-target record (the query field holds the bulged
    /// variant actually compared).
    pub site: OffTarget,
    /// Bulge class of the variant that produced the hit.
    pub bulge: BulgeType,
    /// Guide position the bulge was introduced at (0 for [`BulgeType::None`]).
    pub bulge_pos: usize,
}

/// Bulge search limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BulgeLimits {
    /// Maximum DNA bulge size.
    pub max_dna: u8,
    /// Maximum RNA bulge size.
    pub max_rna: u8,
}

/// Search `assembly` for off-target sites of `input`'s queries allowing
/// mismatches *and* bulges up to `limits`.
///
/// The spacer region is taken to be the non-`N` prefix positions of each
/// query (the PAM is the pattern's non-`N` suffix and is never bulged).
/// Results are sorted and deduplicated; a site found both without a bulge
/// and via some bulged variant is reported once per variant class, as the
/// original tool does.
pub fn search_with_bulges(
    assembly: &Assembly,
    input: &SearchInput,
    limits: BulgeLimits,
) -> Vec<BulgeHit> {
    search_with_bulges_on(&CpuBackend, assembly, input, limits)
}

/// [`search_with_bulges`] over an arbitrary [`SearchBackend`] — run the
/// bulge variant sweep on a GPU pipeline instead of the scalar oracle.
pub fn search_with_bulges_on<B: SearchBackend>(
    backend: &B,
    assembly: &Assembly,
    input: &SearchInput,
    limits: BulgeLimits,
) -> Vec<BulgeHit> {
    let mut hits: Vec<BulgeHit> = Vec::new();

    // Plain search first.
    for site in backend.search(assembly, input) {
        hits.push(BulgeHit {
            site,
            bulge: BulgeType::None,
            bulge_pos: 0,
        });
    }

    for query in &input.queries {
        let spacer_len = query.seq.iter().take_while(|&&c| c != b'N').count();
        if spacer_len < 2 {
            continue;
        }

        // DNA bulges: insert `b` Ns into the query and extend the pattern.
        for b in 1..=limits.max_dna {
            for pos in 1..spacer_len {
                let variant = insert_ns(&query.seq, pos, b as usize);
                let pattern = extend_pattern(&input.pattern, b as usize);
                collect_variant(
                    backend,
                    assembly,
                    &pattern,
                    &variant,
                    query.max_mismatches,
                    BulgeType::Dna(b),
                    pos,
                    &mut hits,
                );
            }
        }

        // RNA bulges: delete `b` query bases and shrink the pattern.
        for b in 1..=limits.max_rna {
            if (b as usize) >= spacer_len {
                continue;
            }
            for pos in 1..spacer_len - b as usize {
                let variant = delete_bases(&query.seq, pos, b as usize);
                let pattern = shrink_pattern(&input.pattern, b as usize);
                collect_variant(
                    backend,
                    assembly,
                    &pattern,
                    &variant,
                    query.max_mismatches,
                    BulgeType::Rna(b),
                    pos,
                    &mut hits,
                );
            }
        }
    }

    // Canonical order and per-(class, site) deduplication: the same genomic
    // site is often reachable from several bulge positions (homopolymer
    // runs); the original tool reports it once per bulge class.
    hits.sort_by(|a, b| dedup_key(a).cmp(&dedup_key(b)).then(a.cmp(b)));
    hits.dedup_by(|a, b| dedup_key(a) == dedup_key(b));
    hits
}

fn dedup_key(h: &BulgeHit) -> (&str, usize, crate::site::Strand, BulgeType) {
    (&h.site.chrom, h.site.position, h.site.strand, h.bulge)
}

#[allow(clippy::too_many_arguments)]
fn collect_variant<B: SearchBackend>(
    backend: &B,
    assembly: &Assembly,
    pattern: &[u8],
    variant: &[u8],
    max_mismatches: u16,
    bulge: BulgeType,
    bulge_pos: usize,
    hits: &mut Vec<BulgeHit>,
) {
    let sub_input = SearchInput {
        genome: String::new(),
        pattern: pattern.to_vec(),
        queries: vec![Query::new(variant.to_vec(), max_mismatches)],
    };
    for site in backend.search(assembly, &sub_input) {
        hits.push(BulgeHit {
            site,
            bulge,
            bulge_pos,
        });
    }
}

fn insert_ns(seq: &[u8], pos: usize, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(seq.len() + n);
    out.extend_from_slice(&seq[..pos]);
    out.extend(std::iter::repeat_n(b'N', n));
    out.extend_from_slice(&seq[pos..]);
    out
}

fn delete_bases(seq: &[u8], pos: usize, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(seq.len() - n);
    out.extend_from_slice(&seq[..pos]);
    out.extend_from_slice(&seq[pos + n..]);
    out
}

/// Widen a PAM pattern by prepending `n` wildcards (the PAM is the non-`N`
/// suffix, so extra genome bases go in front of it).
fn extend_pattern(pattern: &[u8], n: usize) -> Vec<u8> {
    let mut out = vec![b'N'; n];
    out.extend_from_slice(pattern);
    out
}

fn shrink_pattern(pattern: &[u8], n: usize) -> Vec<u8> {
    pattern[n..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::Chromosome;

    fn assembly(seq: &[u8]) -> Assembly {
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new("chr1", seq.to_vec()));
        asm
    }

    #[test]
    fn variant_builders() {
        assert_eq!(insert_ns(b"ACGT", 2, 1), b"ACNGT");
        assert_eq!(delete_bases(b"ACGT", 1, 2), b"AT");
        assert_eq!(extend_pattern(b"NNNGG", 2), b"NNNNNGG");
        assert_eq!(shrink_pattern(b"NNNGG", 2), b"NGG");
    }

    #[test]
    fn plain_hits_are_class_none() {
        let asm = assembly(b"ACGTACGTAGG");
        let input = SearchInput::parse("t\nNNNNNNNNNGG\nACGTACGTNNN 1\n").unwrap();
        let hits = search_with_bulges(&asm, &input, BulgeLimits::default());
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.bulge == BulgeType::None));
    }

    #[test]
    fn dna_bulge_finds_inserted_base() {
        // Guide ACGTACGT; genome carries ACGTAACGT (extra A after pos 5)
        // followed by the AGG PAM: only reachable with a 1-base DNA bulge.
        let asm = assembly(b"TTTACGTAACGTAGGTTT");
        let input = SearchInput::parse("t\nNNNNNNNNNGG\nACGTACGTNNN 0\n").unwrap();
        let none = search_with_bulges(&asm, &input, BulgeLimits::default());
        assert!(none.iter().all(|h| h.bulge == BulgeType::None));
        assert!(
            !none.iter().any(|h| h.site.mismatches == 0),
            "not reachable without a bulge"
        );

        let hits = search_with_bulges(
            &asm,
            &input,
            BulgeLimits {
                max_dna: 1,
                max_rna: 0,
            },
        );
        let dna: Vec<_> = hits
            .iter()
            .filter(|h| h.bulge == BulgeType::Dna(1) && h.site.mismatches == 0)
            .collect();
        assert!(!dna.is_empty(), "1-base DNA bulge must recover the site");
    }

    #[test]
    fn rna_bulge_finds_deleted_base() {
        // Guide ACGTACGT; genome carries ACGACGT (G at pos 3 deleted) + PAM.
        let asm = assembly(b"TTTACGACGTAGGTTT");
        let input = SearchInput::parse("t\nNNNNNNNNNGG\nACGTACGTNNN 0\n").unwrap();
        let hits = search_with_bulges(
            &asm,
            &input,
            BulgeLimits {
                max_dna: 0,
                max_rna: 1,
            },
        );
        let rna: Vec<_> = hits
            .iter()
            .filter(|h| h.bulge == BulgeType::Rna(1) && h.site.mismatches == 0)
            .collect();
        assert!(!rna.is_empty(), "1-base RNA bulge must recover the site");
    }

    #[test]
    fn duplicate_variant_hits_are_deduplicated() {
        // A homopolymer run: inserting an N at different positions yields
        // the same genomic site; it must be reported once per bulge class.
        let asm = assembly(b"AAAAAAAAAAAAAGGTTT");
        let input = SearchInput::parse("t\nNNNNNNNNNGG\nAAAAAAAANNN 0\n").unwrap();
        let hits = search_with_bulges(
            &asm,
            &input,
            BulgeLimits {
                max_dna: 1,
                max_rna: 0,
            },
        );
        let mut keys: Vec<_> = hits
            .iter()
            .map(|h| (h.bulge, h.site.chrom.clone(), h.site.position, h.site.strand))
            .collect();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "no duplicate (class, site) pairs");
    }

    #[test]
    fn gpu_backend_agrees_with_the_cpu_backend() {
        use crate::pipeline::PipelineConfig;
        let asm = assembly(b"TTTACGTAACGTAGGTTTACGACGTAGGTTTACGTACGTAGGTT");
        let input = SearchInput::parse("t\nNNNNNNNNNGG\nACGTACGTNNN 1\n").unwrap();
        let limits = BulgeLimits {
            max_dna: 1,
            max_rna: 1,
        };
        let cpu = search_with_bulges(&asm, &input, limits);
        let gpu = search_with_bulges_on(
            &SyclBackend(PipelineConfig::new(gpu_sim::DeviceSpec::mi100()).chunk_size(64)),
            &asm,
            &input,
            limits,
        );
        assert_eq!(cpu, gpu);
        assert!(!cpu.is_empty());
    }

    #[test]
    fn display_labels() {
        assert_eq!(BulgeType::None.to_string(), "X");
        assert_eq!(BulgeType::Dna(2).to_string(), "DNA:2");
        assert_eq!(BulgeType::Rna(1).to_string(), "RNA:1");
    }
}
