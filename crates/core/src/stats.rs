//! Result-set statistics.
//!
//! The original tool's output is typically post-processed into summaries —
//! how many sites per guide, how mismatches are distributed, strand bias.
//! This module computes those summaries directly from a result set.

use std::collections::BTreeMap;
use std::fmt;

use crate::site::{OffTarget, Strand};

/// Aggregated statistics over a set of off-target records.
///
/// # Examples
///
/// ```
/// use cas_offinder::{cpu, SearchInput};
/// use cas_offinder::stats::SearchStats;
///
/// let assembly = genome::synth::hg19_mini(0.005);
/// let input = SearchInput::canonical_example("hg19-mini");
/// let hits = cpu::search_sequential(&assembly, &input);
/// let stats = SearchStats::from_hits(&hits);
/// assert_eq!(stats.total(), hits.len());
/// println!("{stats}");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    per_query: BTreeMap<Vec<u8>, usize>,
    per_chromosome: BTreeMap<String, usize>,
    mismatch_histogram: BTreeMap<u16, usize>,
    forward: usize,
    reverse: usize,
}

impl SearchStats {
    /// Compute statistics over `hits`.
    pub fn from_hits(hits: &[OffTarget]) -> SearchStats {
        let mut stats = SearchStats::default();
        for hit in hits {
            *stats.per_query.entry(hit.query.clone()).or_default() += 1;
            *stats
                .per_chromosome
                .entry(hit.chrom.clone())
                .or_default() += 1;
            *stats.mismatch_histogram.entry(hit.mismatches).or_default() += 1;
            match hit.strand {
                Strand::Forward => stats.forward += 1,
                Strand::Reverse => stats.reverse += 1,
            }
        }
        stats
    }

    /// Total number of records.
    pub fn total(&self) -> usize {
        self.forward + self.reverse
    }

    /// Records on the forward strand.
    pub fn forward(&self) -> usize {
        self.forward
    }

    /// Records on the reverse strand.
    pub fn reverse(&self) -> usize {
        self.reverse
    }

    /// Hits per query sequence.
    pub fn per_query(&self) -> &BTreeMap<Vec<u8>, usize> {
        &self.per_query
    }

    /// Hits per chromosome.
    pub fn per_chromosome(&self) -> &BTreeMap<String, usize> {
        &self.per_chromosome
    }

    /// Hits per mismatch count.
    pub fn mismatch_histogram(&self) -> &BTreeMap<u16, usize> {
        &self.mismatch_histogram
    }

    /// Number of exact (0-mismatch) hits.
    pub fn exact(&self) -> usize {
        self.mismatch_histogram.get(&0).copied().unwrap_or(0)
    }

    /// Mean mismatches per hit (0 when empty).
    pub fn mean_mismatches(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        let weighted: usize = self
            .mismatch_histogram
            .iter()
            .map(|(&mm, &n)| mm as usize * n)
            .sum();
        weighted as f64 / self.total() as f64
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} sites ({} forward, {} reverse, {} exact, mean mismatches {:.2})",
            self.total(),
            self.forward,
            self.reverse,
            self.exact(),
            self.mean_mismatches()
        )?;
        write!(f, "  mismatches:")?;
        for (mm, n) in &self.mismatch_histogram {
            write!(f, " {mm}:{n}")?;
        }
        writeln!(f)?;
        write!(f, "  per query:")?;
        for (q, n) in &self.per_query {
            write!(f, " {}={n}", String::from_utf8_lossy(q))?;
        }
        writeln!(f)?;
        write!(f, "  per chromosome:")?;
        for (c, n) in &self.per_chromosome {
            write!(f, " {c}={n}")?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(query: &[u8], chrom: &str, strand: Strand, mm: u16) -> OffTarget {
        OffTarget::from_window(query, chrom, 0, strand, mm, &vec![b'A'; query.len()])
    }

    fn sample() -> Vec<OffTarget> {
        vec![
            hit(b"AA", "chr1", Strand::Forward, 0),
            hit(b"AA", "chr1", Strand::Reverse, 2),
            hit(b"AA", "chr2", Strand::Forward, 2),
            hit(b"TT", "chr2", Strand::Forward, 1),
        ]
    }

    #[test]
    fn aggregates_every_dimension() {
        let stats = SearchStats::from_hits(&sample());
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.forward(), 3);
        assert_eq!(stats.reverse(), 1);
        assert_eq!(stats.exact(), 1);
        assert_eq!(stats.per_query()[&b"AA".to_vec()], 3);
        assert_eq!(stats.per_query()[&b"TT".to_vec()], 1);
        assert_eq!(stats.per_chromosome()["chr1"], 2);
        assert_eq!(stats.per_chromosome()["chr2"], 2);
        assert_eq!(stats.mismatch_histogram()[&2], 2);
        assert!((stats.mean_mismatches() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_set_is_well_behaved() {
        let stats = SearchStats::from_hits(&[]);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.exact(), 0);
        assert_eq!(stats.mean_mismatches(), 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let text = SearchStats::from_hits(&sample()).to_string();
        assert!(text.contains("4 sites"));
        assert!(text.contains("3 forward"));
        assert!(text.contains("chr1=2"));
        assert!(text.contains("AA=3"));
    }

    #[test]
    fn mutation_budget_respected_in_miniatures() {
        // The implanted guides must show up in the histogram with a spread
        // of mismatch counts (0..=5 cycling per implant_sites).
        let assembly = genome::synth::hg19_mini(0.01);
        let input = crate::SearchInput::canonical_example("hg19-mini");
        let stats = SearchStats::from_hits(&crate::cpu::search_sequential(&assembly, &input));
        assert!(stats.exact() >= 2, "at least one exact copy per guide");
        assert!(stats.total() > stats.exact(), "mutated copies too");
    }
}
