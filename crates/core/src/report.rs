//! Timing breakdowns of a pipeline run.

use std::fmt;
use std::time::Duration;

use gpu_sim::profile::Profile;

use crate::site::OffTarget;

/// Which programming model produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Api {
    /// The 13-step OpenCL host pipeline.
    OpenCl,
    /// The 8-step SYCL host pipeline.
    Sycl,
}

impl fmt::Display for Api {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Api::OpenCl => "OpenCL",
            Api::Sycl => "SYCL",
        })
    }
}

/// Simulated timing breakdown of one search run.
///
/// `elapsed_s` corresponds to the paper's reported elapsed time: device-side
/// simulated time, excluding environment setup and input-file parsing
/// (§IV.A).
#[derive(Debug, Clone, Default)]
pub struct TimingBreakdown {
    /// Total simulated elapsed time in seconds.
    pub elapsed_s: f64,
    /// Simulated host<->device transfer time.
    pub transfer_s: f64,
    /// Simulated `finder` kernel time.
    pub finder_s: f64,
    /// Simulated `comparer` kernel time.
    pub comparer_s: f64,
    /// Number of finder launches (one per chunk).
    pub finder_launches: usize,
    /// Finder launches skipped because the candidate list was served from a
    /// cache (the chunk had been swept under this pattern before).
    pub finder_launches_skipped: usize,
    /// Number of comparer launches (one per chunk per query, or one per
    /// chunk per guide block on the fused path).
    pub comparer_launches: usize,
    /// How many of `comparer_launches` were fused multi-guide launches.
    pub fused_launches: usize,
    /// Total candidate loci produced by the finder.
    pub candidates: u64,
    /// Total entries passing the mismatch threshold.
    pub entries: u64,
    /// Host wall-clock time spent simulating.
    pub wall: Duration,
}

impl TimingBreakdown {
    /// Total kernel time (finder + comparer).
    pub fn kernel_s(&self) -> f64 {
        self.finder_s + self.comparer_s
    }

    /// Fraction of kernel time spent in the comparer — the paper measures
    /// ~98% (§IV.B).
    pub fn comparer_kernel_share(&self) -> f64 {
        if self.kernel_s() == 0.0 {
            0.0
        } else {
            self.comparer_s / self.kernel_s()
        }
    }

    /// Fraction of the elapsed time spent in the comparer — the paper
    /// measures 50% to 80%.
    pub fn comparer_elapsed_share(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            0.0
        } else {
            self.comparer_s / self.elapsed_s
        }
    }
}

impl fmt::Display for TimingBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "elapsed {:.4}s (transfer {:.4}s, finder {:.4}s x{}, comparer {:.4}s x{}), \
             {} candidates, {} entries",
            self.elapsed_s,
            self.transfer_s,
            self.finder_s,
            self.finder_launches,
            self.comparer_s,
            self.comparer_launches,
            self.candidates,
            self.entries
        )
    }
}

/// The result of a full off-target search.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Which API ran the search.
    pub api: Api,
    /// Device name.
    pub device: String,
    /// The off-target sites, canonically sorted.
    pub offtargets: Vec<OffTarget>,
    /// Simulated timing.
    pub timing: TimingBreakdown,
    /// Per-kernel session profile (the rocprof view of the run).
    pub profile: Profile,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_well_defined() {
        let t = TimingBreakdown {
            elapsed_s: 10.0,
            transfer_s: 2.0,
            finder_s: 0.2,
            comparer_s: 7.8,
            ..TimingBreakdown::default()
        };
        assert!((t.kernel_s() - 8.0).abs() < 1e-12);
        assert!((t.comparer_kernel_share() - 0.975).abs() < 1e-12);
        assert!((t.comparer_elapsed_share() - 0.78).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_guarded() {
        let t = TimingBreakdown::default();
        assert_eq!(t.comparer_kernel_share(), 0.0);
        assert_eq!(t.comparer_elapsed_share(), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let t = TimingBreakdown {
            elapsed_s: 1.0,
            candidates: 5,
            ..TimingBreakdown::default()
        };
        let s = t.to_string();
        assert!(s.contains("5 candidates"));
        assert_eq!(Api::OpenCl.to_string(), "OpenCL");
        assert_eq!(Api::Sycl.to_string(), "SYCL");
    }
}
