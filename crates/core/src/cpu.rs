//! CPU reference implementations.
//!
//! [`search_sequential`] is the plain scalar oracle the GPU pipelines are
//! validated against; [`search_parallel`] is the multithreaded host baseline
//! corresponding to the original authors' OpenMP optimization (related work
//! \[21\] of the paper).

use genome::base::is_mismatch;
use genome::{Assembly, Chromosome};

use crate::input::SearchInput;
use crate::pattern::CompiledSeq;
use crate::site::{sort_canonical, OffTarget, Strand};

/// Count mismatches of `compiled` half `half` against the window at `pos`,
/// stopping after `threshold + 1`.
fn count_mismatches(
    seq: &[u8],
    pos: usize,
    compiled: &CompiledSeq,
    half: usize,
    threshold: u16,
) -> u16 {
    let plen = compiled.plen();
    let mut mm = 0;
    for j in 0..plen {
        let k = compiled.comp_index()[half * plen + j];
        if k < 0 {
            break;
        }
        let k = k as usize;
        if is_mismatch(compiled.comp()[half * plen + k], seq[pos + k]) {
            mm += 1;
            if mm > threshold {
                break;
            }
        }
    }
    mm
}

/// True when the pattern half matches the window exactly (the finder test).
fn half_matches(seq: &[u8], pos: usize, compiled: &CompiledSeq, half: usize) -> bool {
    count_mismatches(seq, pos, compiled, half, 0) == 0
}

fn search_chromosome(
    chrom: &Chromosome,
    pattern: &CompiledSeq,
    queries: &[(CompiledSeq, u16, &[u8])],
    out: &mut Vec<OffTarget>,
) {
    let plen = pattern.plen();
    if chrom.len() < plen {
        return;
    }
    for pos in 0..=chrom.len() - plen {
        let fwd = half_matches(&chrom.seq, pos, pattern, 0);
        let rev = half_matches(&chrom.seq, pos, pattern, 1);
        if !fwd && !rev {
            continue;
        }
        let window = &chrom.seq[pos..pos + plen];
        for (compiled, threshold, query) in queries {
            if fwd {
                let mm = count_mismatches(&chrom.seq, pos, compiled, 0, *threshold);
                if mm <= *threshold {
                    out.push(OffTarget::from_window(
                        query,
                        chrom.name.clone(),
                        pos,
                        Strand::Forward,
                        mm,
                        window,
                    ));
                }
            }
            if rev {
                let mm = count_mismatches(&chrom.seq, pos, compiled, 1, *threshold);
                if mm <= *threshold {
                    out.push(OffTarget::from_window(
                        query,
                        chrom.name.clone(),
                        pos,
                        Strand::Reverse,
                        mm,
                        window,
                    ));
                }
            }
        }
    }
}

fn compile_queries(input: &SearchInput) -> Vec<(CompiledSeq, u16, &[u8])> {
    input
        .queries
        .iter()
        .map(|q| (CompiledSeq::compile(&q.seq), q.max_mismatches, q.seq.as_slice()))
        .collect()
}

/// The sequential scalar reference: exactly the semantics of the GPU
/// pipelines, in canonical order.
///
/// # Examples
///
/// ```
/// use cas_offinder::{cpu, SearchInput};
/// use genome::{Assembly, Chromosome};
///
/// let mut asm = Assembly::new("toy");
/// asm.push(Chromosome::new("chr1", b"ACGTACGTAGG".to_vec()));
/// let input = SearchInput::parse("toy\nNNNNNNNNNGG\nACGTACGTNNN 2\n")?;
/// let hits = cpu::search_sequential(&asm, &input);
/// assert!(!hits.is_empty());
/// # Ok::<(), cas_offinder::InputError>(())
/// ```
pub fn search_sequential(assembly: &Assembly, input: &SearchInput) -> Vec<OffTarget> {
    let pattern = CompiledSeq::compile(&input.pattern);
    let queries = compile_queries(input);
    let mut out = Vec::new();
    for chrom in assembly.chromosomes() {
        search_chromosome(chrom, &pattern, &queries, &mut out);
    }
    sort_canonical(&mut out);
    out
}

/// The multithreaded host baseline (the OpenMP optimization of related work
/// \[21\]): chromosomes are searched concurrently on `threads` OS threads.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn search_parallel(assembly: &Assembly, input: &SearchInput, threads: usize) -> Vec<OffTarget> {
    assert!(threads > 0, "at least one thread is required");
    let pattern = CompiledSeq::compile(&input.pattern);
    let queries = compile_queries(input);

    let chroms = assembly.chromosomes();
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let pattern = &pattern;
                let queries = &queries;
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < chroms.len() {
                        search_chromosome(&chroms[i], pattern, queries, &mut out);
                        i += threads;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("search worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut out = results;
    sort_canonical(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::synth;

    fn toy_assembly() -> Assembly {
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new(
            "chr1",
            b"ACGTACGTAGGTTTACGTACGAAGCCCCC".to_vec(),
        ));
        asm.push(Chromosome::new("chr2", b"CCTACGTACGTNNNNNACGT".to_vec()));
        // A near-match: ACGTACTT vs guide ACGTACGT (one mismatch) + AGG PAM.
        asm.push(Chromosome::new("chr3", b"TTACGTACTTAGGTT".to_vec()));
        asm
    }

    fn toy_input() -> SearchInput {
        SearchInput::parse("toy\nNNNNNNNNNRG\nACGTACGTNNN 3\n").unwrap()
    }

    #[test]
    fn finds_known_forward_hit() {
        let hits = search_sequential(&toy_assembly(), &toy_input());
        // chr1 pos 0: window ACGTACGTAGG; PAM RG at 9..11 = GG ✓ preceded by
        // A -> pattern NRG needs R=A/G at index 9: 'G' ✓. Query compares
        // positions 0..8: perfect match.
        assert!(hits
            .iter()
            .any(|h| h.chrom == "chr1" && h.position == 0 && h.mismatches == 0));
    }

    #[test]
    fn reverse_hits_are_found() {
        // chr2 starts with CCT...: revcomp pattern of NRG is CYN, CCT
        // matches (C, C∈Y, any).
        let hits = search_sequential(&toy_assembly(), &toy_input());
        assert!(hits
            .iter()
            .any(|h| h.chrom == "chr2" && h.strand == Strand::Reverse));
    }

    #[test]
    fn mismatch_threshold_is_respected() {
        let asm = toy_assembly();
        let strict = SearchInput::parse("toy\nNNNNNNNNNRG\nACGTACGTNNN 0\n").unwrap();
        let loose = SearchInput::parse("toy\nNNNNNNNNNRG\nACGTACGTNNN 3\n").unwrap();
        let strict_hits = search_sequential(&asm, &strict);
        let loose_hits = search_sequential(&asm, &loose);
        assert!(strict_hits.len() < loose_hits.len());
        assert!(strict_hits.iter().all(|h| h.mismatches == 0));
        assert!(loose_hits.iter().all(|h| h.mismatches <= 3));
    }

    #[test]
    fn parallel_matches_sequential() {
        let asm = synth::hg19_mini(0.005);
        let input = SearchInput::canonical_example("hg19-mini");
        let seq = search_sequential(&asm, &input);
        for threads in [1, 2, 5] {
            assert_eq!(search_parallel(&asm, &input, threads), seq);
        }
    }

    #[test]
    fn output_is_canonically_sorted() {
        let hits = search_sequential(&toy_assembly(), &toy_input());
        let mut sorted = hits.clone();
        sort_canonical(&mut sorted);
        assert_eq!(hits, sorted);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        search_parallel(&toy_assembly(), &toy_input(), 0);
    }

    #[test]
    fn short_chromosomes_are_skipped() {
        let mut asm = Assembly::new("tiny");
        asm.push(Chromosome::new("c", b"ACG".to_vec()));
        let input = SearchInput::parse("tiny\nNNNNNNNNNRG\nACGTACGTNNN 3\n").unwrap();
        assert!(search_sequential(&asm, &input).is_empty());
    }
}
