//! The Cas-OFFinder input file format.
//!
//! The format (reference \[17\] of the paper):
//!
//! ```text
//! /var/chromosomes/human_hg38     <- genome location (we use assembly names)
//! NNNNNNNNNNNNNNNNNNNNNRG         <- pattern: desired target with PAM
//! GGCCGACCTGTCGCTGACGCNNN 5       <- query sequence + maximum mismatches
//! CGCCAGCGTCAGCGACAGGTNNN 5
//! ...
//! ```
//!
//! "The input file, which contains the desired pattern, query sequences, and
//! maximum mismatch number, is the same as the example listed in \[17\]"
//! (§IV.A) — [`SearchInput::canonical_example`] reproduces that example.

use std::error::Error;
use std::fmt;

use genome::base::is_iupac;

/// One query: a guide sequence (padded with `N` over the PAM positions) and
/// its mismatch threshold.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// Query sequence, same length as the pattern, uppercase IUPAC.
    pub seq: Vec<u8>,
    /// Maximum number of mismatched bases to report.
    pub max_mismatches: u16,
}

impl Query {
    /// Create a query, uppercasing the sequence.
    pub fn new(seq: impl Into<Vec<u8>>, max_mismatches: u16) -> Self {
        let mut seq = seq.into();
        seq.make_ascii_uppercase();
        Query {
            seq,
            max_mismatches,
        }
    }
}

/// A parsed Cas-OFFinder input file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchInput {
    /// Genome location: a directory in real Cas-OFFinder, an assembly name
    /// (`"hg19-mini"` / `"hg38-mini"`) here.
    pub genome: String,
    /// The pattern: desired target site template including the PAM,
    /// e.g. `NNNNNNNNNNNNNNNNNNNNNRG` for SpCas9.
    pub pattern: Vec<u8>,
    /// The query sequences.
    pub queries: Vec<Query>,
}

/// Errors produced while parsing or validating an input file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InputError {
    /// The file had fewer than three non-empty lines.
    TooShort,
    /// A sequence contained a non-IUPAC character.
    InvalidSequence {
        /// 1-based line number.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
    /// A query's length differs from the pattern's.
    LengthMismatch {
        /// 1-based line number of the query.
        line: usize,
        /// The query's length.
        query_len: usize,
        /// The pattern's length.
        pattern_len: usize,
    },
    /// A query line was missing its mismatch count, or it did not parse.
    BadMismatchCount {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for InputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputError::TooShort => {
                write!(f, "input needs a genome line, a pattern line and at least one query")
            }
            InputError::InvalidSequence { line, byte } => {
                write!(f, "invalid sequence character {:?} at line {line}", *byte as char)
            }
            InputError::LengthMismatch {
                line,
                query_len,
                pattern_len,
            } => write!(
                f,
                "query at line {line} has length {query_len}, pattern has length {pattern_len}"
            ),
            InputError::BadMismatchCount { line } => {
                write!(f, "query at line {line} is missing a valid mismatch count")
            }
        }
    }
}

impl Error for InputError {}

impl SearchInput {
    /// Parse an input file.
    ///
    /// # Errors
    ///
    /// Returns an [`InputError`] describing the first problem found.
    ///
    /// # Examples
    ///
    /// ```
    /// use cas_offinder::SearchInput;
    ///
    /// let input = SearchInput::parse(
    ///     "hg38-mini\nNNNNNNNNNNNNNNNNNNNNNRG\nGGCCGACCTGTCGCTGACGCNNN 5\n",
    /// )?;
    /// assert_eq!(input.queries.len(), 1);
    /// assert_eq!(input.queries[0].max_mismatches, 5);
    /// # Ok::<(), cas_offinder::InputError>(())
    /// ```
    pub fn parse(text: &str) -> Result<SearchInput, InputError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty());

        let (_, genome) = lines.next().ok_or(InputError::TooShort)?;
        let (pat_line, pattern_str) = lines.next().ok_or(InputError::TooShort)?;
        let pattern = parse_seq(pattern_str, pat_line)?;

        let mut queries = Vec::new();
        for (line, text) in lines {
            let mut words = text.split_whitespace();
            let seq_str = words.next().ok_or(InputError::BadMismatchCount { line })?;
            let seq = parse_seq(seq_str, line)?;
            if seq.len() != pattern.len() {
                return Err(InputError::LengthMismatch {
                    line,
                    query_len: seq.len(),
                    pattern_len: pattern.len(),
                });
            }
            let max_mismatches = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or(InputError::BadMismatchCount { line })?;
            queries.push(Query {
                seq,
                max_mismatches,
            });
        }
        if queries.is_empty() {
            return Err(InputError::TooShort);
        }
        Ok(SearchInput {
            genome: genome.to_owned(),
            pattern,
            queries,
        })
    }

    /// Render back to the input file format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.genome);
        out.push('\n');
        out.push_str(std::str::from_utf8(&self.pattern).expect("pattern is ascii"));
        out.push('\n');
        for q in &self.queries {
            out.push_str(std::str::from_utf8(&q.seq).expect("query is ascii"));
            out.push(' ');
            out.push_str(&q.max_mismatches.to_string());
            out.push('\n');
        }
        out
    }

    /// The canonical example input of the Cas-OFFinder README (reference
    /// \[17\] of the paper): the SpCas9 `NRG` PAM pattern and two 20-nt guides
    /// with up to 5 mismatches, targeting `genome`.
    pub fn canonical_example(genome: impl Into<String>) -> SearchInput {
        SearchInput {
            genome: genome.into(),
            pattern: b"NNNNNNNNNNNNNNNNNNNNNRG".to_vec(),
            queries: vec![
                Query::new(&b"GGCCGACCTGTCGCTGACGCNNN"[..], 5),
                Query::new(&b"CGCCAGCGTCAGCGACAGGTNNN"[..], 5),
            ],
        }
    }

    /// Pattern length in bases.
    pub fn pattern_len(&self) -> usize {
        self.pattern.len()
    }
}

fn parse_seq(s: &str, line: usize) -> Result<Vec<u8>, InputError> {
    let mut seq = s.as_bytes().to_vec();
    seq.make_ascii_uppercase();
    if let Some(&byte) = seq.iter().find(|&&b| !is_iupac(b)) {
        return Err(InputError::InvalidSequence { line, byte });
    }
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_canonical_example() {
        let input = SearchInput::canonical_example("hg19-mini");
        let reparsed = SearchInput::parse(&input.to_text()).unwrap();
        assert_eq!(reparsed, input);
        assert_eq!(reparsed.pattern_len(), 23);
        assert_eq!(reparsed.queries.len(), 2);
    }

    #[test]
    fn tolerates_blank_lines_and_case() {
        let input = SearchInput::parse("g\n\nnnnrg\n\naacctNNN 3\n").unwrap_err();
        // query length 8 vs pattern length 5
        assert!(matches!(input, InputError::LengthMismatch { .. }));

        let ok = SearchInput::parse("g\nnnnrg\naacct 3\n").unwrap();
        assert_eq!(ok.pattern, b"NNNRG");
        assert_eq!(ok.queries[0].seq, b"AACCT");
    }

    #[test]
    fn rejects_missing_sections() {
        assert_eq!(SearchInput::parse("").unwrap_err(), InputError::TooShort);
        assert_eq!(SearchInput::parse("g\n").unwrap_err(), InputError::TooShort);
        assert_eq!(
            SearchInput::parse("g\nNNNRG\n").unwrap_err(),
            InputError::TooShort,
            "at least one query is required"
        );
    }

    #[test]
    fn rejects_invalid_characters_with_location() {
        let err = SearchInput::parse("g\nNN-RG\nAAAAA 1\n").unwrap_err();
        assert_eq!(err, InputError::InvalidSequence { line: 2, byte: b'-' });
        let err = SearchInput::parse("g\nNNNRG\nAA!AA 1\n").unwrap_err();
        assert_eq!(err, InputError::InvalidSequence { line: 3, byte: b'!' });
    }

    #[test]
    fn rejects_bad_mismatch_counts() {
        let err = SearchInput::parse("g\nNNNRG\nAAAAA\n").unwrap_err();
        assert_eq!(err, InputError::BadMismatchCount { line: 3 });
        let err = SearchInput::parse("g\nNNNRG\nAAAAA x\n").unwrap_err();
        assert_eq!(err, InputError::BadMismatchCount { line: 3 });
    }

    #[test]
    fn length_mismatch_names_both_lengths() {
        let err = SearchInput::parse("g\nNNNRG\nAAAA 2\n").unwrap_err();
        assert_eq!(
            err,
            InputError::LengthMismatch {
                line: 3,
                query_len: 4,
                pattern_len: 5
            }
        );
    }
}
