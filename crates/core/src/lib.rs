//! # cas-offinder — off-target site search for Cas9 RNA-guided endonucleases
//!
//! A from-scratch reimplementation of
//! [Cas-OFFinder](https://github.com/snugel/cas-offinder) (Bae, Park & Kim,
//! 2014) built to reproduce *"Experience Migrating OpenCL to SYCL: A Case
//! Study on Searches for Potential Off-Target Sites of Cas9 RNA-Guided
//! Endonucleases on AMD GPUs"* (Jin & Vetter, SOCC 2023).
//!
//! The search takes a PAM pattern (e.g. `NNNNNNNNNNNNNNNNNNNNNRG` for
//! SpCas9), a set of guide queries, and a mismatch threshold, and scans a
//! genome on both strands:
//!
//! 1. the **finder** kernel selects every position whose window matches the
//!    PAM pattern on either strand ([`kernels::FinderKernel`]);
//! 2. the **comparer** kernel counts mismatched bases at each candidate and
//!    compacts the sites within the threshold ([`kernels::ComparerKernel`]),
//!    in the paper's five optimization stages ([`kernels::OptLevel`]).
//!
//! Two host applications drive the kernels on the `gpu-sim` device
//! simulator: [`pipeline::ocl`] (the 13-step OpenCL original) and
//! [`pipeline::sycl`] (the 8-step SYCL migration). [`cpu`] holds the scalar
//! oracle and the multithreaded host baseline; [`bulge`] adds the
//! insertion/deletion (bulge) search; [`kernels::TwoBitComparerKernel`] is
//! the packed-genome variant of the original authors' follow-up work.
//!
//! ## Quickstart
//!
//! ```
//! use cas_offinder::pipeline::{self, PipelineConfig};
//! use cas_offinder::SearchInput;
//! use gpu_sim::DeviceSpec;
//!
//! // A miniature genome and the canonical example input.
//! let assembly = genome::synth::hg38_mini(0.002);
//! let input = SearchInput::canonical_example("hg38-mini");
//!
//! // Run the SYCL application on a simulated MI100.
//! let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 16);
//! let report = pipeline::sycl::run(&assembly, &input, &config)?;
//! println!("{} sites in {:.3}s simulated", report.offtargets.len(), report.timing.elapsed_s);
//!
//! // The GPU pipelines agree with the scalar oracle.
//! assert_eq!(report.offtargets, cas_offinder::cpu::search_sequential(&assembly, &input));
//! # Ok::<(), sycl_rt::SyclException>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod input;
mod pattern;
mod report;
mod site;

pub mod bulge;
pub mod cli;
pub mod cpu;
pub mod kernels;
pub mod pam;
pub mod pipeline;
pub mod stats;
pub mod verify;

pub use input::{InputError, Query, SearchInput};
pub use pam::Nuclease;
pub use kernels::OptLevel;
pub use pattern::CompiledSeq;
pub use report::{Api, SearchReport, TimingBreakdown};
pub use site::{sort_canonical, OffTarget, Strand};
