//! Compiling patterns and queries into the kernel-side array layout.
//!
//! The kernels work on flat byte arrays in the layout of the paper's
//! Listing 1: for a pattern of length `plen`, the `comp` array holds the
//! forward sequence in `[0, plen)` and the reverse complement in
//! `[plen, 2*plen)` ("the lengths of both arrays are plen x 2, which can
//! accommodate two patterns"); `comp_index` holds, for each half, the
//! positions that actually need comparing (the non-`N` positions),
//! terminated by `-1`.

use genome::base::reverse_complement;

/// A pattern or query compiled into the two-strand kernel layout.
///
/// # Examples
///
/// ```
/// use cas_offinder::CompiledSeq;
///
/// let c = CompiledSeq::compile(b"NNAGG");
/// assert_eq!(c.plen(), 5);
/// // Forward half: the sequence; reverse half: its reverse complement.
/// assert_eq!(&c.comp()[..5], b"NNAGG");
/// assert_eq!(&c.comp()[5..], b"CCTNN");
/// // Non-N positions of each half, -1 terminated.
/// assert_eq!(c.comp_index()[..3], [2, 3, 4]);
/// assert_eq!(c.comp_index()[3], -1);
/// assert_eq!(c.comp_index()[5..8], [0, 1, 2]);
/// assert_eq!(c.comp_index()[8], -1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompiledSeq {
    plen: usize,
    comp: Vec<u8>,
    comp_index: Vec<i32>,
}

impl CompiledSeq {
    /// Compile `seq` (uppercase IUPAC) into the two-strand layout.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is empty — an empty pattern cannot drive a search.
    pub fn compile(seq: &[u8]) -> CompiledSeq {
        assert!(!seq.is_empty(), "cannot compile an empty sequence");
        let plen = seq.len();
        let mut comp = Vec::with_capacity(2 * plen);
        comp.extend_from_slice(seq);
        comp.extend_from_slice(&reverse_complement(seq));

        let mut comp_index = vec![-1i32; 2 * plen];
        for half in 0..2 {
            let mut w = 0;
            for (i, &c) in comp[half * plen..(half + 1) * plen].iter().enumerate() {
                if c != b'N' {
                    comp_index[half * plen + w] = i as i32;
                    w += 1;
                }
            }
        }
        CompiledSeq {
            plen,
            comp,
            comp_index,
        }
    }

    /// Pattern length in bases.
    pub fn plen(&self) -> usize {
        self.plen
    }

    /// The `comp` array: forward sequence then reverse complement,
    /// `2 * plen` bytes.
    pub fn comp(&self) -> &[u8] {
        &self.comp
    }

    /// The `comp_index` array: per half, the non-`N` positions terminated by
    /// `-1`, `2 * plen` entries.
    pub fn comp_index(&self) -> &[i32] {
        &self.comp_index
    }

    /// The forward-strand half of `comp`.
    pub fn forward(&self) -> &[u8] {
        &self.comp[..self.plen]
    }

    /// The reverse-complement half of `comp`.
    pub fn reverse(&self) -> &[u8] {
        &self.comp[self.plen..]
    }

    /// Number of positions compared on the forward strand (non-`N` count).
    pub fn forward_compare_count(&self) -> usize {
        self.comp_index[..self.plen]
            .iter()
            .take_while(|&&i| i >= 0)
            .count()
    }

    /// Number of positions compared on the reverse strand.
    pub fn reverse_compare_count(&self) -> usize {
        self.comp_index[self.plen..]
            .iter()
            .take_while(|&&i| i >= 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_pam_pattern() {
        // SpCas9 pattern: twenty N then NRG -> only positions 21, 22 are
        // compared on the forward strand.
        let c = CompiledSeq::compile(b"NNNNNNNNNNNNNNNNNNNNNRG");
        assert_eq!(c.plen(), 23);
        assert_eq!(c.forward_compare_count(), 2);
        assert_eq!(c.comp_index()[..2], [21, 22]);
        assert_eq!(c.comp_index()[2], -1);
        // Reverse complement of NNN...NRG is CYN...NNN: positions 0, 1.
        assert_eq!(c.reverse()[..3], *b"CYN");
        assert_eq!(c.reverse_compare_count(), 2);
        assert_eq!(c.comp_index()[23..25], [0, 1]);
    }

    #[test]
    fn guide_query_compares_everything_but_pam() {
        let c = CompiledSeq::compile(b"GGCCGACCTGTCGCTGACGCNNN");
        assert_eq!(c.forward_compare_count(), 20);
        assert_eq!(c.reverse_compare_count(), 20);
        // Reverse half indices start after the PAM's three Ns.
        assert_eq!(c.comp_index()[23], 3);
    }

    #[test]
    fn all_n_halves_terminate_immediately() {
        let c = CompiledSeq::compile(b"NNN");
        assert_eq!(c.forward_compare_count(), 0);
        assert_eq!(c.comp_index()[0], -1);
        assert_eq!(c.comp_index()[3], -1);
    }

    #[test]
    fn comp_layout_is_two_halves() {
        let c = CompiledSeq::compile(b"ACGT");
        assert_eq!(c.comp().len(), 8);
        assert_eq!(c.forward(), b"ACGT");
        assert_eq!(c.reverse(), b"ACGT"); // ACGT is its own revcomp
        assert_eq!(c.comp_index(), &[0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        CompiledSeq::compile(b"");
    }
}
