//! Multi-GPU execution — the extension the paper leaves open ("The SYCL
//! application currently executes on a single GPU device", §IV.A).
//!
//! Chunks are distributed round-robin across one SYCL queue per device;
//! each device runs the complete finder→comparer interaction for its
//! chunks, and the simulated elapsed time of the whole search is the
//! slowest device's queue time (the devices run concurrently).

use genome::{Assembly, Chunker};
use gpu_sim::DeviceSpec;
use sycl_rt::SyclResult;

use crate::input::SearchInput;
use crate::report::{Api, SearchReport, TimingBreakdown};
use crate::site::sort_canonical;

use super::chunk::SyclChunkRunner;
use super::{entries_to_offtargets, PipelineConfig};

/// Run the SYCL application across `devices`, returning the merged report
/// plus the per-device timing breakdowns.
///
/// # Errors
///
/// Propagates SYCL exceptions. At least one device is required.
pub fn run(
    assembly: &Assembly,
    input: &SearchInput,
    config: &PipelineConfig,
    devices: &[DeviceSpec],
) -> SyclResult<(SearchReport, Vec<TimingBreakdown>)> {
    assert!(!devices.is_empty(), "at least one device is required");
    let wall_start = std::time::Instant::now();

    // One runner per device; each holds its own queue plus its own copy of
    // the constant pattern tables and query tables.
    let runners: Vec<SyclChunkRunner> = devices
        .iter()
        .map(|spec| {
            let cfg = PipelineConfig {
                device: spec.clone(),
                ..config.clone()
            };
            SyclChunkRunner::new(&cfg, &input.pattern)
        })
        .collect::<SyclResult<_>>()?;
    let per_device_tables: Vec<_> = runners
        .iter()
        .map(|r| r.prepare_queries(&input.queries))
        .collect();
    let plen = runners[0].plen();

    let mut timings = vec![TimingBreakdown::default(); runners.len()];
    let mut offtargets = Vec::new();
    let mut profile = gpu_sim::profile::Profile::new();

    for (i, chunk) in Chunker::new(assembly, config.chunk_size, plen).enumerate() {
        if chunk.seq.len() < plen {
            continue;
        }
        let d = i % runners.len();
        let per_query = runners[d].run_chunk(
            chunk.seq,
            chunk.scan_len,
            &per_device_tables[d],
            &mut timings[d],
            &mut profile,
        )?;
        for (query, entries) in input.queries.iter().zip(&per_query) {
            entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
        }
    }

    // The devices run concurrently: the search finishes when the slowest
    // queue drains.
    for (timing, runner) in timings.iter_mut().zip(&runners) {
        runner.wait();
        timing.elapsed_s = runner.elapsed_s();
    }
    let mut total = TimingBreakdown {
        elapsed_s: timings.iter().map(|t| t.elapsed_s).fold(0.0, f64::max),
        wall: wall_start.elapsed(),
        ..TimingBreakdown::default()
    };
    for t in &timings {
        total.transfer_s += t.transfer_s;
        total.finder_s += t.finder_s;
        total.comparer_s += t.comparer_s;
        total.finder_launches += t.finder_launches;
        total.comparer_launches += t.comparer_launches;
        total.candidates += t.candidates;
        total.entries += t.entries;
    }

    sort_canonical(&mut offtargets);
    let report = SearchReport {
        api: Api::Sycl,
        device: devices
            .iter()
            .map(|d| d.name)
            .collect::<Vec<_>>()
            .join("+"),
        offtargets,
        timing: total,
        profile,
    };
    Ok((report, timings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> (Assembly, SearchInput) {
        let assembly = genome::synth::hg38_mini(0.01);
        let input = SearchInput::canonical_example(assembly.name());
        (assembly, input)
    }

    #[test]
    fn multi_gpu_finds_the_same_sites_as_single_gpu() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 13);
        let single = super::super::sycl::run(&assembly, &input, &config).unwrap();
        let (multi, per_device) = run(
            &assembly,
            &input,
            &config,
            &[DeviceSpec::mi100(), DeviceSpec::mi100(), DeviceSpec::mi100()],
        )
        .unwrap();
        assert_eq!(multi.offtargets, single.offtargets);
        assert_eq!(per_device.len(), 3);
        assert!(per_device.iter().all(|t| t.finder_launches > 0));
    }

    #[test]
    fn three_gpus_beat_one_on_elapsed_time() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 13);
        let single = super::super::sycl::run(&assembly, &input, &config).unwrap();
        let (multi, _) = run(
            &assembly,
            &input,
            &config,
            &[DeviceSpec::mi100(), DeviceSpec::mi100(), DeviceSpec::mi100()],
        )
        .unwrap();
        assert!(
            multi.timing.elapsed_s < single.timing.elapsed_s * 0.6,
            "3 devices must be well below 1 device: {} vs {}",
            multi.timing.elapsed_s,
            single.timing.elapsed_s
        );
    }

    #[test]
    fn heterogeneous_fleet_is_supported() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 13);
        let (multi, per_device) = run(
            &assembly,
            &input,
            &config,
            &DeviceSpec::paper_devices(),
        )
        .unwrap();
        assert_eq!(multi.device, "Radeon VII+MI60+MI100");
        // The slowest device defines the elapsed time.
        let max = per_device.iter().map(|t| t.elapsed_s).fold(0.0, f64::max);
        assert_eq!(multi.timing.elapsed_s, max);
        let oracle = crate::cpu::search_sequential(&assembly, &input);
        assert_eq!(multi.offtargets, oracle);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleet_panics() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100());
        let _ = run(&assembly, &input, &config, &[]);
    }
}
