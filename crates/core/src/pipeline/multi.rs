//! Multi-GPU execution — the extension the paper leaves open ("The SYCL
//! application currently executes on a single GPU device", §IV.A).
//!
//! Chunks are distributed round-robin across one SYCL queue per device;
//! each device runs the complete finder→comparer interaction for its
//! chunks, and the simulated elapsed time of the whole search is the
//! slowest device's queue time (the devices run concurrently).

use genome::{Assembly, Chunker};
use gpu_sim::kernel::LocalLayout;
use gpu_sim::{DeviceSpec, NdRange};
use sycl_rt::{AccessMode, Buffer, Queue, SpecSelector, SyclResult};

use crate::input::SearchInput;
use crate::kernels::{ComparerKernel, ComparerOutput, FinderKernel, FinderOutput};
use crate::pattern::CompiledSeq;
use crate::report::{Api, SearchReport, TimingBreakdown};
use crate::site::sort_canonical;

use super::{entries_to_offtargets, round_up, PipelineConfig};

/// Run the SYCL application across `devices`, returning the merged report
/// plus the per-device timing breakdowns.
///
/// # Errors
///
/// Propagates SYCL exceptions. At least one device is required.
pub fn run(
    assembly: &Assembly,
    input: &SearchInput,
    config: &PipelineConfig,
    devices: &[DeviceSpec],
) -> SyclResult<(SearchReport, Vec<TimingBreakdown>)> {
    assert!(!devices.is_empty(), "at least one device is required");
    let wall_start = std::time::Instant::now();
    let wgs = config
        .work_group_size
        .unwrap_or(super::sycl::SYCL_WORK_GROUP_SIZE);

    let pattern = CompiledSeq::compile(&input.pattern);
    let plen = pattern.plen();
    let queries: Vec<CompiledSeq> = input
        .queries
        .iter()
        .map(|q| CompiledSeq::compile(&q.seq))
        .collect();

    let queues: Vec<Queue> = devices
        .iter()
        .map(|spec| Queue::with_mode(&SpecSelector(spec.clone()), config.exec))
        .collect::<SyclResult<_>>()?;

    // Per-device constant tables (each device needs its own copy).
    type QueryTables = Vec<(Buffer<u8>, Buffer<i32>)>;
    let per_device_tables: Vec<(Buffer<u8>, Buffer<i32>, QueryTables)> =
        (0..queues.len())
            .map(|_| {
                (
                    Buffer::from_slice(pattern.comp()).constant(),
                    Buffer::from_slice(pattern.comp_index()).constant(),
                    queries
                        .iter()
                        .map(|c| {
                            (
                                Buffer::from_slice(c.comp()),
                                Buffer::from_slice(c.comp_index()),
                            )
                        })
                        .collect(),
                )
            })
            .collect();

    let mut timings = vec![TimingBreakdown::default(); queues.len()];
    let mut offtargets = Vec::new();
    let mut profile = gpu_sim::profile::Profile::new();

    for (i, chunk) in Chunker::new(assembly, config.chunk_size, plen).enumerate() {
        if chunk.seq.len() < plen {
            continue;
        }
        let d = i % queues.len();
        let queue = &queues[d];
        let (pat_buf, pat_index_buf, query_bufs) = &per_device_tables[d];
        let timing = &mut timings[d];

        let chr_buf = Buffer::from_slice(chunk.seq);
        let loci_buf = Buffer::<u32>::new(chunk.scan_len);
        let flags_buf = Buffer::<u8>::new(chunk.scan_len);
        let fcount_buf = Buffer::<u32>::new(1);

        let ev = queue.submit(|h| {
            let chr = h.get_access(&chr_buf, AccessMode::Read)?;
            let pat = h.get_access(pat_buf, AccessMode::Read)?;
            let pat_index = h.get_access(pat_index_buf, AccessMode::Read)?;
            let loci = h.get_access(&loci_buf, AccessMode::Write)?;
            let flags = h.get_access(&flags_buf, AccessMode::Write)?;
            let fcount = h.get_access(&fcount_buf, AccessMode::ReadWrite)?;
            let mut layout = LocalLayout::new();
            let l_pat = layout.array::<u8>(2 * plen);
            let l_pat_index = layout.array::<i32>(2 * plen);
            let kernel = FinderKernel {
                chr: chr.raw(),
                pat: pat.raw(),
                pat_index: pat_index.raw(),
                out: FinderOutput {
                    loci: loci.raw(),
                    flags: flags.raw(),
                    count: fcount.raw(),
                },
                scan_len: chunk.scan_len as u32,
                seq_len: chunk.seq.len() as u32,
                plen: plen as u32,
                l_pat,
                l_pat_index,
            };
            h.parallel_for(NdRange::linear(round_up(chunk.scan_len, wgs), wgs), &kernel)
        })?;
        timing.finder_s += ev.launch_reports().iter().map(|r| r.exec_time_s).sum::<f64>();
        for r in ev.launch_reports() {
            profile.record_ref(r);
        }
        timing.finder_launches += 1;

        let n = fcount_buf.to_vec()[0] as usize;
        timing.candidates += n as u64;
        if n == 0 {
            continue;
        }

        for (query, (comp_buf, comp_index_buf)) in input.queries.iter().zip(query_bufs) {
            let out = (
                Buffer::<u16>::new(2 * n),
                Buffer::<u8>::new(2 * n),
                Buffer::<u32>::new(2 * n),
                Buffer::<u32>::new(1),
            );
            let ev = queue.submit(|h| {
                let chr = h.get_access(&chr_buf, AccessMode::Read)?;
                let loci = h.get_access(&loci_buf, AccessMode::Read)?;
                let flags = h.get_access(&flags_buf, AccessMode::Read)?;
                let comp = h.get_access(comp_buf, AccessMode::Read)?;
                let comp_index = h.get_access(comp_index_buf, AccessMode::Read)?;
                let mm = h.get_access(&out.0, AccessMode::Write)?;
                let dir = h.get_access(&out.1, AccessMode::Write)?;
                let mloci = h.get_access(&out.2, AccessMode::Write)?;
                let count = h.get_access(&out.3, AccessMode::ReadWrite)?;
                let mut layout = LocalLayout::new();
                let l_comp = layout.array::<u8>(2 * plen);
                let l_comp_index = layout.array::<i32>(2 * plen);
                let kernel = ComparerKernel {
                    opt: config.opt,
                    chr: chr.raw(),
                    loci: loci.raw(),
                    flags: flags.raw(),
                    comp: comp.raw(),
                    comp_index: comp_index.raw(),
                    locicnt: n as u32,
                    plen: plen as u32,
                    threshold: query.max_mismatches,
                    out: ComparerOutput {
                        mm_count: mm.raw(),
                        direction: dir.raw(),
                        loci: mloci.raw(),
                        count: count.raw(),
                    },
                    l_comp,
                    l_comp_index,
                };
                h.parallel_for(NdRange::linear(round_up(n, wgs), wgs), &kernel)
            })?;
            timing.comparer_s += ev.launch_reports().iter().map(|r| r.exec_time_s).sum::<f64>();
            for r in ev.launch_reports() {
                profile.record_ref(r);
            }
            timing.comparer_launches += 1;

            let m = out.3.to_vec()[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let (mm, dir, pos) = (out.0.to_vec(), out.1.to_vec(), out.2.to_vec());
            let entries: Vec<(u32, u8, u16)> = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
            entries_to_offtargets(&chunk, &query.seq, plen, &entries, &mut offtargets);
        }
    }

    // The devices run concurrently: the search finishes when the slowest
    // queue drains.
    for (timing, queue) in timings.iter_mut().zip(&queues) {
        timing.elapsed_s = queue.elapsed_s();
    }
    let mut total = TimingBreakdown {
        elapsed_s: timings.iter().map(|t| t.elapsed_s).fold(0.0, f64::max),
        wall: wall_start.elapsed(),
        ..TimingBreakdown::default()
    };
    for t in &timings {
        total.transfer_s += t.transfer_s;
        total.finder_s += t.finder_s;
        total.comparer_s += t.comparer_s;
        total.finder_launches += t.finder_launches;
        total.comparer_launches += t.comparer_launches;
        total.candidates += t.candidates;
        total.entries += t.entries;
    }

    sort_canonical(&mut offtargets);
    let report = SearchReport {
        api: Api::Sycl,
        device: devices
            .iter()
            .map(|d| d.name)
            .collect::<Vec<_>>()
            .join("+"),
        offtargets,
        timing: total,
        profile,
    };
    Ok((report, timings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> (Assembly, SearchInput) {
        let assembly = genome::synth::hg38_mini(0.01);
        let input = SearchInput::canonical_example(assembly.name());
        (assembly, input)
    }

    #[test]
    fn multi_gpu_finds_the_same_sites_as_single_gpu() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 13);
        let single = super::super::sycl::run(&assembly, &input, &config).unwrap();
        let (multi, per_device) = run(
            &assembly,
            &input,
            &config,
            &[DeviceSpec::mi100(), DeviceSpec::mi100(), DeviceSpec::mi100()],
        )
        .unwrap();
        assert_eq!(multi.offtargets, single.offtargets);
        assert_eq!(per_device.len(), 3);
        assert!(per_device.iter().all(|t| t.finder_launches > 0));
    }

    #[test]
    fn three_gpus_beat_one_on_elapsed_time() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 13);
        let single = super::super::sycl::run(&assembly, &input, &config).unwrap();
        let (multi, _) = run(
            &assembly,
            &input,
            &config,
            &[DeviceSpec::mi100(), DeviceSpec::mi100(), DeviceSpec::mi100()],
        )
        .unwrap();
        assert!(
            multi.timing.elapsed_s < single.timing.elapsed_s * 0.6,
            "3 devices must be well below 1 device: {} vs {}",
            multi.timing.elapsed_s,
            single.timing.elapsed_s
        );
    }

    #[test]
    fn heterogeneous_fleet_is_supported() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 13);
        let (multi, per_device) = run(
            &assembly,
            &input,
            &config,
            &DeviceSpec::paper_devices(),
        )
        .unwrap();
        assert_eq!(multi.device, "Radeon VII+MI60+MI100");
        // The slowest device defines the elapsed time.
        let max = per_device.iter().map(|t| t.elapsed_s).fold(0.0, f64::max);
        assert_eq!(multi.timing.elapsed_s, max);
        let oracle = crate::cpu::search_sequential(&assembly, &input);
        assert_eq!(multi.offtargets, oracle);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleet_panics() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100());
        let _ = run(&assembly, &input, &config, &[]);
    }
}
