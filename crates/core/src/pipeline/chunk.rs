//! Chunk-level launch API — one finder→comparer interaction as a reusable
//! unit of device work.
//!
//! The serial pipelines ([`super::ocl`], [`super::sycl`], [`super::multi`])
//! all repeat the same inner loop: upload a genome chunk, launch the
//! `finder` once, then launch the `comparer` once per query and read back
//! the surviving entries. This module factors that loop body into two
//! runner types — [`OclChunkRunner`] and [`SyclChunkRunner`] — that own the
//! context/queue, the compiled pattern tables and the reusable scratch
//! buffers, and expose a single [`OclChunkRunner::run_chunk`] /
//! [`SyclChunkRunner::run_chunk`] call.
//!
//! The runners exist so a *scheduler* can drive chunks out of order and
//! coalesce many queries onto one chunk upload: `casoff-serve` batches
//! concurrent jobs that target the same genome chunk and pays for one
//! chunk transfer plus one finder launch per batch instead of one per job.

use gpu_sim::kernel::LocalLayout;
use gpu_sim::{NdRange, TrafficSnapshot};
use opencl_rt::{
    ClBuffer, ClDeviceId, ClResult, CommandQueue, Context, Kernel, KernelArg, KernelSource,
    MemFlags, Program,
};
use std::sync::Arc;
use sycl_rt::{AccessMode, Buffer, Queue, SpecSelector, SyclResult};

use crate::input::Query;
use crate::kernels::cl::{ClComparer, ClFinder};
use crate::kernels::{ComparerKernel, ComparerOutput, FinderKernel, FinderOutput, OptLevel};
use crate::pattern::CompiledSeq;
use crate::report::TimingBreakdown;

use super::{round_up, PipelineConfig};

/// Comparer entries `(locus, direction, mismatches)` for one query on one
/// chunk, in device compaction order. Map them into [`crate::OffTarget`]
/// records with [`super::entries_to_offtargets`].
pub type QueryEntries = Vec<(u32, u8, u16)>;

/// Per-query device tables for the OpenCL comparer: the compiled two-strand
/// sequence, its index table, and the mismatch threshold.
pub struct OclQueryTables {
    entries: Vec<(ClBuffer<u8>, ClBuffer<i32>, u16)>,
}

impl OclQueryTables {
    /// Number of prepared queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no queries are prepared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Step 13: explicitly release the query buffers.
    pub fn release(self) {
        for (c, ci, _) in self.entries {
            c.release();
            ci.release();
        }
    }
}

/// The OpenCL flavour of the chunk-level API: owns the 13-step machinery
/// (context, queue, program, both kernels) plus scratch buffers sized for
/// chunks of up to `chunk_size` owned positions.
pub struct OclChunkRunner {
    ctx: Context,
    queue: CommandQueue,
    program: Program,
    finder: Kernel,
    comparer: Kernel,
    pattern: CompiledSeq,
    chr: ClBuffer<u8>,
    pat: ClBuffer<u8>,
    pat_index: ClBuffer<i32>,
    loci: ClBuffer<u32>,
    flags: ClBuffer<u8>,
    fcount: ClBuffer<u32>,
    mm_count: ClBuffer<u16>,
    direction: ClBuffer<u8>,
    mm_loci: ClBuffer<u32>,
    ecount: ClBuffer<u32>,
    cap: usize,
    lws: Option<usize>,
    rounding: usize,
}

impl OclChunkRunner {
    /// Build the runner for `pattern_seq` on `config`'s device: steps 1-8
    /// of Table I plus the step-5 scratch allocations, exactly as the
    /// serial OpenCL application performs them.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures (context, build, allocation).
    pub fn new(config: &PipelineConfig, pattern_seq: &[u8]) -> ClResult<Self> {
        let device_id = ClDeviceId::from_spec(config.device.clone());
        let ctx = Context::with_mode(&[device_id], config.exec)?;
        let queue = CommandQueue::new(&ctx, 0)?;

        let source = KernelSource::new()
            .with_function(Arc::new(ClFinder))
            .with_function(Arc::new(ClComparer::new(config.opt)));
        let program = Program::create_with_source(&ctx, source);
        program.build("-O3")?;
        let finder = program.create_kernel("finder")?;
        let comparer = program.create_kernel("comparer")?;

        let pattern = CompiledSeq::compile(pattern_seq);
        let plen = pattern.plen();
        let cap = config.chunk_size;

        let chr = ClBuffer::<u8>::create(&ctx, MemFlags::ReadOnly, cap + plen)?;
        let pat = ClBuffer::create_with_data(&ctx, MemFlags::Constant, pattern.comp())?;
        let pat_index = ClBuffer::create_with_data(&ctx, MemFlags::Constant, pattern.comp_index())?;
        let loci = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, cap)?;
        let flags = ClBuffer::<u8>::create(&ctx, MemFlags::ReadWrite, cap)?;
        let fcount = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, 1)?;
        let mm_count = ClBuffer::<u16>::create(&ctx, MemFlags::WriteOnly, 2 * cap)?;
        let direction = ClBuffer::<u8>::create(&ctx, MemFlags::WriteOnly, 2 * cap)?;
        let mm_loci = ClBuffer::<u32>::create(&ctx, MemFlags::WriteOnly, 2 * cap)?;
        let ecount = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, 1)?;

        let lws = config.work_group_size;
        Ok(OclChunkRunner {
            ctx,
            queue,
            program,
            finder,
            comparer,
            pattern,
            chr,
            pat,
            pat_index,
            loci,
            flags,
            fcount,
            mm_count,
            direction,
            mm_loci,
            ecount,
            cap,
            lws,
            rounding: lws.unwrap_or(64),
        })
    }

    /// Pattern length (PAM window) the runner was compiled for.
    pub fn plen(&self) -> usize {
        self.pattern.plen()
    }

    /// Upload the comparer tables for `queries`; the tables can be reused
    /// across every chunk of a search (the comparer's `comp` is a plain
    /// global pointer, so each query needs its own pair).
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn prepare_queries(&self, queries: &[Query]) -> ClResult<OclQueryTables> {
        let entries = queries
            .iter()
            .map(|q| {
                let c = CompiledSeq::compile(&q.seq);
                Ok((
                    ClBuffer::create_with_data(&self.ctx, MemFlags::ReadOnly, c.comp())?,
                    ClBuffer::create_with_data(&self.ctx, MemFlags::ReadOnly, c.comp_index())?,
                    q.max_mismatches,
                ))
            })
            .collect::<ClResult<_>>()?;
        Ok(OclQueryTables { entries })
    }

    /// Run one finder→comparer interaction: upload `seq`, select candidate
    /// loci once, then compare every prepared query against them. Returns
    /// the surviving entries per query (empty inner vectors when the finder
    /// produced no candidates).
    ///
    /// `seq` holds `scan_len` owned positions plus up to `plen` trailing
    /// context bases; kernel and transfer costs accumulate into `timing`
    /// and `profile`.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk exceeds the runner's configured capacity.
    pub fn run_chunk(
        &self,
        seq: &[u8],
        scan_len: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<Vec<QueryEntries>> {
        let plen = self.pattern.plen();
        assert!(
            seq.len() <= self.cap + plen && scan_len <= self.cap,
            "chunk ({} bases, {scan_len} scanned) exceeds runner capacity {}",
            seq.len(),
            self.cap
        );
        let mut per_query = vec![Vec::new(); tables.len()];

        // Step 11 (host->device): upload the chunk, reset the counter.
        let w1 = self.queue.enqueue_write_buffer(&self.chr, true, 0, seq)?;
        let w2 = self.queue.enqueue_fill_buffer(&self.fcount, 0u32)?;
        timing.transfer_s += w1.duration_s() + w2.duration_s();

        // Step 9: finder arguments.
        self.finder.set_arg(0, KernelArg::BufU8(self.chr.device_buffer()))?;
        self.finder.set_arg(1, KernelArg::BufU8(self.pat.device_buffer()))?;
        self.finder.set_arg(2, KernelArg::BufI32(self.pat_index.device_buffer()))?;
        self.finder.set_arg(3, KernelArg::BufU32(self.loci.device_buffer()))?;
        self.finder.set_arg(4, KernelArg::BufU8(self.flags.device_buffer()))?;
        self.finder.set_arg(5, KernelArg::BufU32(self.fcount.device_buffer()))?;
        self.finder.set_arg(6, KernelArg::U32(scan_len as u32))?;
        self.finder.set_arg(7, KernelArg::U32(seq.len() as u32))?;
        self.finder.set_arg(8, KernelArg::U32(plen as u32))?;
        self.finder.set_arg(9, KernelArg::Local { bytes: 2 * plen })?;
        self.finder.set_arg(10, KernelArg::Local { bytes: 8 * plen })?;

        // Step 10: enqueue the finder.
        let gws = round_up(scan_len, self.rounding);
        let ev = self.queue.enqueue_nd_range_kernel(&self.finder, gws, self.lws)?;
        ev.wait(); // step 12
        timing.finder_s += ev
            .launch_report()
            .map(|r| r.exec_time_s)
            .unwrap_or_else(|| ev.duration_s());
        if let Some(r) = ev.launch_report() {
            profile.record_ref(r);
        }
        timing.finder_launches += 1;

        let mut n = [0u32];
        let r = self.queue.enqueue_read_buffer(&self.fcount, true, 0, &mut n)?;
        timing.transfer_s += r.duration_s();
        let n = n[0] as usize;
        timing.candidates += n as u64;
        if n == 0 {
            return Ok(per_query);
        }

        for (out, (comp, comp_index, threshold)) in per_query.iter_mut().zip(&tables.entries) {
            let wz = self.queue.enqueue_fill_buffer(&self.ecount, 0u32)?;
            timing.transfer_s += wz.duration_s();

            self.comparer.set_arg(0, KernelArg::BufU8(self.chr.device_buffer()))?;
            self.comparer.set_arg(1, KernelArg::BufU32(self.loci.device_buffer()))?;
            self.comparer.set_arg(2, KernelArg::BufU8(self.flags.device_buffer()))?;
            self.comparer.set_arg(3, KernelArg::BufU8(comp.device_buffer()))?;
            self.comparer.set_arg(4, KernelArg::BufI32(comp_index.device_buffer()))?;
            self.comparer.set_arg(5, KernelArg::U32(n as u32))?;
            self.comparer.set_arg(6, KernelArg::U32(plen as u32))?;
            self.comparer.set_arg(7, KernelArg::U16(*threshold))?;
            self.comparer.set_arg(8, KernelArg::BufU16(self.mm_count.device_buffer()))?;
            self.comparer.set_arg(9, KernelArg::BufU8(self.direction.device_buffer()))?;
            self.comparer.set_arg(10, KernelArg::BufU32(self.mm_loci.device_buffer()))?;
            self.comparer.set_arg(11, KernelArg::BufU32(self.ecount.device_buffer()))?;
            self.comparer.set_arg(12, KernelArg::Local { bytes: 2 * plen })?;
            self.comparer.set_arg(13, KernelArg::Local { bytes: 8 * plen })?;

            let gws = round_up(n, self.rounding);
            let ev = self.queue.enqueue_nd_range_kernel(&self.comparer, gws, self.lws)?;
            ev.wait();
            timing.comparer_s += ev
                .launch_report()
                .map(|r| r.exec_time_s)
                .unwrap_or_else(|| ev.duration_s());
            if let Some(r) = ev.launch_report() {
                profile.record_ref(r);
            }
            timing.comparer_launches += 1;

            // Step 11 (device->host): read back the surviving entries.
            let mut m = [0u32];
            let r = self.queue.enqueue_read_buffer(&self.ecount, true, 0, &mut m)?;
            timing.transfer_s += r.duration_s();
            let m = m[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let mut mm = vec![0u16; m];
            let mut dir = vec![0u8; m];
            let mut pos = vec![0u32; m];
            let r1 = self.queue.enqueue_read_buffer(&self.mm_count, true, 0, &mut mm)?;
            let r2 = self.queue.enqueue_read_buffer(&self.direction, true, 0, &mut dir)?;
            let r3 = self.queue.enqueue_read_buffer(&self.mm_loci, true, 0, &mut pos)?;
            timing.transfer_s += r1.duration_s() + r2.duration_s() + r3.duration_s();

            *out = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
        }
        Ok(per_query)
    }

    /// Block until every enqueued command completes.
    pub fn finish(&self) {
        self.queue.finish();
    }

    /// Simulated queue time consumed so far, in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.queue.elapsed_s()
    }

    /// Name of the simulated device the runner drives.
    pub fn device_name(&self) -> String {
        self.queue.device().spec().name.to_owned()
    }

    /// Transfer/launch counters of the underlying simulated device.
    pub fn traffic(&self) -> TrafficSnapshot {
        self.queue.device().traffic()
    }

    /// Step 13: explicitly release every owned object.
    pub fn release(self) {
        self.finder.release();
        self.comparer.release();
        self.chr.release();
        self.pat.release();
        self.pat_index.release();
        self.loci.release();
        self.flags.release();
        self.fcount.release();
        self.mm_count.release();
        self.direction.release();
        self.mm_loci.release();
        self.ecount.release();
        self.program.release();
        self.queue.release();
    }
}

/// Per-query device tables for the SYCL comparer.
pub struct SyclQueryTables {
    entries: Vec<(Buffer<u8>, Buffer<i32>, u16)>,
}

impl SyclQueryTables {
    /// Number of prepared queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no queries are prepared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The SYCL flavour of the chunk-level API: owns the queue and the
/// constant pattern tables; per-chunk buffers are created fresh each call
/// and released implicitly, the way the migrated application manages
/// memory (§III of the paper).
pub struct SyclChunkRunner {
    queue: Queue,
    pattern: CompiledSeq,
    pat_buf: Buffer<u8>,
    pat_index_buf: Buffer<i32>,
    opt: OptLevel,
    wgs: usize,
}

impl SyclChunkRunner {
    /// Build the runner for `pattern_seq` on `config`'s device: selector,
    /// queue, and the constant-memory pattern tables.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn new(config: &PipelineConfig, pattern_seq: &[u8]) -> SyclResult<Self> {
        let queue = Queue::with_mode(&SpecSelector(config.device.clone()), config.exec)?;
        let pattern = CompiledSeq::compile(pattern_seq);
        let pat_buf = Buffer::from_slice(pattern.comp()).constant();
        let pat_index_buf = Buffer::from_slice(pattern.comp_index()).constant();
        Ok(SyclChunkRunner {
            queue,
            pattern,
            pat_buf,
            pat_index_buf,
            opt: config.opt,
            wgs: config
                .work_group_size
                .unwrap_or(super::sycl::SYCL_WORK_GROUP_SIZE),
        })
    }

    /// Pattern length (PAM window) the runner was compiled for.
    pub fn plen(&self) -> usize {
        self.pattern.plen()
    }

    /// Upload the comparer tables for `queries`.
    pub fn prepare_queries(&self, queries: &[Query]) -> SyclQueryTables {
        SyclQueryTables {
            entries: queries
                .iter()
                .map(|q| {
                    let c = CompiledSeq::compile(&q.seq);
                    (
                        Buffer::from_slice(c.comp()),
                        Buffer::from_slice(c.comp_index()),
                        q.max_mismatches,
                    )
                })
                .collect(),
        }
    }

    /// Run one finder→comparer interaction on `seq` (see
    /// [`OclChunkRunner::run_chunk`] for the contract). The SYCL flavour
    /// reads counters and entries back through handler copies (Table III).
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn run_chunk(
        &self,
        seq: &[u8],
        scan_len: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<Vec<QueryEntries>> {
        let plen = self.pattern.plen();
        let wgs = self.wgs;
        let mut per_query = vec![Vec::new(); tables.len()];

        // Fresh per-chunk buffers; released implicitly when they drop.
        let chr_buf = Buffer::from_slice(seq);
        let loci_buf = Buffer::<u32>::new(scan_len);
        let flags_buf = Buffer::<u8>::new(scan_len);
        let fcount_buf = Buffer::<u32>::new(1);

        // Command group: bind accessors (implicit upload) + finder kernel.
        let ev = self.queue.submit(|h| {
            let chr = h.get_access(&chr_buf, AccessMode::Read)?;
            let pat = h.get_access(&self.pat_buf, AccessMode::Read)?;
            let pat_index = h.get_access(&self.pat_index_buf, AccessMode::Read)?;
            let loci = h.get_access(&loci_buf, AccessMode::Write)?;
            let flags = h.get_access(&flags_buf, AccessMode::Write)?;
            let fcount = h.get_access(&fcount_buf, AccessMode::ReadWrite)?;

            let mut layout = LocalLayout::new();
            let l_pat = layout.array::<u8>(2 * plen);
            let l_pat_index = layout.array::<i32>(2 * plen);
            let kernel = FinderKernel {
                chr: chr.raw(),
                pat: pat.raw(),
                pat_index: pat_index.raw(),
                out: FinderOutput {
                    loci: loci.raw(),
                    flags: flags.raw(),
                    count: fcount.raw(),
                },
                scan_len: scan_len as u32,
                seq_len: seq.len() as u32,
                plen: plen as u32,
                l_pat,
                l_pat_index,
            };
            h.parallel_for(NdRange::linear(round_up(scan_len, wgs), wgs), &kernel)
        })?;
        ev.wait();
        let commands_s: f64 = ev.launch_reports().iter().map(|r| r.sim_time_s).sum();
        timing.finder_s += ev
            .launch_reports()
            .iter()
            .map(|r| r.exec_time_s)
            .sum::<f64>();
        for r in ev.launch_reports() {
            profile.record_ref(r);
        }
        timing.transfer_s += (ev.duration_s() - commands_s).max(0.0);
        timing.finder_launches += 1;

        // Read the match count back through a handler copy (Table III).
        let mut count_host = [0u32];
        let ev = self.queue.submit(|h| {
            let acc = h.get_access(&fcount_buf, AccessMode::Read)?;
            h.copy_from_device(&acc, &mut count_host)
        })?;
        timing.transfer_s += ev.duration_s();
        let n = count_host[0] as usize;
        timing.candidates += n as u64;
        if n == 0 {
            return Ok(per_query);
        }

        for (out, (comp_buf, comp_index_buf, threshold)) in
            per_query.iter_mut().zip(&tables.entries)
        {
            let out_mm = Buffer::<u16>::new(2 * n);
            let out_dir = Buffer::<u8>::new(2 * n);
            let out_loci = Buffer::<u32>::new(2 * n);
            let out_count = Buffer::<u32>::new(1);

            let ev = self.queue.submit(|h| {
                let chr = h.get_access(&chr_buf, AccessMode::Read)?;
                let loci = h.get_access(&loci_buf, AccessMode::Read)?;
                let flags = h.get_access(&flags_buf, AccessMode::Read)?;
                let comp = h.get_access(comp_buf, AccessMode::Read)?;
                let comp_index = h.get_access(comp_index_buf, AccessMode::Read)?;
                let mm = h.get_access(&out_mm, AccessMode::Write)?;
                let dir = h.get_access(&out_dir, AccessMode::Write)?;
                let mloci = h.get_access(&out_loci, AccessMode::Write)?;
                let count = h.get_access(&out_count, AccessMode::ReadWrite)?;

                let mut layout = LocalLayout::new();
                let l_comp = layout.array::<u8>(2 * plen);
                let l_comp_index = layout.array::<i32>(2 * plen);
                let kernel = ComparerKernel {
                    opt: self.opt,
                    chr: chr.raw(),
                    loci: loci.raw(),
                    flags: flags.raw(),
                    comp: comp.raw(),
                    comp_index: comp_index.raw(),
                    locicnt: n as u32,
                    plen: plen as u32,
                    threshold: *threshold,
                    out: ComparerOutput {
                        mm_count: mm.raw(),
                        direction: dir.raw(),
                        loci: mloci.raw(),
                        count: count.raw(),
                    },
                    l_comp,
                    l_comp_index,
                };
                h.parallel_for(NdRange::linear(round_up(n, wgs), wgs), &kernel)
            })?;
            ev.wait();
            let commands_s: f64 = ev.launch_reports().iter().map(|r| r.sim_time_s).sum();
            timing.comparer_s += ev
                .launch_reports()
                .iter()
                .map(|r| r.exec_time_s)
                .sum::<f64>();
            for r in ev.launch_reports() {
                profile.record_ref(r);
            }
            timing.transfer_s += (ev.duration_s() - commands_s).max(0.0);
            timing.comparer_launches += 1;

            let mut entry_count = [0u32];
            let ev = self.queue.submit(|h| {
                let acc = h.get_access(&out_count, AccessMode::Read)?;
                h.copy_from_device(&acc, &mut entry_count)
            })?;
            timing.transfer_s += ev.duration_s();
            let m = entry_count[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let mut mm = vec![0u16; m];
            let mut dir = vec![0u8; m];
            let mut pos = vec![0u32; m];
            let ev = self.queue.submit(|h| {
                let mm_acc = h.get_access(&out_mm, AccessMode::Read)?;
                let dir_acc = h.get_access(&out_dir, AccessMode::Read)?;
                let pos_acc = h.get_access(&out_loci, AccessMode::Read)?;
                h.copy_from_device(&mm_acc, &mut mm)?;
                h.copy_from_device(&dir_acc, &mut dir)?;
                h.copy_from_device(&pos_acc, &mut pos)
            })?;
            timing.transfer_s += ev.duration_s();
            *out = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
        }
        // chr/loci/flags/fcount buffers drop here: implicit release.
        Ok(per_query)
    }

    /// Block until every submitted command group completes.
    pub fn wait(&self) {
        self.queue.wait();
    }

    /// Simulated queue time consumed so far, in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.queue.elapsed_s()
    }

    /// Name of the simulated device the runner drives.
    pub fn device_name(&self) -> String {
        self.queue.device().spec().name.to_owned()
    }

    /// Transfer/launch counters of the underlying simulated device.
    pub fn traffic(&self) -> TrafficSnapshot {
        self.queue.device().traffic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::SearchInput;
    use crate::pipeline::entries_to_offtargets;
    use crate::site::sort_canonical;
    use genome::{Assembly, Chromosome, Chunker};
    use gpu_sim::{DeviceSpec, ExecMode};

    fn toy() -> (Assembly, SearchInput) {
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new(
            "chr1",
            b"ACGTACGTAGGTTTACGTACGAAGCCCCCACGTACGTCGG".to_vec(),
        ));
        let input = SearchInput::parse("toy\nNNNNNNNNNRG\nACGTACGTNNN 3\n").unwrap();
        (asm, input)
    }

    fn config() -> PipelineConfig {
        PipelineConfig::new(DeviceSpec::mi100())
            .chunk_size(16)
            .exec_mode(ExecMode::Sequential)
    }

    #[test]
    fn ocl_runner_reproduces_the_serial_pipeline() {
        let (asm, input) = toy();
        let cfg = config();
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let plen = runner.plen();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let mut offtargets = Vec::new();
        for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
            if chunk.seq.len() < plen {
                continue;
            }
            let per_query = runner
                .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            for (query, entries) in input.queries.iter().zip(&per_query) {
                entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
            }
        }
        sort_canonical(&mut offtargets);
        assert_eq!(offtargets, crate::cpu::search_sequential(&asm, &input));
        assert!(timing.finder_launches >= 2);
        tables.release();
        runner.release();
    }

    #[test]
    fn sycl_runner_reproduces_the_serial_pipeline() {
        let (asm, input) = toy();
        let cfg = config();
        let runner = SyclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries);
        let plen = runner.plen();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let mut offtargets = Vec::new();
        for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
            if chunk.seq.len() < plen {
                continue;
            }
            let per_query = runner
                .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            for (query, entries) in input.queries.iter().zip(&per_query) {
                entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
            }
        }
        runner.wait();
        sort_canonical(&mut offtargets);
        assert_eq!(offtargets, crate::cpu::search_sequential(&asm, &input));
    }

    #[test]
    fn coalescing_queries_saves_finder_launches() {
        // k queries on one chunk must cost 1 finder launch, not k.
        let (asm, _) = toy();
        let input = SearchInput::parse(
            "toy\nNNNNNNNNNRG\nACGTACGTNNN 3\nTTTACGTACNN 3\nCCCCCACGTNN 3\n",
        )
        .unwrap();
        let cfg = config().chunk_size(64);
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let chunk = Chunker::new(&asm, 64, runner.plen()).next().unwrap();
        let per_query = runner
            .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        assert_eq!(per_query.len(), 3);
        assert_eq!(timing.finder_launches, 1);
        assert_eq!(timing.comparer_launches, 3);
        let traffic = runner.traffic();
        assert_eq!(traffic.kernel_launches, 4);
        tables.release();
        runner.release();
    }

    #[test]
    #[should_panic(expected = "exceeds runner capacity")]
    fn oversized_chunks_are_rejected() {
        let (_, input) = toy();
        let cfg = config().chunk_size(8);
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let seq = vec![b'A'; 64];
        let _ = runner.run_chunk(&seq, 64, &tables, &mut timing, &mut profile);
    }
}
