//! Chunk-level launch API — one finder→comparer interaction as a reusable
//! unit of device work.
//!
//! The serial pipelines ([`super::ocl`], [`super::sycl`], [`super::multi`])
//! all repeat the same inner loop: upload a genome chunk, launch the
//! `finder` once, then launch the `comparer` once per query and read back
//! the surviving entries. This module factors that loop body into two
//! runner types — [`OclChunkRunner`] and [`SyclChunkRunner`] — that own the
//! context/queue, the compiled pattern tables and the reusable scratch
//! buffers, and expose a single [`OclChunkRunner::run_chunk`] /
//! [`SyclChunkRunner::run_chunk`] call.
//!
//! The runners exist so a *scheduler* can drive chunks out of order and
//! coalesce many queries onto one chunk upload: `casoff-serve` batches
//! concurrent jobs that target the same genome chunk and pays for one
//! chunk transfer plus one finder launch per batch instead of one per job.

use gpu_sim::kernel::LocalLayout;
use gpu_sim::{NdRange, TrafficSnapshot};
use opencl_rt::{
    ClBuffer, ClDeviceId, ClResult, CommandQueue, Context, Kernel, KernelArg, KernelSource,
    MemFlags, Program,
};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;
use sycl_rt::{AccessMode, Buffer, Queue, SpecSelector, SyclResult};

use genome::base::is_concrete;
use genome::fourbit::NibbleSeq;
use genome::twobit::PackedSeq;

use crate::input::Query;
use crate::kernels::cl::{
    ClComparer, ClFinder, ClFourBitComparer, ClFourBitMultiComparer, ClMultiComparer,
    ClNibbleFinder, ClPackedFinder, ClSpecializedComparer, ClSpecializedFourBitComparer,
    ClSpecializedFourBitMultiComparer, ClSpecializedMultiComparer, ClSpecializedNibbleFinder,
    ClSpecializedTwoBitComparer, ClSpecializedTwoBitMultiComparer, ClTwoBitComparer,
    ClTwoBitMultiComparer,
};
use crate::kernels::specialize::{self, CompiledVariant, VariantKind};
use crate::kernels::{
    ComparerKernel, ComparerOutput, FinderKernel, FinderOutput, FourBitComparerKernel,
    FourBitMultiComparerKernel, GuideThresholds, MultiComparerKernel, MultiComparerOutput,
    NibbleFinderKernel, OptLevel, PackedFinderKernel, SpecializedComparerKernel,
    SpecializedFourBitComparerKernel, SpecializedNibbleFinderKernel,
    SpecializedTwoBitComparerKernel, TwoBitComparerKernel, TwoBitMultiComparerKernel, GUIDE_BLOCK,
};
use crate::pattern::CompiledSeq;
use crate::report::TimingBreakdown;

use super::{round_up, PipelineConfig};

/// Whether a packed chunk can be compared directly in 2-bit form.
///
/// The 2-bit comparer sees every masked base as `N`, which is exactly the
/// char comparer's view unless an exception byte is a degenerate IUPAC
/// code or a non-base byte: `base_mask` is case-insensitive, so lowercase
/// concrete bases and `n` carry no information beyond their 2-bit/mask
/// encoding, but a code like `R` matches pattern `R` where `N` does not.
pub fn twobit_compare_safe(packed: &PackedSeq) -> bool {
    packed
        .exceptions()
        .iter()
        .all(|&(_, b)| is_concrete(b) || b == b'n')
}

/// One set of device buffers holding a packed chunk payload, tagged with the
/// caller's residency token. Interior mutability keeps the runner's `&self`
/// API: the metadata changes on every run, the buffers never move.
struct PackedSlot {
    packed_buf: ClBuffer<u8>,
    mask_buf: ClBuffer<u8>,
    exc_pos: ClBuffer<u32>,
    exc_val: ClBuffer<u8>,
    token: Cell<Option<u64>>,
    tick: Cell<u64>,
}

/// Host-side bytes of a packed payload — what a resident hit avoids moving.
fn packed_upload_bytes(packed: &PackedSeq) -> u64 {
    let n_exc = packed.exceptions().len();
    let exc = if n_exc > 0 {
        n_exc * (std::mem::size_of::<u32>() + 1)
    } else {
        0
    };
    (packed.packed_bytes().len() + packed.mask_bytes().len() + exc) as u64
}

/// One set of device buffers holding a nibble-packed chunk payload. The
/// device side of [`NibbleSeq`] is the nibble words alone (case and host
/// exceptions never affect matching), so a slot is a single buffer.
struct NibbleSlot {
    nibble_buf: ClBuffer<u8>,
    token: Cell<Option<u64>>,
    tick: Cell<u64>,
}

/// Comparer entries `(locus, direction, mismatches)` for one query on one
/// chunk, in device compaction order. Map them into [`crate::OffTarget`]
/// records with [`super::entries_to_offtargets`].
pub type QueryEntries = Vec<(u32, u8, u16)>;

/// The finder's candidate list for one (chunk content, PAM pattern) pair,
/// read back to the host so a candidate cache can replay it into later runs
/// without launching the finder again. The list depends only on the chunk
/// bytes and the compiled pattern — never on the queries — so it is valid
/// across all three chunk encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSites {
    /// Candidate loci (chunk-relative), in finder compaction order.
    pub loci: Vec<u32>,
    /// Strand flags per candidate (see the finder's `FLAG_*` constants).
    pub flags: Vec<u8>,
}

impl CandidateSites {
    /// Number of candidate sites.
    pub fn len(&self) -> usize {
        self.loci.len()
    }

    /// True when the finder produced no candidates.
    pub fn is_empty(&self) -> bool {
        self.loci.is_empty()
    }

    /// Host bytes held by the list (4-byte locus + 1-byte flag per site) —
    /// the unit a byte-budget cache charges, and the h2d traffic a
    /// device-resident replay avoids.
    pub fn byte_len(&self) -> usize {
        self.loci.len() * (std::mem::size_of::<u32>() + 1)
    }
}

/// Device-side machinery of the fused multi-guide comparer path: the three
/// generic `comparer_multi*` kernels plus scratch sized for one block of up
/// to [`GUIDE_BLOCK`] guides and its four-array compacted output (every
/// candidate can pass on both strands of every guide).
struct MultiScratch {
    comparer_multi: Kernel,
    comparer_multi_2bit: Kernel,
    comparer_multi_4bit: Kernel,
    comp: ClBuffer<u8>,
    comp_index: ClBuffer<i32>,
    thresholds: ClBuffer<u16>,
    mm_count: ClBuffer<u16>,
    direction: ClBuffer<u8>,
    mm_loci: ClBuffer<u32>,
    guide: ClBuffer<u16>,
}

/// Which chunk encoding a fused comparer block reads.
enum MultiEnc<'a> {
    Char,
    TwoBit(&'a PackedSlot),
    FourBit(&'a NibbleSlot),
}

impl MultiEnc<'_> {
    /// Cache tag for the specialized fused program of this encoding.
    fn tag(&self) -> u8 {
        match self {
            MultiEnc::Char => 0,
            MultiEnc::TwoBit(_) => 1,
            MultiEnc::FourBit(_) => 2,
        }
    }
}

/// Unwrap a comparison-table buffer on the generic comparer path. The
/// buffers are only skipped when the runner specializes, and then the
/// specialized branch runs instead of this one.
fn generic_table<T>(buf: &Option<T>) -> &T {
    buf.as_ref()
        .expect("generic comparers always have uploaded tables")
}

/// One prepared OpenCL query: comparison-table buffers (`None` when the
/// runner specializes) and the mismatch threshold.
type OclQueryEntry = (Option<ClBuffer<u8>>, Option<ClBuffer<i32>>, u16);

/// Per-query device tables for the OpenCL comparer: the compiled two-strand
/// sequence, its index table, and the mismatch threshold.
///
/// When the runner specializes, the tables also keep each query's
/// [`CompiledSeq`] (the fold input) and a lazily built per-(query, kind)
/// one-kernel [`Program`] cache — specialized kernels embed the pattern, so
/// they cannot be shared across queries the way the generic kernels are.
/// The comparison-table buffers are `None` in that case: the folded
/// comparers carry the pattern and guide as immediates and never read
/// them, so their uploads (two per query per batch, each with a fixed
/// per-transfer charge) are skipped outright.
pub struct OclQueryTables {
    entries: Vec<OclQueryEntry>,
    spec_queries: Vec<CompiledSeq>,
    spec_kernels: RefCell<HashMap<(usize, VariantKind), (Program, Kernel)>>,
}

impl OclQueryTables {
    /// Number of prepared queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no queries are prepared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Step 13: explicitly release the query buffers.
    pub fn release(self) {
        for (c, ci, _) in self.entries {
            if let Some(c) = c {
                c.release();
            }
            if let Some(ci) = ci {
                ci.release();
            }
        }
        for (_, (program, kernel)) in self.spec_kernels.into_inner() {
            kernel.release();
            program.release();
        }
    }
}

/// The OpenCL flavour of the chunk-level API: owns the 13-step machinery
/// (context, queue, program, both kernels) plus scratch buffers sized for
/// chunks of up to `chunk_size` owned positions.
pub struct OclChunkRunner {
    ctx: Context,
    queue: CommandQueue,
    program: Program,
    finder: Kernel,
    finder_packed: Kernel,
    finder_nibble: Kernel,
    comparer: Kernel,
    comparer_2bit: Kernel,
    comparer_4bit: Kernel,
    /// The specialized nibble finder, present when the runner specializes:
    /// the PAM pattern is known at construction, so its variant lives in the
    /// main program rather than a per-query one.
    spec_finder_nibble: Option<Kernel>,
    specialize: bool,
    pattern: CompiledSeq,
    chr: ClBuffer<u8>,
    chr_token: Cell<Option<u64>>,
    slots: Vec<PackedSlot>,
    nibble_slots: Vec<NibbleSlot>,
    slot_clock: Cell<u64>,
    pat: ClBuffer<u8>,
    pat_index: ClBuffer<i32>,
    loci: ClBuffer<u32>,
    flags: ClBuffer<u8>,
    fcount: ClBuffer<u32>,
    mm_count: ClBuffer<u16>,
    direction: ClBuffer<u8>,
    mm_loci: ClBuffer<u32>,
    ecount: ClBuffer<u32>,
    /// Fused multi-guide machinery, present when the runner is built with
    /// [`PipelineConfig::multi_guide`].
    multi: Option<MultiScratch>,
    /// Lazily built specialized fused programs, keyed by (encoding tag,
    /// shared block threshold) — the folded PAM pattern is fixed per runner,
    /// so it does not participate in the key.
    spec_multi_kernels: RefCell<HashMap<(u8, u16), (Program, Kernel)>>,
    /// While set, every finder pass also reads its candidate list back into
    /// `captured` for a caller-owned candidate cache.
    capture: Cell<bool>,
    captured: RefCell<Option<CandidateSites>>,
    /// Identity `(token, len)` of the candidate list currently staged in
    /// `loci`/`flags`, when the producing run carried a residency token.
    cand_token: Cell<Option<(u64, u32)>>,
    cap: usize,
    lws: Option<usize>,
    rounding: usize,
}

impl OclChunkRunner {
    /// Build the runner for `pattern_seq` on `config`'s device: steps 1-8
    /// of Table I plus the step-5 scratch allocations, exactly as the
    /// serial OpenCL application performs them.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures (context, build, allocation).
    pub fn new(config: &PipelineConfig, pattern_seq: &[u8]) -> ClResult<Self> {
        let device_id = ClDeviceId::from_spec(config.device.clone());
        let ctx = Context::with_mode(&[device_id], config.exec)?;
        let queue = CommandQueue::new(&ctx, 0)?;

        let pattern = CompiledSeq::compile(pattern_seq);
        let plen = pattern.plen();

        let mut source = KernelSource::new()
            .with_function(Arc::new(ClFinder))
            .with_function(Arc::new(ClPackedFinder))
            .with_function(Arc::new(ClNibbleFinder))
            .with_function(Arc::new(ClComparer::new(config.opt)))
            .with_function(Arc::new(ClTwoBitComparer))
            .with_function(Arc::new(ClFourBitComparer));
        if config.specialize {
            let variant =
                specialize::global_cache().get_or_compile(VariantKind::NibbleFinder, &pattern, 0);
            source = source.with_function(Arc::new(ClSpecializedNibbleFinder { variant }));
        }
        if config.multi_guide {
            source = source
                .with_function(Arc::new(ClMultiComparer))
                .with_function(Arc::new(ClTwoBitMultiComparer))
                .with_function(Arc::new(ClFourBitMultiComparer));
        }
        let program = Program::create_with_source(&ctx, source);
        program.build("-O3")?;
        let finder = program.create_kernel("finder")?;
        let finder_packed = program.create_kernel("finder_packed")?;
        let finder_nibble = program.create_kernel("finder_nibble")?;
        let comparer = program.create_kernel("comparer")?;
        let comparer_2bit = program.create_kernel("comparer_2bit")?;
        let comparer_4bit = program.create_kernel("comparer_4bit")?;
        let spec_finder_nibble = if config.specialize {
            Some(program.create_kernel(VariantKind::NibbleFinder.kernel_name())?)
        } else {
            None
        };
        let cap = config.chunk_size;

        let chr = ClBuffer::<u8>::create(&ctx, MemFlags::ReadWrite, cap + plen)?;
        // Scratch for the packed upload path: worst case every base carries
        // an exception, so the exception arrays are sized like the chunk.
        // One slot per resident chunk the runner may keep on-device.
        let slots = (0..config.resident_slots.max(1))
            .map(|_| {
                Ok(PackedSlot {
                    packed_buf: ClBuffer::<u8>::create(
                        &ctx,
                        MemFlags::ReadOnly,
                        (cap + plen).div_ceil(4),
                    )?,
                    mask_buf: ClBuffer::<u8>::create(
                        &ctx,
                        MemFlags::ReadOnly,
                        (cap + plen).div_ceil(8),
                    )?,
                    exc_pos: ClBuffer::<u32>::create(&ctx, MemFlags::ReadOnly, cap + plen)?,
                    exc_val: ClBuffer::<u8>::create(&ctx, MemFlags::ReadOnly, cap + plen)?,
                    token: Cell::new(None),
                    tick: Cell::new(0),
                })
            })
            .collect::<ClResult<Vec<_>>>()?;
        let nibble_slots = (0..config.resident_slots.max(1))
            .map(|_| {
                Ok(NibbleSlot {
                    nibble_buf: ClBuffer::<u8>::create(
                        &ctx,
                        MemFlags::ReadOnly,
                        (cap + plen).div_ceil(2),
                    )?,
                    token: Cell::new(None),
                    tick: Cell::new(0),
                })
            })
            .collect::<ClResult<Vec<_>>>()?;
        let pat = ClBuffer::create_with_data(&ctx, MemFlags::Constant, pattern.comp())?;
        let pat_index = ClBuffer::create_with_data(&ctx, MemFlags::Constant, pattern.comp_index())?;
        let loci = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, cap)?;
        let flags = ClBuffer::<u8>::create(&ctx, MemFlags::ReadWrite, cap)?;
        let fcount = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, 1)?;
        let mm_count = ClBuffer::<u16>::create(&ctx, MemFlags::WriteOnly, 2 * cap)?;
        let direction = ClBuffer::<u8>::create(&ctx, MemFlags::WriteOnly, 2 * cap)?;
        let mm_loci = ClBuffer::<u32>::create(&ctx, MemFlags::WriteOnly, 2 * cap)?;
        let ecount = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, 1)?;

        // Scratch for the fused multi-guide path: block tables for up to
        // GUIDE_BLOCK guides plus output arrays sized for the worst case of
        // every candidate passing on both strands of every guide.
        let multi = if config.multi_guide {
            Some(MultiScratch {
                comparer_multi: program.create_kernel("comparer_multi")?,
                comparer_multi_2bit: program.create_kernel("comparer_multi_2bit")?,
                comparer_multi_4bit: program.create_kernel("comparer_multi_4bit")?,
                comp: ClBuffer::<u8>::create(&ctx, MemFlags::ReadOnly, GUIDE_BLOCK * 2 * plen)?,
                comp_index: ClBuffer::<i32>::create(
                    &ctx,
                    MemFlags::ReadOnly,
                    GUIDE_BLOCK * 2 * plen,
                )?,
                thresholds: ClBuffer::<u16>::create(&ctx, MemFlags::ReadOnly, GUIDE_BLOCK)?,
                mm_count: ClBuffer::<u16>::create(&ctx, MemFlags::WriteOnly, GUIDE_BLOCK * 2 * cap)?,
                direction: ClBuffer::<u8>::create(&ctx, MemFlags::WriteOnly, GUIDE_BLOCK * 2 * cap)?,
                mm_loci: ClBuffer::<u32>::create(&ctx, MemFlags::WriteOnly, GUIDE_BLOCK * 2 * cap)?,
                guide: ClBuffer::<u16>::create(&ctx, MemFlags::WriteOnly, GUIDE_BLOCK * 2 * cap)?,
            })
        } else {
            None
        };

        let lws = config.work_group_size;
        Ok(OclChunkRunner {
            ctx,
            queue,
            program,
            finder,
            finder_packed,
            finder_nibble,
            comparer,
            comparer_2bit,
            comparer_4bit,
            spec_finder_nibble,
            specialize: config.specialize,
            pattern,
            chr,
            chr_token: Cell::new(None),
            slots,
            nibble_slots,
            slot_clock: Cell::new(0),
            pat,
            pat_index,
            loci,
            flags,
            fcount,
            mm_count,
            direction,
            mm_loci,
            ecount,
            multi,
            spec_multi_kernels: RefCell::new(HashMap::new()),
            capture: Cell::new(false),
            captured: RefCell::new(None),
            cand_token: Cell::new(None),
            cap,
            lws,
            rounding: lws.unwrap_or(64),
        })
    }

    /// Arm or disarm candidate capture: while armed, every finder pass also
    /// reads its candidate list back to the host (a timed d2h transfer) and
    /// parks it for
    /// [`take_captured_candidates`](Self::take_captured_candidates).
    pub fn set_capture_candidates(&self, on: bool) {
        self.capture.set(on);
    }

    /// Take the candidate list captured by the most recent finder pass
    /// while capture was armed.
    pub fn take_captured_candidates(&self) -> Option<CandidateSites> {
        self.captured.borrow_mut().take()
    }

    /// Pattern length (PAM window) the runner was compiled for.
    pub fn plen(&self) -> usize {
        self.pattern.plen()
    }

    /// Upload the comparer tables for `queries`; the tables can be reused
    /// across every chunk of a search (the comparer's `comp` is a plain
    /// global pointer, so each query needs its own pair).
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn prepare_queries(&self, queries: &[Query]) -> ClResult<OclQueryTables> {
        let mut spec_queries = Vec::new();
        // The fused multi-guide path concatenates block tables from the
        // compiled sequences at launch time, so — exactly as under
        // specialization — per-query table buffers would be dead weight. A
        // single query never fuses and keeps the serial tables.
        let fused = self.multi.is_some() && queries.len() > 1;
        let entries = queries
            .iter()
            .map(|q| {
                let c = CompiledSeq::compile(&q.seq);
                // Specialized comparers fold the compiled sequence into the
                // kernel body, so the table uploads would be dead weight.
                // The generic path pays them through the queue — two real
                // `clEnqueueWriteBuffer` transfers per query, the same
                // traffic the SYCL accessors charge implicitly.
                let e = if self.specialize || fused {
                    (None, None, q.max_mismatches)
                } else {
                    let comp_buf =
                        ClBuffer::create(&self.ctx, MemFlags::ReadOnly, c.comp().len())?;
                    let comp_index_buf =
                        ClBuffer::create(&self.ctx, MemFlags::ReadOnly, c.comp_index().len())?;
                    self.queue.enqueue_write_buffer(&comp_buf, true, 0, c.comp())?;
                    self.queue
                        .enqueue_write_buffer(&comp_index_buf, true, 0, c.comp_index())?;
                    (Some(comp_buf), Some(comp_index_buf), q.max_mismatches)
                };
                if self.specialize || fused {
                    spec_queries.push(c);
                }
                Ok(e)
            })
            .collect::<ClResult<_>>()?;
        Ok(OclQueryTables {
            entries,
            spec_queries,
            spec_kernels: RefCell::new(HashMap::new()),
        })
    }

    /// Fetch (building on first use) the specialized comparer kernel for
    /// query `qi` of `tables`. The variant comes from the process-wide
    /// single-flight cache; the per-query one-kernel program is cached in
    /// the tables so repeated chunks over the same batch reuse it.
    fn spec_kernel<'m>(
        &self,
        map: &'m mut HashMap<(usize, VariantKind), (Program, Kernel)>,
        tables_queries: &[CompiledSeq],
        qi: usize,
        kind: VariantKind,
        threshold: u16,
    ) -> ClResult<&'m Kernel> {
        use std::collections::hash_map::Entry;
        match map.entry((qi, kind)) {
            Entry::Occupied(e) => Ok(&e.into_mut().1),
            Entry::Vacant(v) => {
                let variant =
                    specialize::global_cache().get_or_compile(kind, &tables_queries[qi], threshold);
                let f: Arc<dyn opencl_rt::ClKernelFunction> = match kind {
                    VariantKind::CharComparer => Arc::new(ClSpecializedComparer { variant }),
                    VariantKind::TwoBitComparer => Arc::new(ClSpecializedTwoBitComparer { variant }),
                    VariantKind::FourBitComparer => {
                        Arc::new(ClSpecializedFourBitComparer { variant })
                    }
                    VariantKind::NibbleFinder => Arc::new(ClSpecializedNibbleFinder { variant }),
                    // Fused blocks build their kernels through
                    // `spec_multi_kernel`, keyed by encoding + threshold
                    // rather than by query.
                    VariantKind::MultiComparer => {
                        unreachable!("multi-guide variants are built per block, not per query")
                    }
                };
                let program =
                    Program::create_with_source(&self.ctx, KernelSource::new().with_function(f));
                program.build("-O3")?;
                let kernel = program.create_kernel(kind.kernel_name())?;
                Ok(&v.insert((program, kernel)).1)
            }
        }
    }

    /// Run one finder→comparer interaction: upload `seq`, select candidate
    /// loci once, then compare every prepared query against them. Returns
    /// the surviving entries per query (empty inner vectors when the finder
    /// produced no candidates).
    ///
    /// `seq` holds `scan_len` owned positions plus up to `plen` trailing
    /// context bases; kernel and transfer costs accumulate into `timing`
    /// and `profile`.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk exceeds the runner's configured capacity.
    pub fn run_chunk(
        &self,
        seq: &[u8],
        scan_len: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<Vec<QueryEntries>> {
        self.run_chunk_inner(None, seq, scan_len, tables, timing, profile)
            .map(|(per_query, _)| per_query)
    }

    /// [`run_chunk`](Self::run_chunk) with residency: when the previous raw
    /// run carried the same `token`, the chunk bytes are already in the
    /// `chr` buffer and the upload is skipped (recorded on the device as
    /// skipped h2d traffic). Returns the entries plus whether the resident
    /// copy was reused. Any packed run invalidates raw residency — the
    /// `finder_packed` kernel decodes over the same scratch.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk exceeds the runner's configured capacity.
    pub fn run_chunk_resident(
        &self,
        token: u64,
        seq: &[u8],
        scan_len: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<(Vec<QueryEntries>, bool)> {
        self.run_chunk_inner(Some(token), seq, scan_len, tables, timing, profile)
    }

    fn run_chunk_inner(
        &self,
        token: Option<u64>,
        seq: &[u8],
        scan_len: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<(Vec<QueryEntries>, bool)> {
        let plen = self.pattern.plen();
        assert!(
            seq.len() <= self.cap + plen && scan_len <= self.cap,
            "chunk ({} bases, {scan_len} scanned) exceeds runner capacity {}",
            seq.len(),
            self.cap
        );
        let mut per_query = vec![Vec::new(); tables.len()];

        // Step 11 (host->device): upload the chunk — unless this exact chunk
        // is still resident from the previous raw run — and reset the counter.
        let reused = token.is_some() && self.chr_token.get() == token;
        if reused {
            self.queue.device().record_h2d_skipped(seq.len() as u64);
        } else {
            let w1 = self.queue.enqueue_write_buffer(&self.chr, true, 0, seq)?;
            timing.transfer_s += w1.duration_s();
            self.chr_token.set(token);
        }
        let w2 = self.queue.enqueue_fill_buffer(&self.fcount, 0u32)?;
        timing.transfer_s += w2.duration_s();

        // Step 9: finder arguments.
        self.finder.set_arg(0, KernelArg::BufU8(self.chr.device_buffer()))?;
        self.finder.set_arg(1, KernelArg::BufU8(self.pat.device_buffer()))?;
        self.finder.set_arg(2, KernelArg::BufI32(self.pat_index.device_buffer()))?;
        self.finder.set_arg(3, KernelArg::BufU32(self.loci.device_buffer()))?;
        self.finder.set_arg(4, KernelArg::BufU8(self.flags.device_buffer()))?;
        self.finder.set_arg(5, KernelArg::BufU32(self.fcount.device_buffer()))?;
        self.finder.set_arg(6, KernelArg::U32(scan_len as u32))?;
        self.finder.set_arg(7, KernelArg::U32(seq.len() as u32))?;
        self.finder.set_arg(8, KernelArg::U32(plen as u32))?;
        self.finder.set_arg(9, KernelArg::Local { bytes: 2 * plen })?;
        self.finder.set_arg(10, KernelArg::Local { bytes: 8 * plen })?;

        // Step 10: enqueue the finder.
        let gws = round_up(scan_len, self.rounding);
        let ev = self.queue.enqueue_nd_range_kernel(&self.finder, gws, self.lws)?;
        ev.wait(); // step 12
        timing.finder_s += ev
            .launch_report()
            .map(|r| r.exec_time_s)
            .unwrap_or_else(|| ev.duration_s());
        if let Some(r) = ev.launch_report() {
            profile.record_ref(r);
        }
        timing.finder_launches += 1;

        let mut n = [0u32];
        let r = self.queue.enqueue_read_buffer(&self.fcount, true, 0, &mut n)?;
        timing.transfer_s += r.duration_s();
        let n = n[0] as usize;
        timing.candidates += n as u64;
        self.note_candidates(token, n, timing)?;
        if n == 0 {
            return Ok((per_query, reused));
        }

        self.run_comparers(n, tables, timing, profile, &mut per_query)?;
        Ok((per_query, reused))
    }

    /// Run one finder→comparer interaction from a losslessly 2-bit packed
    /// chunk: upload the packed words, the N-mask and the rare exception
    /// bytes (~0.375 bytes per base instead of 1), let the `finder_packed`
    /// kernel decode the chunk on-device into the `chr` scratch buffer, then
    /// compare every prepared query exactly as [`run_chunk`] does. Produces
    /// byte-identical entries to `run_chunk(&packed.decode(), ..)`.
    ///
    /// [`run_chunk`]: Self::run_chunk
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk exceeds the runner's configured capacity.
    pub fn run_packed_chunk(
        &self,
        packed: &PackedSeq,
        scan_len: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<Vec<QueryEntries>> {
        self.run_packed_inner(None, packed, scan_len, tables, timing, profile)
            .map(|(per_query, _)| per_query)
    }

    /// [`run_packed_chunk`](Self::run_packed_chunk) with residency: the
    /// runner keeps the packed payloads of its last `resident_slots` tokens
    /// on-device, and a run whose `token` matches a slot skips the packed,
    /// mask and exception uploads entirely (recorded on the device as
    /// skipped h2d traffic). Returns the entries plus whether a resident
    /// payload was reused. The token is the *caller's* identity for the
    /// chunk content — two different chunks must never share a token.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk exceeds the runner's configured capacity.
    pub fn run_packed_chunk_resident(
        &self,
        token: u64,
        packed: &PackedSeq,
        scan_len: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<(Vec<QueryEntries>, bool)> {
        self.run_packed_inner(Some(token), packed, scan_len, tables, timing, profile)
    }

    fn run_packed_inner(
        &self,
        token: Option<u64>,
        packed: &PackedSeq,
        scan_len: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<(Vec<QueryEntries>, bool)> {
        let plen = self.pattern.plen();
        let seq_len = packed.len();
        assert!(
            seq_len <= self.cap + plen && scan_len <= self.cap,
            "chunk ({seq_len} bases, {scan_len} scanned) exceeds runner capacity {}",
            self.cap
        );
        let mut per_query = vec![Vec::new(); tables.len()];
        let n_exc = packed.exceptions().len();

        // Pick the slot: a token match reuses the resident payload, anything
        // else claims the least-recently-used slot and re-uploads.
        let hit = token.and_then(|t| {
            self.slots
                .iter()
                .position(|s| s.token.get() == Some(t))
        });
        let (slot, reused) = match hit {
            Some(i) => (&self.slots[i], true),
            None => {
                let i = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.tick.get())
                    .map(|(i, _)| i)
                    .expect("runner always has at least one slot");
                let slot = &self.slots[i];
                slot.token.set(token);
                (slot, false)
            }
        };
        self.slot_clock.set(self.slot_clock.get() + 1);
        slot.tick.set(self.slot_clock.get());

        // Step 11 (host->device): upload the packed payload — unless it is
        // still resident — and reset the counter. The exception arrays only
        // move when the chunk has any.
        if reused {
            self.queue
                .device()
                .record_h2d_skipped(packed_upload_bytes(packed));
        } else {
            let w1 = self
                .queue
                .enqueue_write_buffer(&slot.packed_buf, true, 0, packed.packed_bytes())?;
            let w2 = self
                .queue
                .enqueue_write_buffer(&slot.mask_buf, true, 0, packed.mask_bytes())?;
            timing.transfer_s += w1.duration_s() + w2.duration_s();
            if n_exc > 0 {
                let (pos, val) = packed.exception_arrays();
                let e1 = self.queue.enqueue_write_buffer(&slot.exc_pos, true, 0, &pos)?;
                let e2 = self.queue.enqueue_write_buffer(&slot.exc_val, true, 0, &val)?;
                timing.transfer_s += e1.duration_s() + e2.duration_s();
            }
        }
        let w3 = self.queue.enqueue_fill_buffer(&self.fcount, 0u32)?;
        timing.transfer_s += w3.duration_s();
        // The packed finder decodes over the raw-path scratch below.
        self.chr_token.set(None);

        let k = &self.finder_packed;
        k.set_arg(0, KernelArg::BufU8(slot.packed_buf.device_buffer()))?;
        k.set_arg(1, KernelArg::BufU8(slot.mask_buf.device_buffer()))?;
        k.set_arg(2, KernelArg::BufU32(slot.exc_pos.device_buffer()))?;
        k.set_arg(3, KernelArg::BufU8(slot.exc_val.device_buffer()))?;
        k.set_arg(4, KernelArg::U32(n_exc as u32))?;
        k.set_arg(5, KernelArg::BufU8(self.chr.device_buffer()))?;
        k.set_arg(6, KernelArg::BufU8(self.pat.device_buffer()))?;
        k.set_arg(7, KernelArg::BufI32(self.pat_index.device_buffer()))?;
        k.set_arg(8, KernelArg::BufU32(self.loci.device_buffer()))?;
        k.set_arg(9, KernelArg::BufU8(self.flags.device_buffer()))?;
        k.set_arg(10, KernelArg::BufU32(self.fcount.device_buffer()))?;
        k.set_arg(11, KernelArg::U32(scan_len as u32))?;
        k.set_arg(12, KernelArg::U32(seq_len as u32))?;
        k.set_arg(13, KernelArg::U32(plen as u32))?;
        k.set_arg(14, KernelArg::Local { bytes: 2 * plen })?;
        k.set_arg(15, KernelArg::Local { bytes: 8 * plen })?;

        let gws = round_up(scan_len, self.rounding);
        let ev = self.queue.enqueue_nd_range_kernel(k, gws, self.lws)?;
        ev.wait();
        timing.finder_s += ev
            .launch_report()
            .map(|r| r.exec_time_s)
            .unwrap_or_else(|| ev.duration_s());
        if let Some(r) = ev.launch_report() {
            profile.record_ref(r);
        }
        timing.finder_launches += 1;

        let mut n = [0u32];
        let r = self.queue.enqueue_read_buffer(&self.fcount, true, 0, &mut n)?;
        timing.transfer_s += r.duration_s();
        let n = n[0] as usize;
        timing.candidates += n as u64;
        self.note_candidates(token, n, timing)?;
        if n == 0 {
            return Ok((per_query, reused));
        }

        // The packed payload is already resident: when its exceptions are
        // semantically transparent, compare in 2-bit form (~plen/4 + plen/8
        // global bytes per site instead of plen). Degenerate exception
        // bytes fall back to the char comparer on the decoded scratch.
        if twobit_compare_safe(packed) {
            self.run_comparers_2bit(slot, n, tables, timing, profile, &mut per_query)?;
        } else {
            self.run_comparers(n, tables, timing, profile, &mut per_query)?;
        }
        Ok((per_query, reused))
    }

    /// Run one finder→comparer interaction from a 4-bit nibble-packed chunk:
    /// upload the nibble words (0.5 bytes per base — no mask, no exception
    /// arrays), let the `finder_nibble` kernel decode them on-device into
    /// the `chr` scratch, then compare every prepared query with the
    /// `comparer_4bit` kernel directly on the nibbles. Unlike the 2-bit
    /// path there is *no* fallback: the nibble masks carry the full IUPAC
    /// matching semantics, so results are byte-identical to
    /// `run_chunk(&nibble.decode(), ..)` on any input.
    ///
    /// [`run_chunk`]: Self::run_chunk
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk exceeds the runner's configured capacity.
    pub fn run_nibble_chunk(
        &self,
        nibble: &NibbleSeq,
        scan_len: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<Vec<QueryEntries>> {
        self.run_nibble_inner(None, nibble, scan_len, tables, timing, profile)
            .map(|(per_query, _)| per_query)
    }

    /// [`run_nibble_chunk`](Self::run_nibble_chunk) with residency: the
    /// runner keeps the nibble words of its last `resident_slots` tokens
    /// on-device, and a run whose `token` matches a slot skips the upload
    /// entirely (recorded on the device as skipped h2d traffic). Returns the
    /// entries plus whether a resident payload was reused. Nibble slots are
    /// independent of the 2-bit slots — the two payload forms never share a
    /// token.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk exceeds the runner's configured capacity.
    pub fn run_nibble_chunk_resident(
        &self,
        token: u64,
        nibble: &NibbleSeq,
        scan_len: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<(Vec<QueryEntries>, bool)> {
        self.run_nibble_inner(Some(token), nibble, scan_len, tables, timing, profile)
    }

    fn run_nibble_inner(
        &self,
        token: Option<u64>,
        nibble: &NibbleSeq,
        scan_len: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<(Vec<QueryEntries>, bool)> {
        let plen = self.pattern.plen();
        let seq_len = nibble.len();
        assert!(
            seq_len <= self.cap + plen && scan_len <= self.cap,
            "chunk ({seq_len} bases, {scan_len} scanned) exceeds runner capacity {}",
            self.cap
        );
        let mut per_query = vec![Vec::new(); tables.len()];

        // Pick the slot: a token match reuses the resident nibbles, anything
        // else claims the least-recently-used slot and re-uploads.
        let hit = token.and_then(|t| {
            self.nibble_slots
                .iter()
                .position(|s| s.token.get() == Some(t))
        });
        let (slot, reused) = match hit {
            Some(i) => (&self.nibble_slots[i], true),
            None => {
                let i = self
                    .nibble_slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.tick.get())
                    .map(|(i, _)| i)
                    .expect("runner always has at least one slot");
                let slot = &self.nibble_slots[i];
                slot.token.set(token);
                (slot, false)
            }
        };
        self.slot_clock.set(self.slot_clock.get() + 1);
        slot.tick.set(self.slot_clock.get());

        // Step 11 (host->device): upload the nibble words — unless they are
        // still resident — and reset the counter.
        if reused {
            self.queue
                .device()
                .record_h2d_skipped(nibble.device_byte_len() as u64);
        } else {
            let w1 = self
                .queue
                .enqueue_write_buffer(&slot.nibble_buf, true, 0, nibble.nibble_bytes())?;
            timing.transfer_s += w1.duration_s();
        }
        let w2 = self.queue.enqueue_fill_buffer(&self.fcount, 0u32)?;
        timing.transfer_s += w2.duration_s();

        let gws = round_up(scan_len, self.rounding);
        let ev = if let Some(k) = &self.spec_finder_nibble {
            // The specialized finder scans the nibble words directly, so the
            // raw-path `chr` scratch stays untouched (and stays valid).
            k.set_arg(0, KernelArg::BufU8(slot.nibble_buf.device_buffer()))?;
            k.set_arg(1, KernelArg::BufU32(self.loci.device_buffer()))?;
            k.set_arg(2, KernelArg::BufU8(self.flags.device_buffer()))?;
            k.set_arg(3, KernelArg::BufU32(self.fcount.device_buffer()))?;
            k.set_arg(4, KernelArg::U32(scan_len as u32))?;
            k.set_arg(5, KernelArg::U32(seq_len as u32))?;
            self.queue.enqueue_nd_range_kernel(k, gws, self.lws)?
        } else {
            // The nibble finder decodes over the raw-path scratch below.
            self.chr_token.set(None);

            let k = &self.finder_nibble;
            k.set_arg(0, KernelArg::BufU8(slot.nibble_buf.device_buffer()))?;
            k.set_arg(1, KernelArg::BufU8(self.chr.device_buffer()))?;
            k.set_arg(2, KernelArg::BufU8(self.pat.device_buffer()))?;
            k.set_arg(3, KernelArg::BufI32(self.pat_index.device_buffer()))?;
            k.set_arg(4, KernelArg::BufU32(self.loci.device_buffer()))?;
            k.set_arg(5, KernelArg::BufU8(self.flags.device_buffer()))?;
            k.set_arg(6, KernelArg::BufU32(self.fcount.device_buffer()))?;
            k.set_arg(7, KernelArg::U32(scan_len as u32))?;
            k.set_arg(8, KernelArg::U32(seq_len as u32))?;
            k.set_arg(9, KernelArg::U32(plen as u32))?;
            k.set_arg(10, KernelArg::Local { bytes: 2 * plen })?;
            k.set_arg(11, KernelArg::Local { bytes: 8 * plen })?;
            self.queue.enqueue_nd_range_kernel(k, gws, self.lws)?
        };
        ev.wait();
        timing.finder_s += ev
            .launch_report()
            .map(|r| r.exec_time_s)
            .unwrap_or_else(|| ev.duration_s());
        if let Some(r) = ev.launch_report() {
            profile.record_ref(r);
        }
        timing.finder_launches += 1;

        let mut n = [0u32];
        let r = self.queue.enqueue_read_buffer(&self.fcount, true, 0, &mut n)?;
        timing.transfer_s += r.duration_s();
        let n = n[0] as usize;
        timing.candidates += n as u64;
        self.note_candidates(token, n, timing)?;
        if n == 0 {
            return Ok((per_query, reused));
        }

        self.run_comparers_4bit(slot, n, tables, timing, profile, &mut per_query)?;
        Ok((per_query, reused))
    }

    /// Record a freshly produced candidate list: remember its identity for
    /// the cached-candidate entry points and, when capture is armed, read it
    /// back (a timed d2h transfer) for the caller's candidate cache.
    fn note_candidates(
        &self,
        token: Option<u64>,
        n: usize,
        timing: &mut TimingBreakdown,
    ) -> ClResult<()> {
        self.cand_token.set(token.map(|t| (t, n as u32)));
        if self.capture.get() {
            let mut loci = vec![0u32; n];
            let mut flags = vec![0u8; n];
            if n > 0 {
                let r1 = self.queue.enqueue_read_buffer(&self.loci, true, 0, &mut loci)?;
                let r2 = self.queue.enqueue_read_buffer(&self.flags, true, 0, &mut flags)?;
                timing.transfer_s += r1.duration_s() + r2.duration_s();
            }
            *self.captured.borrow_mut() = Some(CandidateSites { loci, flags });
        }
        Ok(())
    }

    /// Replace the finder pass with a cached candidate list: record the
    /// skipped launch, then stage `sites` into the `loci`/`flags` scratch —
    /// skipping even that upload when the same list is still resident from
    /// an earlier run under `token`.
    fn stage_cached_candidates(
        &self,
        token: u64,
        sites: &CandidateSites,
        timing: &mut TimingBreakdown,
    ) -> ClResult<()> {
        let n = sites.len();
        assert!(n <= self.cap, "candidate list exceeds runner capacity");
        self.queue.device().record_launch_skipped();
        timing.finder_launches_skipped += 1;
        timing.candidates += n as u64;
        if self.cand_token.get() == Some((token, n as u32)) {
            self.queue.device().record_h2d_skipped(sites.byte_len() as u64);
        } else {
            if n > 0 {
                let w1 = self.queue.enqueue_write_buffer(&self.loci, true, 0, &sites.loci)?;
                let w2 = self.queue.enqueue_write_buffer(&self.flags, true, 0, &sites.flags)?;
                timing.transfer_s += w1.duration_s() + w2.duration_s();
            }
            self.cand_token.set(Some((token, n as u32)));
        }
        Ok(())
    }

    /// [`run_chunk_resident`](Self::run_chunk_resident) with a pre-resolved
    /// candidate list: the finder launch is skipped entirely (recorded on
    /// the device and in `timing.finder_launches_skipped`) and the comparer
    /// stage runs against `sites` — a capture from an earlier run over the
    /// same chunk content and PAM pattern. `seq` is still needed because
    /// the char comparer reads the chunk bytes; its upload is skipped when
    /// the chunk is resident under `token`. Returns the entries plus
    /// whether the chunk payload was resident.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk or candidate list exceeds the runner's
    /// configured capacity.
    pub fn run_chunk_cached_candidates(
        &self,
        token: u64,
        seq: &[u8],
        sites: &CandidateSites,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<(Vec<QueryEntries>, bool)> {
        let plen = self.pattern.plen();
        assert!(
            seq.len() <= self.cap + plen,
            "chunk ({} bases) exceeds runner capacity {}",
            seq.len(),
            self.cap
        );
        let mut per_query = vec![Vec::new(); tables.len()];

        let reused = self.chr_token.get() == Some(token);
        if reused {
            self.queue.device().record_h2d_skipped(seq.len() as u64);
        } else {
            let w1 = self.queue.enqueue_write_buffer(&self.chr, true, 0, seq)?;
            timing.transfer_s += w1.duration_s();
            self.chr_token.set(Some(token));
        }

        self.stage_cached_candidates(token, sites, timing)?;
        let n = sites.len();
        if n == 0 {
            return Ok((per_query, reused));
        }
        self.run_comparers(n, tables, timing, profile, &mut per_query)?;
        Ok((per_query, reused))
    }

    /// [`run_packed_chunk_resident`](Self::run_packed_chunk_resident) with a
    /// pre-resolved candidate list: no finder launch, comparison in 2-bit
    /// form against the (resident or freshly uploaded) packed payload.
    ///
    /// Unlike the full packed run there is no char fallback — skipping the
    /// finder also skips the on-device decode the char comparer would read —
    /// so callers must check [`twobit_compare_safe`] first and take the full
    /// run (or the char cached path on decoded bytes) when it fails.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk or candidate list exceeds the runner's capacity,
    /// or if the payload is not [`twobit_compare_safe`].
    pub fn run_packed_chunk_cached_candidates(
        &self,
        token: u64,
        packed: &PackedSeq,
        sites: &CandidateSites,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<(Vec<QueryEntries>, bool)> {
        assert!(
            twobit_compare_safe(packed),
            "cached-candidate packed runs require 2-bit-safe payloads"
        );
        assert!(
            packed.len() <= self.cap + self.pattern.plen(),
            "chunk ({} bases) exceeds runner capacity {}",
            packed.len(),
            self.cap
        );
        let mut per_query = vec![Vec::new(); tables.len()];
        let n_exc = packed.exceptions().len();

        let hit = self.slots.iter().position(|s| s.token.get() == Some(token));
        let (slot, reused) = match hit {
            Some(i) => (&self.slots[i], true),
            None => {
                let i = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.tick.get())
                    .map(|(i, _)| i)
                    .expect("runner always has at least one slot");
                let slot = &self.slots[i];
                slot.token.set(Some(token));
                (slot, false)
            }
        };
        self.slot_clock.set(self.slot_clock.get() + 1);
        slot.tick.set(self.slot_clock.get());

        if reused {
            self.queue
                .device()
                .record_h2d_skipped(packed_upload_bytes(packed));
        } else {
            let w1 = self
                .queue
                .enqueue_write_buffer(&slot.packed_buf, true, 0, packed.packed_bytes())?;
            let w2 = self
                .queue
                .enqueue_write_buffer(&slot.mask_buf, true, 0, packed.mask_bytes())?;
            timing.transfer_s += w1.duration_s() + w2.duration_s();
            if n_exc > 0 {
                let (pos, val) = packed.exception_arrays();
                let e1 = self.queue.enqueue_write_buffer(&slot.exc_pos, true, 0, &pos)?;
                let e2 = self.queue.enqueue_write_buffer(&slot.exc_val, true, 0, &val)?;
                timing.transfer_s += e1.duration_s() + e2.duration_s();
            }
        }

        self.stage_cached_candidates(token, sites, timing)?;
        let n = sites.len();
        if n == 0 {
            return Ok((per_query, reused));
        }
        self.run_comparers_2bit(slot, n, tables, timing, profile, &mut per_query)?;
        Ok((per_query, reused))
    }

    /// [`run_nibble_chunk_resident`](Self::run_nibble_chunk_resident) with a
    /// pre-resolved candidate list: no finder launch, comparison by mask
    /// intersection against the (resident or freshly uploaded) nibble
    /// payload. Valid on any input — the nibble comparer never needs the
    /// decoded scratch.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk or candidate list exceeds the runner's capacity.
    pub fn run_nibble_chunk_cached_candidates(
        &self,
        token: u64,
        nibble: &NibbleSeq,
        sites: &CandidateSites,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> ClResult<(Vec<QueryEntries>, bool)> {
        assert!(
            nibble.len() <= self.cap + self.pattern.plen(),
            "chunk ({} bases) exceeds runner capacity {}",
            nibble.len(),
            self.cap
        );
        let mut per_query = vec![Vec::new(); tables.len()];

        let hit = self
            .nibble_slots
            .iter()
            .position(|s| s.token.get() == Some(token));
        let (slot, reused) = match hit {
            Some(i) => (&self.nibble_slots[i], true),
            None => {
                let i = self
                    .nibble_slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.tick.get())
                    .map(|(i, _)| i)
                    .expect("runner always has at least one slot");
                let slot = &self.nibble_slots[i];
                slot.token.set(Some(token));
                (slot, false)
            }
        };
        self.slot_clock.set(self.slot_clock.get() + 1);
        slot.tick.set(self.slot_clock.get());

        if reused {
            self.queue
                .device()
                .record_h2d_skipped(nibble.device_byte_len() as u64);
        } else {
            let w1 = self
                .queue
                .enqueue_write_buffer(&slot.nibble_buf, true, 0, nibble.nibble_bytes())?;
            timing.transfer_s += w1.duration_s();
        }

        self.stage_cached_candidates(token, sites, timing)?;
        let n = sites.len();
        if n == 0 {
            return Ok((per_query, reused));
        }
        self.run_comparers_4bit(slot, n, tables, timing, profile, &mut per_query)?;
        Ok((per_query, reused))
    }

    /// Shared comparer stage: one launch per prepared query against `n`
    /// candidate loci already staged in the runner's scratch buffers.
    fn run_comparers(
        &self,
        n: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
        per_query: &mut [QueryEntries],
    ) -> ClResult<()> {
        if let Some(multi) = &self.multi {
            if tables.len() > 1 {
                return self.run_comparers_multi(
                    multi,
                    MultiEnc::Char,
                    n,
                    tables,
                    timing,
                    profile,
                    per_query,
                );
            }
        }
        let plen = self.pattern.plen();
        for (qi, (out, (comp, comp_index, threshold))) in
            per_query.iter_mut().zip(&tables.entries).enumerate()
        {
            let wz = self.queue.enqueue_fill_buffer(&self.ecount, 0u32)?;
            timing.transfer_s += wz.duration_s();

            let gws = round_up(n, self.rounding);
            let ev = if self.specialize && !tables.spec_queries.is_empty() {
                let mut map = tables.spec_kernels.borrow_mut();
                let k = self.spec_kernel(
                    &mut map,
                    &tables.spec_queries,
                    qi,
                    VariantKind::CharComparer,
                    *threshold,
                )?;
                k.set_arg(0, KernelArg::BufU8(self.chr.device_buffer()))?;
                k.set_arg(1, KernelArg::BufU32(self.loci.device_buffer()))?;
                k.set_arg(2, KernelArg::BufU8(self.flags.device_buffer()))?;
                k.set_arg(3, KernelArg::BufU16(self.mm_count.device_buffer()))?;
                k.set_arg(4, KernelArg::BufU8(self.direction.device_buffer()))?;
                k.set_arg(5, KernelArg::BufU32(self.mm_loci.device_buffer()))?;
                k.set_arg(6, KernelArg::BufU32(self.ecount.device_buffer()))?;
                k.set_arg(7, KernelArg::U32(n as u32))?;
                self.queue.enqueue_nd_range_kernel(k, gws, self.lws)?
            } else {
                self.comparer.set_arg(0, KernelArg::BufU8(self.chr.device_buffer()))?;
                self.comparer.set_arg(1, KernelArg::BufU32(self.loci.device_buffer()))?;
                self.comparer.set_arg(2, KernelArg::BufU8(self.flags.device_buffer()))?;
                self.comparer.set_arg(3, KernelArg::BufU8(generic_table(comp).device_buffer()))?;
                self.comparer.set_arg(4, KernelArg::BufI32(generic_table(comp_index).device_buffer()))?;
                self.comparer.set_arg(5, KernelArg::U32(n as u32))?;
                self.comparer.set_arg(6, KernelArg::U32(plen as u32))?;
                self.comparer.set_arg(7, KernelArg::U16(*threshold))?;
                self.comparer.set_arg(8, KernelArg::BufU16(self.mm_count.device_buffer()))?;
                self.comparer.set_arg(9, KernelArg::BufU8(self.direction.device_buffer()))?;
                self.comparer.set_arg(10, KernelArg::BufU32(self.mm_loci.device_buffer()))?;
                self.comparer.set_arg(11, KernelArg::BufU32(self.ecount.device_buffer()))?;
                self.comparer.set_arg(12, KernelArg::Local { bytes: 2 * plen })?;
                self.comparer.set_arg(13, KernelArg::Local { bytes: 8 * plen })?;
                self.queue.enqueue_nd_range_kernel(&self.comparer, gws, self.lws)?
            };
            ev.wait();
            timing.comparer_s += ev
                .launch_report()
                .map(|r| r.exec_time_s)
                .unwrap_or_else(|| ev.duration_s());
            if let Some(r) = ev.launch_report() {
                profile.record_ref(r);
            }
            timing.comparer_launches += 1;

            // Step 11 (device->host): read back the surviving entries.
            let mut m = [0u32];
            let r = self.queue.enqueue_read_buffer(&self.ecount, true, 0, &mut m)?;
            timing.transfer_s += r.duration_s();
            let m = m[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let mut mm = vec![0u16; m];
            let mut dir = vec![0u8; m];
            let mut pos = vec![0u32; m];
            let r1 = self.queue.enqueue_read_buffer(&self.mm_count, true, 0, &mut mm)?;
            let r2 = self.queue.enqueue_read_buffer(&self.direction, true, 0, &mut dir)?;
            let r3 = self.queue.enqueue_read_buffer(&self.mm_loci, true, 0, &mut pos)?;
            timing.transfer_s += r1.duration_s() + r2.duration_s() + r3.duration_s();

            *out = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
        }
        Ok(())
    }

    /// Comparer stage over the resident 2-bit payload: one `comparer_2bit`
    /// launch per prepared query, reading `packed_buf`/`mask_buf` directly
    /// instead of the decoded `chr` scratch.
    fn run_comparers_2bit(
        &self,
        slot: &PackedSlot,
        n: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
        per_query: &mut [QueryEntries],
    ) -> ClResult<()> {
        if let Some(multi) = &self.multi {
            if tables.len() > 1 {
                return self.run_comparers_multi(
                    multi,
                    MultiEnc::TwoBit(slot),
                    n,
                    tables,
                    timing,
                    profile,
                    per_query,
                );
            }
        }
        let plen = self.pattern.plen();
        for (qi, (out, (comp, comp_index, threshold))) in
            per_query.iter_mut().zip(&tables.entries).enumerate()
        {
            let wz = self.queue.enqueue_fill_buffer(&self.ecount, 0u32)?;
            timing.transfer_s += wz.duration_s();

            let gws = round_up(n, self.rounding);
            let ev = if self.specialize && !tables.spec_queries.is_empty() {
                let mut map = tables.spec_kernels.borrow_mut();
                let k = self.spec_kernel(
                    &mut map,
                    &tables.spec_queries,
                    qi,
                    VariantKind::TwoBitComparer,
                    *threshold,
                )?;
                k.set_arg(0, KernelArg::BufU8(slot.packed_buf.device_buffer()))?;
                k.set_arg(1, KernelArg::BufU8(slot.mask_buf.device_buffer()))?;
                k.set_arg(2, KernelArg::BufU32(self.loci.device_buffer()))?;
                k.set_arg(3, KernelArg::BufU8(self.flags.device_buffer()))?;
                k.set_arg(4, KernelArg::BufU16(self.mm_count.device_buffer()))?;
                k.set_arg(5, KernelArg::BufU8(self.direction.device_buffer()))?;
                k.set_arg(6, KernelArg::BufU32(self.mm_loci.device_buffer()))?;
                k.set_arg(7, KernelArg::BufU32(self.ecount.device_buffer()))?;
                k.set_arg(8, KernelArg::U32(n as u32))?;
                self.queue.enqueue_nd_range_kernel(k, gws, self.lws)?
            } else {
                let k = &self.comparer_2bit;
                k.set_arg(0, KernelArg::BufU8(slot.packed_buf.device_buffer()))?;
                k.set_arg(1, KernelArg::BufU8(slot.mask_buf.device_buffer()))?;
                k.set_arg(2, KernelArg::BufU32(self.loci.device_buffer()))?;
                k.set_arg(3, KernelArg::BufU8(self.flags.device_buffer()))?;
                k.set_arg(4, KernelArg::BufU8(generic_table(comp).device_buffer()))?;
                k.set_arg(5, KernelArg::BufI32(generic_table(comp_index).device_buffer()))?;
                k.set_arg(6, KernelArg::U32(n as u32))?;
                k.set_arg(7, KernelArg::U32(plen as u32))?;
                k.set_arg(8, KernelArg::U16(*threshold))?;
                k.set_arg(9, KernelArg::BufU16(self.mm_count.device_buffer()))?;
                k.set_arg(10, KernelArg::BufU8(self.direction.device_buffer()))?;
                k.set_arg(11, KernelArg::BufU32(self.mm_loci.device_buffer()))?;
                k.set_arg(12, KernelArg::BufU32(self.ecount.device_buffer()))?;
                k.set_arg(13, KernelArg::Local { bytes: 2 * plen })?;
                k.set_arg(14, KernelArg::Local { bytes: 8 * plen })?;
                self.queue.enqueue_nd_range_kernel(k, gws, self.lws)?
            };
            ev.wait();
            timing.comparer_s += ev
                .launch_report()
                .map(|r| r.exec_time_s)
                .unwrap_or_else(|| ev.duration_s());
            if let Some(r) = ev.launch_report() {
                profile.record_ref(r);
            }
            timing.comparer_launches += 1;

            let mut m = [0u32];
            let r = self.queue.enqueue_read_buffer(&self.ecount, true, 0, &mut m)?;
            timing.transfer_s += r.duration_s();
            let m = m[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let mut mm = vec![0u16; m];
            let mut dir = vec![0u8; m];
            let mut pos = vec![0u32; m];
            let r1 = self.queue.enqueue_read_buffer(&self.mm_count, true, 0, &mut mm)?;
            let r2 = self.queue.enqueue_read_buffer(&self.direction, true, 0, &mut dir)?;
            let r3 = self.queue.enqueue_read_buffer(&self.mm_loci, true, 0, &mut pos)?;
            timing.transfer_s += r1.duration_s() + r2.duration_s() + r3.duration_s();

            *out = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
        }
        Ok(())
    }

    /// Comparer stage over the resident nibble payload: one `comparer_4bit`
    /// launch per prepared query, counting mismatches by mask intersection
    /// directly on the nibble words — `plen/2` global bytes per site on any
    /// input, soft-masked and degenerate included.
    fn run_comparers_4bit(
        &self,
        slot: &NibbleSlot,
        n: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
        per_query: &mut [QueryEntries],
    ) -> ClResult<()> {
        if let Some(multi) = &self.multi {
            if tables.len() > 1 {
                return self.run_comparers_multi(
                    multi,
                    MultiEnc::FourBit(slot),
                    n,
                    tables,
                    timing,
                    profile,
                    per_query,
                );
            }
        }
        let plen = self.pattern.plen();
        for (qi, (out, (comp, comp_index, threshold))) in
            per_query.iter_mut().zip(&tables.entries).enumerate()
        {
            let wz = self.queue.enqueue_fill_buffer(&self.ecount, 0u32)?;
            timing.transfer_s += wz.duration_s();

            let gws = round_up(n, self.rounding);
            let ev = if self.specialize && !tables.spec_queries.is_empty() {
                let mut map = tables.spec_kernels.borrow_mut();
                let k = self.spec_kernel(
                    &mut map,
                    &tables.spec_queries,
                    qi,
                    VariantKind::FourBitComparer,
                    *threshold,
                )?;
                k.set_arg(0, KernelArg::BufU8(slot.nibble_buf.device_buffer()))?;
                k.set_arg(1, KernelArg::BufU32(self.loci.device_buffer()))?;
                k.set_arg(2, KernelArg::BufU8(self.flags.device_buffer()))?;
                k.set_arg(3, KernelArg::BufU16(self.mm_count.device_buffer()))?;
                k.set_arg(4, KernelArg::BufU8(self.direction.device_buffer()))?;
                k.set_arg(5, KernelArg::BufU32(self.mm_loci.device_buffer()))?;
                k.set_arg(6, KernelArg::BufU32(self.ecount.device_buffer()))?;
                k.set_arg(7, KernelArg::U32(n as u32))?;
                self.queue.enqueue_nd_range_kernel(k, gws, self.lws)?
            } else {
                let k = &self.comparer_4bit;
                k.set_arg(0, KernelArg::BufU8(slot.nibble_buf.device_buffer()))?;
                k.set_arg(1, KernelArg::BufU32(self.loci.device_buffer()))?;
                k.set_arg(2, KernelArg::BufU8(self.flags.device_buffer()))?;
                k.set_arg(3, KernelArg::BufU8(generic_table(comp).device_buffer()))?;
                k.set_arg(4, KernelArg::BufI32(generic_table(comp_index).device_buffer()))?;
                k.set_arg(5, KernelArg::U32(n as u32))?;
                k.set_arg(6, KernelArg::U32(plen as u32))?;
                k.set_arg(7, KernelArg::U16(*threshold))?;
                k.set_arg(8, KernelArg::BufU16(self.mm_count.device_buffer()))?;
                k.set_arg(9, KernelArg::BufU8(self.direction.device_buffer()))?;
                k.set_arg(10, KernelArg::BufU32(self.mm_loci.device_buffer()))?;
                k.set_arg(11, KernelArg::BufU32(self.ecount.device_buffer()))?;
                k.set_arg(12, KernelArg::Local { bytes: 2 * plen })?;
                k.set_arg(13, KernelArg::Local { bytes: 8 * plen })?;
                self.queue.enqueue_nd_range_kernel(k, gws, self.lws)?
            };
            ev.wait();
            timing.comparer_s += ev
                .launch_report()
                .map(|r| r.exec_time_s)
                .unwrap_or_else(|| ev.duration_s());
            if let Some(r) = ev.launch_report() {
                profile.record_ref(r);
            }
            timing.comparer_launches += 1;

            let mut m = [0u32];
            let r = self.queue.enqueue_read_buffer(&self.ecount, true, 0, &mut m)?;
            timing.transfer_s += r.duration_s();
            let m = m[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let mut mm = vec![0u16; m];
            let mut dir = vec![0u8; m];
            let mut pos = vec![0u32; m];
            let r1 = self.queue.enqueue_read_buffer(&self.mm_count, true, 0, &mut mm)?;
            let r2 = self.queue.enqueue_read_buffer(&self.direction, true, 0, &mut dir)?;
            let r3 = self.queue.enqueue_read_buffer(&self.mm_loci, true, 0, &mut pos)?;
            timing.transfer_s += r1.duration_s() + r2.duration_s() + r3.duration_s();

            *out = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
        }
        Ok(())
    }

    /// Fused comparer stage: the prepared queries are cut into blocks of up
    /// to [`GUIDE_BLOCK`] guides and each block runs as one `comparer_multi*`
    /// launch against the shared candidate list — `ceil(k / GUIDE_BLOCK)`
    /// launches instead of `k`. The compacted four-array output is
    /// demultiplexed by guide tag, preserving compaction order within each
    /// guide, so the per-query entries are byte-identical to the serial
    /// path's.
    #[allow(clippy::too_many_arguments)]
    fn run_comparers_multi(
        &self,
        multi: &MultiScratch,
        enc: MultiEnc<'_>,
        n: usize,
        tables: &OclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
        per_query: &mut [QueryEntries],
    ) -> ClResult<()> {
        let plen = self.pattern.plen();
        let nq = tables.len();
        let gws = round_up(n, self.rounding);
        let mut start = 0;
        while start < nq {
            let g = (nq - start).min(GUIDE_BLOCK);
            // Concatenate the block's tables host-side: guide `bi` occupies
            // `[fwd | rc]` at offset `bi * 2 * plen`. Uploads are per block,
            // not per guide.
            let mut comp = vec![0u8; g * 2 * plen];
            let mut comp_index = vec![0i32; g * 2 * plen];
            let mut thresholds = vec![0u16; g];
            for bi in 0..g {
                let c = &tables.spec_queries[start + bi];
                comp[bi * 2 * plen..(bi + 1) * 2 * plen].copy_from_slice(c.comp());
                comp_index[bi * 2 * plen..(bi + 1) * 2 * plen].copy_from_slice(c.comp_index());
                thresholds[bi] = tables.entries[start + bi].2;
            }
            let w1 = self.queue.enqueue_write_buffer(&multi.comp, true, 0, &comp)?;
            let w2 = self
                .queue
                .enqueue_write_buffer(&multi.comp_index, true, 0, &comp_index)?;
            let wz = self.queue.enqueue_fill_buffer(&self.ecount, 0u32)?;
            timing.transfer_s += w1.duration_s() + w2.duration_s() + wz.duration_s();

            // A block whose guides share one threshold runs the
            // JIT-specialized fused variant when the runner specializes;
            // mixed thresholds stage the per-guide table instead.
            let folded = self.specialize && thresholds.iter().all(|&t| t == thresholds[0]);
            if !folded {
                let w3 = self
                    .queue
                    .enqueue_write_buffer(&multi.thresholds, true, 0, &thresholds)?;
                timing.transfer_s += w3.duration_s();
            }
            let mut map = self.spec_multi_kernels.borrow_mut();
            let k: &Kernel = if folded {
                self.spec_multi_kernel(&mut map, &enc, thresholds[0])?
            } else {
                match &enc {
                    MultiEnc::Char => &multi.comparer_multi,
                    MultiEnc::TwoBit(_) => &multi.comparer_multi_2bit,
                    MultiEnc::FourBit(_) => &multi.comparer_multi_4bit,
                }
            };
            let mut args: Vec<KernelArg> = match &enc {
                MultiEnc::Char => vec![KernelArg::BufU8(self.chr.device_buffer())],
                MultiEnc::TwoBit(slot) => vec![
                    KernelArg::BufU8(slot.packed_buf.device_buffer()),
                    KernelArg::BufU8(slot.mask_buf.device_buffer()),
                ],
                MultiEnc::FourBit(slot) => vec![KernelArg::BufU8(slot.nibble_buf.device_buffer())],
            };
            args.push(KernelArg::BufU32(self.loci.device_buffer()));
            args.push(KernelArg::BufU8(self.flags.device_buffer()));
            args.push(KernelArg::BufU8(multi.comp.device_buffer()));
            args.push(KernelArg::BufI32(multi.comp_index.device_buffer()));
            if !folded {
                args.push(KernelArg::BufU16(multi.thresholds.device_buffer()));
            }
            args.push(KernelArg::U32(n as u32));
            args.push(KernelArg::U32(plen as u32));
            args.push(KernelArg::U32(g as u32));
            args.push(KernelArg::BufU16(multi.mm_count.device_buffer()));
            args.push(KernelArg::BufU8(multi.direction.device_buffer()));
            args.push(KernelArg::BufU32(multi.mm_loci.device_buffer()));
            args.push(KernelArg::BufU16(multi.guide.device_buffer()));
            args.push(KernelArg::BufU32(self.ecount.device_buffer()));
            args.push(KernelArg::Local { bytes: g * 2 * plen });
            args.push(KernelArg::Local {
                bytes: g * 2 * plen * 4,
            });
            if !folded {
                args.push(KernelArg::Local { bytes: g * 2 });
            }
            for (i, arg) in args.into_iter().enumerate() {
                k.set_arg(i, arg)?;
            }
            let ev = self.queue.enqueue_nd_range_kernel(k, gws, self.lws)?;
            drop(map);
            ev.wait();
            timing.comparer_s += ev
                .launch_report()
                .map(|r| r.exec_time_s)
                .unwrap_or_else(|| ev.duration_s());
            if let Some(r) = ev.launch_report() {
                profile.record_ref(r);
            }
            timing.comparer_launches += 1;
            timing.fused_launches += 1;

            let mut m = [0u32];
            let r = self.queue.enqueue_read_buffer(&self.ecount, true, 0, &mut m)?;
            timing.transfer_s += r.duration_s();
            let m = m[0] as usize;
            timing.entries += m as u64;
            if m > 0 {
                let mut mm = vec![0u16; m];
                let mut dir = vec![0u8; m];
                let mut pos = vec![0u32; m];
                let mut gid = vec![0u16; m];
                let r1 = self.queue.enqueue_read_buffer(&multi.mm_count, true, 0, &mut mm)?;
                let r2 = self
                    .queue
                    .enqueue_read_buffer(&multi.direction, true, 0, &mut dir)?;
                let r3 = self.queue.enqueue_read_buffer(&multi.mm_loci, true, 0, &mut pos)?;
                let r4 = self.queue.enqueue_read_buffer(&multi.guide, true, 0, &mut gid)?;
                timing.transfer_s +=
                    r1.duration_s() + r2.duration_s() + r3.duration_s() + r4.duration_s();
                for i in 0..m {
                    per_query[start + gid[i] as usize].push((pos[i], dir[i], mm[i]));
                }
            }
            start += g;
        }
        Ok(())
    }

    /// Fetch (building on first use) the specialized fused comparer for the
    /// given encoding and shared block threshold. The variant folds the
    /// runner's PAM pattern and the threshold — the guide tables stay
    /// staged data — so the cache key is just (encoding, threshold).
    fn spec_multi_kernel<'m>(
        &self,
        map: &'m mut HashMap<(u8, u16), (Program, Kernel)>,
        enc: &MultiEnc<'_>,
        threshold: u16,
    ) -> ClResult<&'m Kernel> {
        use std::collections::hash_map::Entry;
        match map.entry((enc.tag(), threshold)) {
            Entry::Occupied(e) => Ok(&e.into_mut().1),
            Entry::Vacant(v) => {
                let variant = specialize::global_cache().get_or_compile(
                    VariantKind::MultiComparer,
                    &self.pattern,
                    threshold,
                );
                let (f, name): (Arc<dyn opencl_rt::ClKernelFunction>, &str) = match enc {
                    MultiEnc::Char => (
                        Arc::new(ClSpecializedMultiComparer { variant }),
                        VariantKind::MultiComparer.kernel_name(),
                    ),
                    MultiEnc::TwoBit(_) => (
                        Arc::new(ClSpecializedTwoBitMultiComparer { variant }),
                        "comparer_multi-2bit-spec",
                    ),
                    MultiEnc::FourBit(_) => (
                        Arc::new(ClSpecializedFourBitMultiComparer { variant }),
                        "comparer_multi-4bit-spec",
                    ),
                };
                let program =
                    Program::create_with_source(&self.ctx, KernelSource::new().with_function(f));
                program.build("-O3")?;
                let kernel = program.create_kernel(name)?;
                Ok(&v.insert((program, kernel)).1)
            }
        }
    }

    /// Upload-only warmup for the raw path: place `seq` in the `chr`
    /// scratch under `token` without launching a kernel, so a later
    /// [`run_chunk_resident`](Self::run_chunk_resident) with the same token
    /// skips the transfer. Returns whether an upload actually happened
    /// (`false` when the token was already resident).
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk exceeds the runner's configured capacity.
    pub fn prefetch_chunk(&self, token: u64, seq: &[u8]) -> ClResult<bool> {
        assert!(
            seq.len() <= self.cap + self.pattern.plen(),
            "chunk ({} bases) exceeds runner capacity {}",
            seq.len(),
            self.cap
        );
        if self.chr_token.get() == Some(token) {
            return Ok(false);
        }
        self.queue.enqueue_write_buffer(&self.chr, true, 0, seq)?;
        self.chr_token.set(Some(token));
        Ok(true)
    }

    /// Upload-only warmup for the packed path: claim a residency slot for
    /// `token` (evicting the least-recently-used slot if no slot already
    /// holds the token) and upload the packed payload without launching a
    /// kernel. Returns whether an upload actually happened.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk exceeds the runner's configured capacity.
    pub fn prefetch_packed_chunk(&self, token: u64, packed: &PackedSeq) -> ClResult<bool> {
        assert!(
            packed.len() <= self.cap + self.pattern.plen(),
            "chunk ({} bases) exceeds runner capacity {}",
            packed.len(),
            self.cap
        );
        self.slot_clock.set(self.slot_clock.get() + 1);
        if let Some(slot) = self.slots.iter().find(|s| s.token.get() == Some(token)) {
            slot.tick.set(self.slot_clock.get());
            return Ok(false);
        }
        let slot = self
            .slots
            .iter()
            .min_by_key(|s| s.tick.get())
            .expect("runner always has at least one slot");
        slot.token.set(Some(token));
        slot.tick.set(self.slot_clock.get());
        self.queue
            .enqueue_write_buffer(&slot.packed_buf, true, 0, packed.packed_bytes())?;
        self.queue
            .enqueue_write_buffer(&slot.mask_buf, true, 0, packed.mask_bytes())?;
        if !packed.exceptions().is_empty() {
            let (pos, val) = packed.exception_arrays();
            self.queue.enqueue_write_buffer(&slot.exc_pos, true, 0, &pos)?;
            self.queue.enqueue_write_buffer(&slot.exc_val, true, 0, &val)?;
        }
        Ok(true)
    }

    /// Upload-only warmup for the nibble path: claim a nibble residency
    /// slot for `token` and upload the nibble words without launching a
    /// kernel. Returns whether an upload actually happened.
    ///
    /// # Errors
    ///
    /// Propagates OpenCL-level failures.
    ///
    /// # Panics
    ///
    /// Panics if the chunk exceeds the runner's configured capacity.
    pub fn prefetch_nibble_chunk(&self, token: u64, nibble: &NibbleSeq) -> ClResult<bool> {
        assert!(
            nibble.len() <= self.cap + self.pattern.plen(),
            "chunk ({} bases) exceeds runner capacity {}",
            nibble.len(),
            self.cap
        );
        self.slot_clock.set(self.slot_clock.get() + 1);
        if let Some(slot) = self
            .nibble_slots
            .iter()
            .find(|s| s.token.get() == Some(token))
        {
            slot.tick.set(self.slot_clock.get());
            return Ok(false);
        }
        let slot = self
            .nibble_slots
            .iter()
            .min_by_key(|s| s.tick.get())
            .expect("runner always has at least one slot");
        slot.token.set(Some(token));
        slot.tick.set(self.slot_clock.get());
        self.queue
            .enqueue_write_buffer(&slot.nibble_buf, true, 0, nibble.nibble_bytes())?;
        Ok(true)
    }

    /// Block until every enqueued command completes.
    pub fn finish(&self) {
        self.queue.finish();
    }

    /// Simulated queue time consumed so far, in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.queue.elapsed_s()
    }

    /// Name of the simulated device the runner drives.
    pub fn device_name(&self) -> String {
        self.queue.device().spec().name.to_owned()
    }

    /// Transfer/launch counters of the underlying simulated device.
    pub fn traffic(&self) -> TrafficSnapshot {
        self.queue.device().traffic()
    }

    /// Step 13: explicitly release every owned object.
    pub fn release(self) {
        self.finder.release();
        self.finder_packed.release();
        self.finder_nibble.release();
        self.comparer.release();
        self.comparer_2bit.release();
        self.comparer_4bit.release();
        if let Some(k) = self.spec_finder_nibble {
            k.release();
        }
        if let Some(m) = self.multi {
            m.comparer_multi.release();
            m.comparer_multi_2bit.release();
            m.comparer_multi_4bit.release();
            m.comp.release();
            m.comp_index.release();
            m.thresholds.release();
            m.mm_count.release();
            m.direction.release();
            m.mm_loci.release();
            m.guide.release();
        }
        for (_, (program, kernel)) in self.spec_multi_kernels.into_inner() {
            kernel.release();
            program.release();
        }
        self.chr.release();
        for slot in self.slots {
            slot.packed_buf.release();
            slot.mask_buf.release();
            slot.exc_pos.release();
            slot.exc_val.release();
        }
        for slot in self.nibble_slots {
            slot.nibble_buf.release();
        }
        self.pat.release();
        self.pat_index.release();
        self.loci.release();
        self.flags.release();
        self.fcount.release();
        self.mm_count.release();
        self.direction.release();
        self.mm_loci.release();
        self.ecount.release();
        self.program.release();
        self.queue.release();
    }
}

/// Per-query device tables for the SYCL comparer. When the runner
/// specializes, the tables also keep each query's [`CompiledSeq`] so the
/// comparer stages can fold it into per-(pattern, threshold) variants.
pub struct SyclQueryTables {
    entries: Vec<(Buffer<u8>, Buffer<i32>, u16)>,
    spec_queries: Vec<CompiledSeq>,
}

impl SyclQueryTables {
    /// Number of prepared queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no queries are prepared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The SYCL flavour of the chunk-level API: owns the queue and the
/// constant pattern tables; per-chunk buffers are created fresh each call
/// and released implicitly, the way the migrated application manages
/// memory (§III of the paper).
pub struct SyclChunkRunner {
    queue: Queue,
    pattern: CompiledSeq,
    pat_buf: Buffer<u8>,
    pat_index_buf: Buffer<i32>,
    /// Prefer JIT-specialized kernel variants (see
    /// [`crate::kernels::specialize`]); comparer variants are fetched from
    /// the process-wide cache per (query, threshold) at launch time.
    specialize: bool,
    /// The PAM pattern's nibble-finder variant, folded at construction.
    pam_variant: Option<Arc<CompiledVariant>>,
    opt: OptLevel,
    wgs: usize,
    // Residency: keeping a bound `Buffer` alive *is* residency in the SYCL
    // model — re-binding a bound buffer charges no upload — so the runner
    // retains the chunk buffers of its last `resident_cap` tokens,
    // most-recently-used first.
    resident_cap: usize,
    packed_res: RefCell<Vec<(u64, SyclPackedResident)>>,
    raw_res: RefCell<Vec<(u64, Buffer<u8>)>>,
    nibble_res: RefCell<Vec<(u64, Buffer<u8>)>>,
    /// Fuse multi-query runs into guide-block comparer launches.
    multi_guide: bool,
    /// While set, every finder pass also reads its candidate list back into
    /// `captured` for a caller-owned candidate cache.
    capture: Cell<bool>,
    captured: RefCell<Option<CandidateSites>>,
    /// Still-bound candidate buffers of recent cached runs, keyed by chunk
    /// token — a cached replay under a resident token rebinds instead of
    /// re-uploading the list.
    cand_res: RefCell<Vec<(u64, SyclCandidateResident)>>,
}

/// The retained device buffers of one replayed candidate list.
#[derive(Clone)]
struct SyclCandidateResident {
    loci_buf: Buffer<u32>,
    flags_buf: Buffer<u8>,
    len: usize,
}

/// Which chunk encoding a fused SYCL comparer launch reads, with the bound
/// chunk buffers it needs.
enum SyclMultiEnc<'a> {
    /// Decoded char sequence.
    Char(&'a Buffer<u8>),
    /// 2-bit packed words plus N-mask.
    TwoBit(&'a Buffer<u8>, &'a Buffer<u8>),
    /// 4-bit nibble words.
    FourBit(&'a Buffer<u8>),
}

/// The retained device buffers of one packed chunk payload. Cloning shares
/// the underlying device buffers, so one copy can live in the residency
/// list while another is in use by the current run.
#[derive(Clone)]
struct SyclPackedResident {
    packed_buf: Buffer<u8>,
    mask_buf: Buffer<u8>,
    exc_pos_buf: Buffer<u32>,
    exc_val_buf: Buffer<u8>,
}

/// Remove and return the resident entry for `token`, if any.
fn take_resident<T>(list: &RefCell<Vec<(u64, T)>>, token: u64) -> Option<T> {
    let mut l = list.borrow_mut();
    l.iter()
        .position(|(t, _)| *t == token)
        .map(|i| l.remove(i).1)
}

/// Insert `value` for `token` at the most-recently-used position, dropping
/// the least-recently-used entries beyond `cap` (their device buffers are
/// released when the last handle drops).
fn retain_resident<T>(list: &RefCell<Vec<(u64, T)>>, token: u64, value: T, cap: usize) {
    let mut l = list.borrow_mut();
    l.insert(0, (token, value));
    l.truncate(cap);
}

impl SyclChunkRunner {
    /// Build the runner for `pattern_seq` on `config`'s device: selector,
    /// queue, and the constant-memory pattern tables.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn new(config: &PipelineConfig, pattern_seq: &[u8]) -> SyclResult<Self> {
        let queue = Queue::with_mode(&SpecSelector(config.device.clone()), config.exec)?;
        let pattern = CompiledSeq::compile(pattern_seq);
        let pat_buf = Buffer::from_slice(pattern.comp()).constant();
        let pat_index_buf = Buffer::from_slice(pattern.comp_index()).constant();
        let pam_variant = config.specialize.then(|| {
            specialize::global_cache().get_or_compile(VariantKind::NibbleFinder, &pattern, 0)
        });
        Ok(SyclChunkRunner {
            queue,
            pattern,
            pat_buf,
            pat_index_buf,
            specialize: config.specialize,
            pam_variant,
            opt: config.opt,
            wgs: config
                .work_group_size
                .unwrap_or(super::sycl::SYCL_WORK_GROUP_SIZE),
            resident_cap: config.resident_slots.max(1),
            packed_res: RefCell::new(Vec::new()),
            raw_res: RefCell::new(Vec::new()),
            nibble_res: RefCell::new(Vec::new()),
            multi_guide: config.multi_guide,
            capture: Cell::new(false),
            captured: RefCell::new(None),
            cand_res: RefCell::new(Vec::new()),
        })
    }

    /// Pattern length (PAM window) the runner was compiled for.
    pub fn plen(&self) -> usize {
        self.pattern.plen()
    }

    /// Arm or disarm candidate capture: while armed, every finder pass also
    /// reads its candidate list back to the host (a timed d2h transfer) and
    /// parks it for
    /// [`take_captured_candidates`](Self::take_captured_candidates).
    pub fn set_capture_candidates(&self, on: bool) {
        self.capture.set(on);
    }

    /// Take the candidate list captured by the most recent finder pass
    /// while capture was armed.
    pub fn take_captured_candidates(&self) -> Option<CandidateSites> {
        self.captured.borrow_mut().take()
    }

    /// Upload the comparer tables for `queries`.
    pub fn prepare_queries(&self, queries: &[Query]) -> SyclQueryTables {
        let mut spec_queries = Vec::new();
        let entries = queries
            .iter()
            .map(|q| {
                let c = CompiledSeq::compile(&q.seq);
                let e = (
                    Buffer::from_slice(c.comp()),
                    Buffer::from_slice(c.comp_index()),
                    q.max_mismatches,
                );
                // Both the specialized and the fused paths consume compiled
                // sequences rather than the table buffers (which only charge
                // traffic if bound, so keeping them is free).
                if self.specialize || self.multi_guide {
                    spec_queries.push(c);
                }
                e
            })
            .collect();
        SyclQueryTables {
            entries,
            spec_queries,
        }
    }

    /// Run one finder→comparer interaction on `seq` (see
    /// [`OclChunkRunner::run_chunk`] for the contract). The SYCL flavour
    /// reads counters and entries back through handler copies (Table III).
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn run_chunk(
        &self,
        seq: &[u8],
        scan_len: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<Vec<QueryEntries>> {
        self.run_chunk_inner(None, seq, scan_len, tables, timing, profile)
            .map(|(per_query, _)| per_query)
    }

    /// [`run_chunk`](Self::run_chunk) with residency (see
    /// [`OclChunkRunner::run_chunk_resident`] for the contract): the chunk
    /// buffer of the last `resident_slots` tokens stays bound on the device,
    /// and a matching `token` rebinds it instead of uploading.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn run_chunk_resident(
        &self,
        token: u64,
        seq: &[u8],
        scan_len: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<(Vec<QueryEntries>, bool)> {
        self.run_chunk_inner(Some(token), seq, scan_len, tables, timing, profile)
    }

    fn run_chunk_inner(
        &self,
        token: Option<u64>,
        seq: &[u8],
        scan_len: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<(Vec<QueryEntries>, bool)> {
        let plen = self.pattern.plen();
        let wgs = self.wgs;
        let mut per_query = vec![Vec::new(); tables.len()];

        // Per-chunk buffers; released implicitly when they drop. The
        // kernel-output arrays are `no_init`: the finder fully overwrites
        // the slots it uses, so they carry no implicit upload. A resident
        // token reuses the still-bound chunk buffer of an earlier run.
        let (chr_buf, reused) = match token.and_then(|t| take_resident(&self.raw_res, t)) {
            Some(buf) => {
                self.queue.device().record_h2d_skipped(seq.len() as u64);
                (buf, true)
            }
            None => (Buffer::from_slice(seq), false),
        };
        if let Some(t) = token {
            retain_resident(&self.raw_res, t, chr_buf.clone(), self.resident_cap);
        }
        let loci_buf = Buffer::<u32>::uninit(scan_len);
        let flags_buf = Buffer::<u8>::uninit(scan_len);
        let fcount_buf = Buffer::<u32>::new(1);

        // Command group: bind accessors (implicit upload) + finder kernel.
        let ev = self.queue.submit(|h| {
            let chr = h.get_access(&chr_buf, AccessMode::Read)?;
            let pat = h.get_access(&self.pat_buf, AccessMode::Read)?;
            let pat_index = h.get_access(&self.pat_index_buf, AccessMode::Read)?;
            let loci = h.get_access(&loci_buf, AccessMode::Write)?;
            let flags = h.get_access(&flags_buf, AccessMode::Write)?;
            let fcount = h.get_access(&fcount_buf, AccessMode::ReadWrite)?;

            let mut layout = LocalLayout::new();
            let l_pat = layout.array::<u8>(2 * plen);
            let l_pat_index = layout.array::<i32>(2 * plen);
            let kernel = FinderKernel {
                chr: chr.raw(),
                pat: pat.raw(),
                pat_index: pat_index.raw(),
                out: FinderOutput {
                    loci: loci.raw(),
                    flags: flags.raw(),
                    count: fcount.raw(),
                },
                scan_len: scan_len as u32,
                seq_len: seq.len() as u32,
                plen: plen as u32,
                l_pat,
                l_pat_index,
            };
            h.parallel_for(NdRange::linear(round_up(scan_len, wgs), wgs), &kernel)
        })?;
        ev.wait();
        let commands_s: f64 = ev.launch_reports().iter().map(|r| r.sim_time_s).sum();
        timing.finder_s += ev
            .launch_reports()
            .iter()
            .map(|r| r.exec_time_s)
            .sum::<f64>();
        for r in ev.launch_reports() {
            profile.record_ref(r);
        }
        timing.transfer_s += (ev.duration_s() - commands_s).max(0.0);
        timing.finder_launches += 1;

        // Read the match count back through a handler copy (Table III).
        let mut count_host = [0u32];
        let ev = self.queue.submit(|h| {
            let acc = h.get_access(&fcount_buf, AccessMode::Read)?;
            h.copy_from_device(&acc, &mut count_host)
        })?;
        timing.transfer_s += ev.duration_s();
        let n = count_host[0] as usize;
        timing.candidates += n as u64;
        self.note_candidates(token, &loci_buf, &flags_buf, n, timing)?;
        if n == 0 {
            return Ok((per_query, reused));
        }

        self.run_comparers(&chr_buf, &loci_buf, &flags_buf, n, tables, timing, profile, &mut per_query)?;
        // loci/flags/fcount buffers drop here: implicit release. The chunk
        // buffer survives in the residency list when a token retained it.
        Ok((per_query, reused))
    }

    /// Run one finder→comparer interaction from a losslessly 2-bit packed
    /// chunk (see [`OclChunkRunner::run_packed_chunk`] for the contract):
    /// the packed words, N-mask and rare exception bytes are uploaded
    /// instead of the raw bases, and the `finder_packed` kernel decodes the
    /// chunk on-device into a `no_init` scratch buffer before scanning.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn run_packed_chunk(
        &self,
        packed: &PackedSeq,
        scan_len: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<Vec<QueryEntries>> {
        self.run_packed_inner(None, packed, scan_len, tables, timing, profile)
            .map(|(per_query, _)| per_query)
    }

    /// [`run_packed_chunk`](Self::run_packed_chunk) with residency (see
    /// [`OclChunkRunner::run_packed_chunk_resident`] for the contract): the
    /// packed buffers of the last `resident_slots` tokens stay bound on the
    /// device, and a matching `token` rebinds them instead of uploading.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn run_packed_chunk_resident(
        &self,
        token: u64,
        packed: &PackedSeq,
        scan_len: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<(Vec<QueryEntries>, bool)> {
        self.run_packed_inner(Some(token), packed, scan_len, tables, timing, profile)
    }

    fn run_packed_inner(
        &self,
        token: Option<u64>,
        packed: &PackedSeq,
        scan_len: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<(Vec<QueryEntries>, bool)> {
        let plen = self.pattern.plen();
        let wgs = self.wgs;
        let seq_len = packed.len();
        let mut per_query = vec![Vec::new(); tables.len()];
        let n_exc = packed.exceptions().len();

        let (res, reused) = match token.and_then(|t| take_resident(&self.packed_res, t)) {
            Some(res) => {
                self.queue
                    .device()
                    .record_h2d_skipped(packed_upload_bytes(packed));
                (res, true)
            }
            None => {
                let (exc_pos, exc_val) = packed.exception_arrays();
                // The simulator rejects zero-length allocations; a
                // one-element dummy stands in when the chunk carries no
                // exceptions (n_exc guards use).
                (
                    SyclPackedResident {
                        packed_buf: Buffer::from_slice(packed.packed_bytes()),
                        mask_buf: Buffer::from_slice(packed.mask_bytes()),
                        exc_pos_buf: if n_exc > 0 {
                            Buffer::from_vec(exc_pos)
                        } else {
                            Buffer::from_slice(&[0u32])
                        },
                        exc_val_buf: if n_exc > 0 {
                            Buffer::from_vec(exc_val)
                        } else {
                            Buffer::from_slice(&[0u8])
                        },
                    },
                    false,
                )
            }
        };
        if let Some(t) = token {
            retain_resident(&self.packed_res, t, res.clone(), self.resident_cap);
        }
        let SyclPackedResident {
            packed_buf,
            mask_buf,
            exc_pos_buf,
            exc_val_buf,
        } = res;
        let chr_buf = Buffer::<u8>::uninit(seq_len);
        let loci_buf = Buffer::<u32>::uninit(scan_len);
        let flags_buf = Buffer::<u8>::uninit(scan_len);
        let fcount_buf = Buffer::<u32>::new(1);

        let ev = self.queue.submit(|h| {
            let packed_acc = h.get_access(&packed_buf, AccessMode::Read)?;
            let mask = h.get_access(&mask_buf, AccessMode::Read)?;
            let exc_pos = h.get_access(&exc_pos_buf, AccessMode::Read)?;
            let exc_val = h.get_access(&exc_val_buf, AccessMode::Read)?;
            let chr = h.get_access(&chr_buf, AccessMode::ReadWrite)?;
            let pat = h.get_access(&self.pat_buf, AccessMode::Read)?;
            let pat_index = h.get_access(&self.pat_index_buf, AccessMode::Read)?;
            let loci = h.get_access(&loci_buf, AccessMode::Write)?;
            let flags = h.get_access(&flags_buf, AccessMode::Write)?;
            let fcount = h.get_access(&fcount_buf, AccessMode::ReadWrite)?;

            let mut layout = LocalLayout::new();
            let l_pat = layout.array::<u8>(2 * plen);
            let l_pat_index = layout.array::<i32>(2 * plen);
            let kernel = PackedFinderKernel {
                inner: FinderKernel {
                    chr: chr.raw(),
                    pat: pat.raw(),
                    pat_index: pat_index.raw(),
                    out: FinderOutput {
                        loci: loci.raw(),
                        flags: flags.raw(),
                        count: fcount.raw(),
                    },
                    scan_len: scan_len as u32,
                    seq_len: seq_len as u32,
                    plen: plen as u32,
                    l_pat,
                    l_pat_index,
                },
                packed: packed_acc.raw(),
                mask: mask.raw(),
                exc_pos: exc_pos.raw(),
                exc_val: exc_val.raw(),
                n_exc: n_exc as u32,
            };
            h.parallel_for(NdRange::linear(round_up(scan_len, wgs), wgs), &kernel)
        })?;
        ev.wait();
        let commands_s: f64 = ev.launch_reports().iter().map(|r| r.sim_time_s).sum();
        timing.finder_s += ev
            .launch_reports()
            .iter()
            .map(|r| r.exec_time_s)
            .sum::<f64>();
        for r in ev.launch_reports() {
            profile.record_ref(r);
        }
        timing.transfer_s += (ev.duration_s() - commands_s).max(0.0);
        timing.finder_launches += 1;

        let mut count_host = [0u32];
        let ev = self.queue.submit(|h| {
            let acc = h.get_access(&fcount_buf, AccessMode::Read)?;
            h.copy_from_device(&acc, &mut count_host)
        })?;
        timing.transfer_s += ev.duration_s();
        let n = count_host[0] as usize;
        timing.candidates += n as u64;
        self.note_candidates(token, &loci_buf, &flags_buf, n, timing)?;
        if n == 0 {
            return Ok((per_query, reused));
        }

        // Same dispatch as the OpenCL runner: 2-bit comparison against the
        // resident packed buffers when the exceptions are semantically
        // transparent, char comparison on the decoded scratch otherwise.
        if twobit_compare_safe(packed) {
            self.run_comparers_2bit(
                &packed_buf, &mask_buf, &loci_buf, &flags_buf, n, tables, timing, profile,
                &mut per_query,
            )?;
        } else {
            self.run_comparers(&chr_buf, &loci_buf, &flags_buf, n, tables, timing, profile, &mut per_query)?;
        }
        Ok((per_query, reused))
    }

    /// Run one finder→comparer interaction from a 4-bit nibble-packed chunk
    /// (see [`OclChunkRunner::run_nibble_chunk`] for the contract): the
    /// nibble words are uploaded, the `finder_nibble` kernel decodes them
    /// on-device into a `no_init` scratch buffer before scanning, and every
    /// query compares with the `comparer_4bit` kernel directly on the
    /// nibbles — no char fallback on any input.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn run_nibble_chunk(
        &self,
        nibble: &NibbleSeq,
        scan_len: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<Vec<QueryEntries>> {
        self.run_nibble_inner(None, nibble, scan_len, tables, timing, profile)
            .map(|(per_query, _)| per_query)
    }

    /// [`run_nibble_chunk`](Self::run_nibble_chunk) with residency (see
    /// [`OclChunkRunner::run_nibble_chunk_resident`] for the contract): the
    /// nibble buffer of the last `resident_slots` tokens stays bound on the
    /// device, and a matching `token` rebinds it instead of uploading.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn run_nibble_chunk_resident(
        &self,
        token: u64,
        nibble: &NibbleSeq,
        scan_len: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<(Vec<QueryEntries>, bool)> {
        self.run_nibble_inner(Some(token), nibble, scan_len, tables, timing, profile)
    }

    fn run_nibble_inner(
        &self,
        token: Option<u64>,
        nibble: &NibbleSeq,
        scan_len: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<(Vec<QueryEntries>, bool)> {
        let plen = self.pattern.plen();
        let wgs = self.wgs;
        let seq_len = nibble.len();
        let mut per_query = vec![Vec::new(); tables.len()];

        let (nibble_buf, reused) = match token.and_then(|t| take_resident(&self.nibble_res, t)) {
            Some(buf) => {
                self.queue
                    .device()
                    .record_h2d_skipped(nibble.device_byte_len() as u64);
                (buf, true)
            }
            None => (Buffer::from_slice(nibble.nibble_bytes()), false),
        };
        if let Some(t) = token {
            retain_resident(&self.nibble_res, t, nibble_buf.clone(), self.resident_cap);
        }
        let chr_buf = Buffer::<u8>::uninit(seq_len);
        let loci_buf = Buffer::<u32>::uninit(scan_len);
        let flags_buf = Buffer::<u8>::uninit(scan_len);
        let fcount_buf = Buffer::<u32>::new(1);

        let ev = if let Some(variant) = &self.pam_variant {
            // The specialized finder scans the nibble words directly; the
            // decoded `chr` scratch is never produced or read.
            self.queue.submit(|h| {
                let nibbles = h.get_access(&nibble_buf, AccessMode::Read)?;
                let loci = h.get_access(&loci_buf, AccessMode::Write)?;
                let flags = h.get_access(&flags_buf, AccessMode::Write)?;
                let fcount = h.get_access(&fcount_buf, AccessMode::ReadWrite)?;

                let kernel = SpecializedNibbleFinderKernel {
                    nibbles: nibbles.raw(),
                    out: FinderOutput {
                        loci: loci.raw(),
                        flags: flags.raw(),
                        count: fcount.raw(),
                    },
                    scan_len: scan_len as u32,
                    seq_len: seq_len as u32,
                    variant: Arc::clone(variant),
                };
                h.parallel_for(NdRange::linear(round_up(scan_len, wgs), wgs), &kernel)
            })?
        } else {
            self.queue.submit(|h| {
                let nibbles = h.get_access(&nibble_buf, AccessMode::Read)?;
                let chr = h.get_access(&chr_buf, AccessMode::ReadWrite)?;
                let pat = h.get_access(&self.pat_buf, AccessMode::Read)?;
                let pat_index = h.get_access(&self.pat_index_buf, AccessMode::Read)?;
                let loci = h.get_access(&loci_buf, AccessMode::Write)?;
                let flags = h.get_access(&flags_buf, AccessMode::Write)?;
                let fcount = h.get_access(&fcount_buf, AccessMode::ReadWrite)?;

                let mut layout = LocalLayout::new();
                let l_pat = layout.array::<u8>(2 * plen);
                let l_pat_index = layout.array::<i32>(2 * plen);
                let kernel = NibbleFinderKernel {
                    inner: FinderKernel {
                        chr: chr.raw(),
                        pat: pat.raw(),
                        pat_index: pat_index.raw(),
                        out: FinderOutput {
                            loci: loci.raw(),
                            flags: flags.raw(),
                            count: fcount.raw(),
                        },
                        scan_len: scan_len as u32,
                        seq_len: seq_len as u32,
                        plen: plen as u32,
                        l_pat,
                        l_pat_index,
                    },
                    nibbles: nibbles.raw(),
                };
                h.parallel_for(NdRange::linear(round_up(scan_len, wgs), wgs), &kernel)
            })?
        };
        ev.wait();
        let commands_s: f64 = ev.launch_reports().iter().map(|r| r.sim_time_s).sum();
        timing.finder_s += ev
            .launch_reports()
            .iter()
            .map(|r| r.exec_time_s)
            .sum::<f64>();
        for r in ev.launch_reports() {
            profile.record_ref(r);
        }
        timing.transfer_s += (ev.duration_s() - commands_s).max(0.0);
        timing.finder_launches += 1;

        let mut count_host = [0u32];
        let ev = self.queue.submit(|h| {
            let acc = h.get_access(&fcount_buf, AccessMode::Read)?;
            h.copy_from_device(&acc, &mut count_host)
        })?;
        timing.transfer_s += ev.duration_s();
        let n = count_host[0] as usize;
        timing.candidates += n as u64;
        self.note_candidates(token, &loci_buf, &flags_buf, n, timing)?;
        if n == 0 {
            return Ok((per_query, reused));
        }

        self.run_comparers_4bit(
            &nibble_buf, &loci_buf, &flags_buf, n, tables, timing, profile, &mut per_query,
        )?;
        Ok((per_query, reused))
    }

    /// Record a freshly produced candidate list: retain its still-bound
    /// buffers for the cached-candidate entry points and, when capture is
    /// armed, read it back (a timed d2h transfer) for the caller's
    /// candidate cache.
    fn note_candidates(
        &self,
        token: Option<u64>,
        loci_buf: &Buffer<u32>,
        flags_buf: &Buffer<u8>,
        n: usize,
        timing: &mut TimingBreakdown,
    ) -> SyclResult<()> {
        if self.capture.get() {
            let mut loci = vec![0u32; n];
            let mut flags = vec![0u8; n];
            if n > 0 {
                let ev = self.queue.submit(|h| {
                    let l = h.get_access(loci_buf, AccessMode::Read)?;
                    let f = h.get_access(flags_buf, AccessMode::Read)?;
                    h.copy_from_device(&l, &mut loci)?;
                    h.copy_from_device(&f, &mut flags)
                })?;
                timing.transfer_s += ev.duration_s();
            }
            *self.captured.borrow_mut() = Some(CandidateSites { loci, flags });
        }
        if let Some(t) = token {
            retain_resident(
                &self.cand_res,
                t,
                SyclCandidateResident {
                    loci_buf: loci_buf.clone(),
                    flags_buf: flags_buf.clone(),
                    len: n,
                },
                self.resident_cap,
            );
        }
        Ok(())
    }

    /// Replace the finder pass with a cached candidate list: record the
    /// skipped launch, then produce bound loci/flags buffers — rebinding
    /// the still-resident buffers of an earlier run under `token` when
    /// their length matches, uploading fresh ones otherwise.
    fn stage_cached_candidates(
        &self,
        token: u64,
        sites: &CandidateSites,
        timing: &mut TimingBreakdown,
    ) -> (Buffer<u32>, Buffer<u8>) {
        let n = sites.len();
        self.queue.device().record_launch_skipped();
        timing.finder_launches_skipped += 1;
        timing.candidates += n as u64;
        let res = match take_resident(&self.cand_res, token) {
            Some(res) if res.len == n => {
                self.queue
                    .device()
                    .record_h2d_skipped(sites.byte_len() as u64);
                res
            }
            // The simulator rejects zero-length allocations; one-element
            // dummies stand in for an empty list (the comparers never run).
            _ => SyclCandidateResident {
                loci_buf: if n > 0 {
                    Buffer::from_slice(&sites.loci)
                } else {
                    Buffer::from_slice(&[0u32])
                },
                flags_buf: if n > 0 {
                    Buffer::from_slice(&sites.flags)
                } else {
                    Buffer::from_slice(&[0u8])
                },
                len: n,
            },
        };
        retain_resident(&self.cand_res, token, res.clone(), self.resident_cap);
        (res.loci_buf, res.flags_buf)
    }

    /// [`run_chunk_resident`](Self::run_chunk_resident) with a pre-resolved
    /// candidate list (see
    /// [`OclChunkRunner::run_chunk_cached_candidates`] for the contract):
    /// the finder launch is skipped and the comparer stage runs against
    /// `sites`.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn run_chunk_cached_candidates(
        &self,
        token: u64,
        seq: &[u8],
        sites: &CandidateSites,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<(Vec<QueryEntries>, bool)> {
        let mut per_query = vec![Vec::new(); tables.len()];
        let (chr_buf, reused) = match take_resident(&self.raw_res, token) {
            Some(buf) => {
                self.queue.device().record_h2d_skipped(seq.len() as u64);
                (buf, true)
            }
            None => (Buffer::from_slice(seq), false),
        };
        retain_resident(&self.raw_res, token, chr_buf.clone(), self.resident_cap);

        let (loci_buf, flags_buf) = self.stage_cached_candidates(token, sites, timing);
        let n = sites.len();
        if n == 0 {
            return Ok((per_query, reused));
        }
        self.run_comparers(
            &chr_buf, &loci_buf, &flags_buf, n, tables, timing, profile, &mut per_query,
        )?;
        Ok((per_query, reused))
    }

    /// [`run_packed_chunk_resident`](Self::run_packed_chunk_resident) with a
    /// pre-resolved candidate list (see
    /// [`OclChunkRunner::run_packed_chunk_cached_candidates`] for the
    /// contract): no finder launch, 2-bit comparison only.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not [`twobit_compare_safe`] — skipping the
    /// finder also skips the decode the char fallback would read.
    pub fn run_packed_chunk_cached_candidates(
        &self,
        token: u64,
        packed: &PackedSeq,
        sites: &CandidateSites,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<(Vec<QueryEntries>, bool)> {
        assert!(
            twobit_compare_safe(packed),
            "cached-candidate packed runs require 2-bit-safe payloads"
        );
        let mut per_query = vec![Vec::new(); tables.len()];
        let n_exc = packed.exceptions().len();
        let (res, reused) = match take_resident(&self.packed_res, token) {
            Some(res) => {
                self.queue
                    .device()
                    .record_h2d_skipped(packed_upload_bytes(packed));
                (res, true)
            }
            None => {
                let (exc_pos, exc_val) = packed.exception_arrays();
                (
                    SyclPackedResident {
                        packed_buf: Buffer::from_slice(packed.packed_bytes()),
                        mask_buf: Buffer::from_slice(packed.mask_bytes()),
                        exc_pos_buf: if n_exc > 0 {
                            Buffer::from_vec(exc_pos)
                        } else {
                            Buffer::from_slice(&[0u32])
                        },
                        exc_val_buf: if n_exc > 0 {
                            Buffer::from_vec(exc_val)
                        } else {
                            Buffer::from_slice(&[0u8])
                        },
                    },
                    false,
                )
            }
        };
        retain_resident(&self.packed_res, token, res.clone(), self.resident_cap);

        let (loci_buf, flags_buf) = self.stage_cached_candidates(token, sites, timing);
        let n = sites.len();
        if n == 0 {
            return Ok((per_query, reused));
        }
        self.run_comparers_2bit(
            &res.packed_buf,
            &res.mask_buf,
            &loci_buf,
            &flags_buf,
            n,
            tables,
            timing,
            profile,
            &mut per_query,
        )?;
        Ok((per_query, reused))
    }

    /// [`run_nibble_chunk_resident`](Self::run_nibble_chunk_resident) with a
    /// pre-resolved candidate list (see
    /// [`OclChunkRunner::run_nibble_chunk_cached_candidates`] for the
    /// contract): no finder launch, mask-intersection comparison on the
    /// nibble words — valid on any input.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn run_nibble_chunk_cached_candidates(
        &self,
        token: u64,
        nibble: &NibbleSeq,
        sites: &CandidateSites,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
    ) -> SyclResult<(Vec<QueryEntries>, bool)> {
        let mut per_query = vec![Vec::new(); tables.len()];
        let (nibble_buf, reused) = match take_resident(&self.nibble_res, token) {
            Some(buf) => {
                self.queue
                    .device()
                    .record_h2d_skipped(nibble.device_byte_len() as u64);
                (buf, true)
            }
            None => (Buffer::from_slice(nibble.nibble_bytes()), false),
        };
        retain_resident(&self.nibble_res, token, nibble_buf.clone(), self.resident_cap);

        let (loci_buf, flags_buf) = self.stage_cached_candidates(token, sites, timing);
        let n = sites.len();
        if n == 0 {
            return Ok((per_query, reused));
        }
        self.run_comparers_4bit(
            &nibble_buf,
            &loci_buf,
            &flags_buf,
            n,
            tables,
            timing,
            profile,
            &mut per_query,
        )?;
        Ok((per_query, reused))
    }

    /// Shared comparer stage: one command group per prepared query against
    /// `n` candidate loci staged in the given chunk buffers.
    #[allow(clippy::too_many_arguments)]
    fn run_comparers(
        &self,
        chr_buf: &Buffer<u8>,
        loci_buf: &Buffer<u32>,
        flags_buf: &Buffer<u8>,
        n: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
        per_query: &mut [QueryEntries],
    ) -> SyclResult<()> {
        if self.multi_guide && tables.len() > 1 {
            return self.run_comparers_multi(
                SyclMultiEnc::Char(chr_buf),
                loci_buf,
                flags_buf,
                n,
                tables,
                timing,
                profile,
                per_query,
            );
        }
        let plen = self.pattern.plen();
        let wgs = self.wgs;
        for (qi, (out, (comp_buf, comp_index_buf, threshold))) in
            per_query.iter_mut().zip(&tables.entries).enumerate()
        {
            let out_mm = Buffer::<u16>::uninit(2 * n);
            let out_dir = Buffer::<u8>::uninit(2 * n);
            let out_loci = Buffer::<u32>::uninit(2 * n);
            let out_count = Buffer::<u32>::new(1);

            let ev = if self.specialize && !tables.spec_queries.is_empty() {
                let variant = specialize::global_cache().get_or_compile(
                    VariantKind::CharComparer,
                    &tables.spec_queries[qi],
                    *threshold,
                );
                self.queue.submit(|h| {
                    let chr = h.get_access(chr_buf, AccessMode::Read)?;
                    let loci = h.get_access(loci_buf, AccessMode::Read)?;
                    let flags = h.get_access(flags_buf, AccessMode::Read)?;
                    let mm = h.get_access(&out_mm, AccessMode::Write)?;
                    let dir = h.get_access(&out_dir, AccessMode::Write)?;
                    let mloci = h.get_access(&out_loci, AccessMode::Write)?;
                    let count = h.get_access(&out_count, AccessMode::ReadWrite)?;

                    let kernel = SpecializedComparerKernel {
                        chr: chr.raw(),
                        loci: loci.raw(),
                        flags: flags.raw(),
                        locicnt: n as u32,
                        out: ComparerOutput {
                            mm_count: mm.raw(),
                            direction: dir.raw(),
                            loci: mloci.raw(),
                            count: count.raw(),
                        },
                        variant: Arc::clone(&variant),
                    };
                    h.parallel_for(NdRange::linear(round_up(n, wgs), wgs), &kernel)
                })?
            } else {
                self.queue.submit(|h| {
                    let chr = h.get_access(chr_buf, AccessMode::Read)?;
                    let loci = h.get_access(loci_buf, AccessMode::Read)?;
                    let flags = h.get_access(flags_buf, AccessMode::Read)?;
                    let comp = h.get_access(comp_buf, AccessMode::Read)?;
                    let comp_index = h.get_access(comp_index_buf, AccessMode::Read)?;
                    let mm = h.get_access(&out_mm, AccessMode::Write)?;
                    let dir = h.get_access(&out_dir, AccessMode::Write)?;
                    let mloci = h.get_access(&out_loci, AccessMode::Write)?;
                    let count = h.get_access(&out_count, AccessMode::ReadWrite)?;

                    let mut layout = LocalLayout::new();
                    let l_comp = layout.array::<u8>(2 * plen);
                    let l_comp_index = layout.array::<i32>(2 * plen);
                    let kernel = ComparerKernel {
                        opt: self.opt,
                        chr: chr.raw(),
                        loci: loci.raw(),
                        flags: flags.raw(),
                        comp: comp.raw(),
                        comp_index: comp_index.raw(),
                        locicnt: n as u32,
                        plen: plen as u32,
                        threshold: *threshold,
                        out: ComparerOutput {
                            mm_count: mm.raw(),
                            direction: dir.raw(),
                            loci: mloci.raw(),
                            count: count.raw(),
                        },
                        l_comp,
                        l_comp_index,
                    };
                    h.parallel_for(NdRange::linear(round_up(n, wgs), wgs), &kernel)
                })?
            };
            ev.wait();
            let commands_s: f64 = ev.launch_reports().iter().map(|r| r.sim_time_s).sum();
            timing.comparer_s += ev
                .launch_reports()
                .iter()
                .map(|r| r.exec_time_s)
                .sum::<f64>();
            for r in ev.launch_reports() {
                profile.record_ref(r);
            }
            timing.transfer_s += (ev.duration_s() - commands_s).max(0.0);
            timing.comparer_launches += 1;

            let mut entry_count = [0u32];
            let ev = self.queue.submit(|h| {
                let acc = h.get_access(&out_count, AccessMode::Read)?;
                h.copy_from_device(&acc, &mut entry_count)
            })?;
            timing.transfer_s += ev.duration_s();
            let m = entry_count[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let mut mm = vec![0u16; m];
            let mut dir = vec![0u8; m];
            let mut pos = vec![0u32; m];
            let ev = self.queue.submit(|h| {
                let mm_acc = h.get_access(&out_mm, AccessMode::Read)?;
                let dir_acc = h.get_access(&out_dir, AccessMode::Read)?;
                let pos_acc = h.get_access(&out_loci, AccessMode::Read)?;
                h.copy_from_device(&mm_acc, &mut mm)?;
                h.copy_from_device(&dir_acc, &mut dir)?;
                h.copy_from_device(&pos_acc, &mut pos)
            })?;
            timing.transfer_s += ev.duration_s();
            *out = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
        }
        Ok(())
    }

    /// Comparer stage over the resident 2-bit payload: one command group
    /// per prepared query running [`TwoBitComparerKernel`] against the
    /// packed words and N-mask, skipping the decoded scratch entirely.
    #[allow(clippy::too_many_arguments)]
    fn run_comparers_2bit(
        &self,
        packed_buf: &Buffer<u8>,
        mask_buf: &Buffer<u8>,
        loci_buf: &Buffer<u32>,
        flags_buf: &Buffer<u8>,
        n: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
        per_query: &mut [QueryEntries],
    ) -> SyclResult<()> {
        if self.multi_guide && tables.len() > 1 {
            return self.run_comparers_multi(
                SyclMultiEnc::TwoBit(packed_buf, mask_buf),
                loci_buf,
                flags_buf,
                n,
                tables,
                timing,
                profile,
                per_query,
            );
        }
        let plen = self.pattern.plen();
        let wgs = self.wgs;
        for (qi, (out, (comp_buf, comp_index_buf, threshold))) in
            per_query.iter_mut().zip(&tables.entries).enumerate()
        {
            let out_mm = Buffer::<u16>::uninit(2 * n);
            let out_dir = Buffer::<u8>::uninit(2 * n);
            let out_loci = Buffer::<u32>::uninit(2 * n);
            let out_count = Buffer::<u32>::new(1);

            let ev = if self.specialize && !tables.spec_queries.is_empty() {
                let variant = specialize::global_cache().get_or_compile(
                    VariantKind::TwoBitComparer,
                    &tables.spec_queries[qi],
                    *threshold,
                );
                self.queue.submit(|h| {
                    let packed = h.get_access(packed_buf, AccessMode::Read)?;
                    let mask = h.get_access(mask_buf, AccessMode::Read)?;
                    let loci = h.get_access(loci_buf, AccessMode::Read)?;
                    let flags = h.get_access(flags_buf, AccessMode::Read)?;
                    let mm = h.get_access(&out_mm, AccessMode::Write)?;
                    let dir = h.get_access(&out_dir, AccessMode::Write)?;
                    let mloci = h.get_access(&out_loci, AccessMode::Write)?;
                    let count = h.get_access(&out_count, AccessMode::ReadWrite)?;

                    let kernel = SpecializedTwoBitComparerKernel {
                        packed: packed.raw(),
                        mask: mask.raw(),
                        loci: loci.raw(),
                        flags: flags.raw(),
                        locicnt: n as u32,
                        out: ComparerOutput {
                            mm_count: mm.raw(),
                            direction: dir.raw(),
                            loci: mloci.raw(),
                            count: count.raw(),
                        },
                        variant: Arc::clone(&variant),
                    };
                    h.parallel_for(NdRange::linear(round_up(n, wgs), wgs), &kernel)
                })?
            } else {
                self.queue.submit(|h| {
                    let packed = h.get_access(packed_buf, AccessMode::Read)?;
                    let mask = h.get_access(mask_buf, AccessMode::Read)?;
                    let loci = h.get_access(loci_buf, AccessMode::Read)?;
                    let flags = h.get_access(flags_buf, AccessMode::Read)?;
                    let comp = h.get_access(comp_buf, AccessMode::Read)?;
                    let comp_index = h.get_access(comp_index_buf, AccessMode::Read)?;
                    let mm = h.get_access(&out_mm, AccessMode::Write)?;
                    let dir = h.get_access(&out_dir, AccessMode::Write)?;
                    let mloci = h.get_access(&out_loci, AccessMode::Write)?;
                    let count = h.get_access(&out_count, AccessMode::ReadWrite)?;

                    let mut layout = LocalLayout::new();
                    let l_comp = layout.array::<u8>(2 * plen);
                    let l_comp_index = layout.array::<i32>(2 * plen);
                    let kernel = TwoBitComparerKernel {
                        packed: packed.raw(),
                        mask: mask.raw(),
                        loci: loci.raw(),
                        flags: flags.raw(),
                        comp: comp.raw(),
                        comp_index: comp_index.raw(),
                        locicnt: n as u32,
                        plen: plen as u32,
                        threshold: *threshold,
                        out: ComparerOutput {
                            mm_count: mm.raw(),
                            direction: dir.raw(),
                            loci: mloci.raw(),
                            count: count.raw(),
                        },
                        l_comp,
                        l_comp_index,
                    };
                    h.parallel_for(NdRange::linear(round_up(n, wgs), wgs), &kernel)
                })?
            };
            ev.wait();
            let commands_s: f64 = ev.launch_reports().iter().map(|r| r.sim_time_s).sum();
            timing.comparer_s += ev
                .launch_reports()
                .iter()
                .map(|r| r.exec_time_s)
                .sum::<f64>();
            for r in ev.launch_reports() {
                profile.record_ref(r);
            }
            timing.transfer_s += (ev.duration_s() - commands_s).max(0.0);
            timing.comparer_launches += 1;

            let mut entry_count = [0u32];
            let ev = self.queue.submit(|h| {
                let acc = h.get_access(&out_count, AccessMode::Read)?;
                h.copy_from_device(&acc, &mut entry_count)
            })?;
            timing.transfer_s += ev.duration_s();
            let m = entry_count[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let mut mm = vec![0u16; m];
            let mut dir = vec![0u8; m];
            let mut pos = vec![0u32; m];
            let ev = self.queue.submit(|h| {
                let mm_acc = h.get_access(&out_mm, AccessMode::Read)?;
                let dir_acc = h.get_access(&out_dir, AccessMode::Read)?;
                let pos_acc = h.get_access(&out_loci, AccessMode::Read)?;
                h.copy_from_device(&mm_acc, &mut mm)?;
                h.copy_from_device(&dir_acc, &mut dir)?;
                h.copy_from_device(&pos_acc, &mut pos)
            })?;
            timing.transfer_s += ev.duration_s();
            *out = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
        }
        Ok(())
    }

    /// Comparer stage over the resident nibble payload: one command group
    /// per prepared query running [`FourBitComparerKernel`] by mask
    /// intersection directly on the nibble words.
    #[allow(clippy::too_many_arguments)]
    fn run_comparers_4bit(
        &self,
        nibble_buf: &Buffer<u8>,
        loci_buf: &Buffer<u32>,
        flags_buf: &Buffer<u8>,
        n: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
        per_query: &mut [QueryEntries],
    ) -> SyclResult<()> {
        if self.multi_guide && tables.len() > 1 {
            return self.run_comparers_multi(
                SyclMultiEnc::FourBit(nibble_buf),
                loci_buf,
                flags_buf,
                n,
                tables,
                timing,
                profile,
                per_query,
            );
        }
        let plen = self.pattern.plen();
        let wgs = self.wgs;
        for (qi, (out, (comp_buf, comp_index_buf, threshold))) in
            per_query.iter_mut().zip(&tables.entries).enumerate()
        {
            let out_mm = Buffer::<u16>::uninit(2 * n);
            let out_dir = Buffer::<u8>::uninit(2 * n);
            let out_loci = Buffer::<u32>::uninit(2 * n);
            let out_count = Buffer::<u32>::new(1);

            let ev = if self.specialize && !tables.spec_queries.is_empty() {
                let variant = specialize::global_cache().get_or_compile(
                    VariantKind::FourBitComparer,
                    &tables.spec_queries[qi],
                    *threshold,
                );
                self.queue.submit(|h| {
                    let nibbles = h.get_access(nibble_buf, AccessMode::Read)?;
                    let loci = h.get_access(loci_buf, AccessMode::Read)?;
                    let flags = h.get_access(flags_buf, AccessMode::Read)?;
                    let mm = h.get_access(&out_mm, AccessMode::Write)?;
                    let dir = h.get_access(&out_dir, AccessMode::Write)?;
                    let mloci = h.get_access(&out_loci, AccessMode::Write)?;
                    let count = h.get_access(&out_count, AccessMode::ReadWrite)?;

                    let kernel = SpecializedFourBitComparerKernel {
                        nibbles: nibbles.raw(),
                        loci: loci.raw(),
                        flags: flags.raw(),
                        locicnt: n as u32,
                        out: ComparerOutput {
                            mm_count: mm.raw(),
                            direction: dir.raw(),
                            loci: mloci.raw(),
                            count: count.raw(),
                        },
                        variant: Arc::clone(&variant),
                    };
                    h.parallel_for(NdRange::linear(round_up(n, wgs), wgs), &kernel)
                })?
            } else {
                self.queue.submit(|h| {
                    let nibbles = h.get_access(nibble_buf, AccessMode::Read)?;
                    let loci = h.get_access(loci_buf, AccessMode::Read)?;
                    let flags = h.get_access(flags_buf, AccessMode::Read)?;
                    let comp = h.get_access(comp_buf, AccessMode::Read)?;
                    let comp_index = h.get_access(comp_index_buf, AccessMode::Read)?;
                    let mm = h.get_access(&out_mm, AccessMode::Write)?;
                    let dir = h.get_access(&out_dir, AccessMode::Write)?;
                    let mloci = h.get_access(&out_loci, AccessMode::Write)?;
                    let count = h.get_access(&out_count, AccessMode::ReadWrite)?;

                    let mut layout = LocalLayout::new();
                    let l_comp = layout.array::<u8>(2 * plen);
                    let l_comp_index = layout.array::<i32>(2 * plen);
                    let kernel = FourBitComparerKernel {
                        nibbles: nibbles.raw(),
                        loci: loci.raw(),
                        flags: flags.raw(),
                        comp: comp.raw(),
                        comp_index: comp_index.raw(),
                        locicnt: n as u32,
                        plen: plen as u32,
                        threshold: *threshold,
                        out: ComparerOutput {
                            mm_count: mm.raw(),
                            direction: dir.raw(),
                            loci: mloci.raw(),
                            count: count.raw(),
                        },
                        l_comp,
                        l_comp_index,
                    };
                    h.parallel_for(NdRange::linear(round_up(n, wgs), wgs), &kernel)
                })?
            };
            ev.wait();
            let commands_s: f64 = ev.launch_reports().iter().map(|r| r.sim_time_s).sum();
            timing.comparer_s += ev
                .launch_reports()
                .iter()
                .map(|r| r.exec_time_s)
                .sum::<f64>();
            for r in ev.launch_reports() {
                profile.record_ref(r);
            }
            timing.transfer_s += (ev.duration_s() - commands_s).max(0.0);
            timing.comparer_launches += 1;

            let mut entry_count = [0u32];
            let ev = self.queue.submit(|h| {
                let acc = h.get_access(&out_count, AccessMode::Read)?;
                h.copy_from_device(&acc, &mut entry_count)
            })?;
            timing.transfer_s += ev.duration_s();
            let m = entry_count[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let mut mm = vec![0u16; m];
            let mut dir = vec![0u8; m];
            let mut pos = vec![0u32; m];
            let ev = self.queue.submit(|h| {
                let mm_acc = h.get_access(&out_mm, AccessMode::Read)?;
                let dir_acc = h.get_access(&out_dir, AccessMode::Read)?;
                let pos_acc = h.get_access(&out_loci, AccessMode::Read)?;
                h.copy_from_device(&mm_acc, &mut mm)?;
                h.copy_from_device(&dir_acc, &mut dir)?;
                h.copy_from_device(&pos_acc, &mut pos)
            })?;
            timing.transfer_s += ev.duration_s();
            *out = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
        }
        Ok(())
    }

    /// Fused comparer stage (see
    /// [`OclChunkRunner::run_comparers_multi`]'s contract): blocks of up to
    /// [`GUIDE_BLOCK`] guides run as single `comparer_multi*` command
    /// groups, and the guide-tagged compacted output is demultiplexed back
    /// into byte-identical per-query entry lists. Uniform-threshold blocks
    /// fold the threshold into a JIT-specialized variant when the runner
    /// specializes.
    #[allow(clippy::too_many_arguments)]
    fn run_comparers_multi(
        &self,
        enc: SyclMultiEnc<'_>,
        loci_buf: &Buffer<u32>,
        flags_buf: &Buffer<u8>,
        n: usize,
        tables: &SyclQueryTables,
        timing: &mut TimingBreakdown,
        profile: &mut gpu_sim::profile::Profile,
        per_query: &mut [QueryEntries],
    ) -> SyclResult<()> {
        let plen = self.pattern.plen();
        let wgs = self.wgs;
        let nq = tables.len();
        let mut start = 0;
        while start < nq {
            let g = (nq - start).min(GUIDE_BLOCK);
            // Concatenate the block's tables host-side: guide `bi` occupies
            // `[fwd | rc]` at offset `bi * 2 * plen`.
            let mut comp = vec![0u8; g * 2 * plen];
            let mut comp_index = vec![0i32; g * 2 * plen];
            let mut thr = vec![0u16; g];
            for bi in 0..g {
                let c = &tables.spec_queries[start + bi];
                comp[bi * 2 * plen..(bi + 1) * 2 * plen].copy_from_slice(c.comp());
                comp_index[bi * 2 * plen..(bi + 1) * 2 * plen].copy_from_slice(c.comp_index());
                thr[bi] = tables.entries[start + bi].2;
            }
            let comp_buf = Buffer::from_vec(comp);
            let comp_index_buf = Buffer::from_vec(comp_index);

            // A block whose guides share one threshold runs the
            // JIT-specialized fused variant when the runner specializes;
            // mixed thresholds stage the per-guide table instead.
            let folded = self.specialize && thr.iter().all(|&t| t == thr[0]);
            let variant = folded.then(|| {
                specialize::global_cache().get_or_compile(
                    VariantKind::MultiComparer,
                    &self.pattern,
                    thr[0],
                )
            });
            let thr_buf = (!folded).then(|| Buffer::from_vec(thr.clone()));

            let out_mm = Buffer::<u16>::uninit(2 * g * n);
            let out_dir = Buffer::<u8>::uninit(2 * g * n);
            let out_loci = Buffer::<u32>::uninit(2 * g * n);
            let out_guide = Buffer::<u16>::uninit(2 * g * n);
            let out_count = Buffer::<u32>::new(1);

            let ev = self.queue.submit(|h| {
                let loci = h.get_access(loci_buf, AccessMode::Read)?;
                let flags = h.get_access(flags_buf, AccessMode::Read)?;
                let comp = h.get_access(&comp_buf, AccessMode::Read)?;
                let comp_index = h.get_access(&comp_index_buf, AccessMode::Read)?;
                let mm = h.get_access(&out_mm, AccessMode::Write)?;
                let dir = h.get_access(&out_dir, AccessMode::Write)?;
                let mloci = h.get_access(&out_loci, AccessMode::Write)?;
                let guide = h.get_access(&out_guide, AccessMode::Write)?;
                let count = h.get_access(&out_count, AccessMode::ReadWrite)?;
                let thresholds = match (&thr_buf, &variant) {
                    (Some(b), _) => GuideThresholds::PerGuide(h.get_access(b, AccessMode::Read)?.raw()),
                    (None, Some(v)) => GuideThresholds::Folded {
                        threshold: thr[0],
                        variant: Arc::clone(v),
                    },
                    (None, None) => unreachable!("thr_buf and variant are complementary"),
                };
                let out = MultiComparerOutput {
                    mm_count: mm.raw(),
                    direction: dir.raw(),
                    loci: mloci.raw(),
                    guide: guide.raw(),
                    count: count.raw(),
                };
                let range = NdRange::linear(round_up(n, wgs), wgs);
                match &enc {
                    SyclMultiEnc::Char(chr_buf) => {
                        let chr = h.get_access(chr_buf, AccessMode::Read)?;
                        let (kernel, _) = MultiComparerKernel::new(
                            chr.raw(),
                            loci.raw(),
                            flags.raw(),
                            comp.raw(),
                            comp_index.raw(),
                            thresholds,
                            n,
                            plen,
                            g,
                            out,
                        );
                        h.parallel_for(range, &kernel)
                    }
                    SyclMultiEnc::TwoBit(packed_buf, mask_buf) => {
                        let packed = h.get_access(packed_buf, AccessMode::Read)?;
                        let mask = h.get_access(mask_buf, AccessMode::Read)?;
                        let (kernel, _) = TwoBitMultiComparerKernel::new(
                            packed.raw(),
                            mask.raw(),
                            loci.raw(),
                            flags.raw(),
                            comp.raw(),
                            comp_index.raw(),
                            thresholds,
                            n,
                            plen,
                            g,
                            out,
                        );
                        h.parallel_for(range, &kernel)
                    }
                    SyclMultiEnc::FourBit(nibble_buf) => {
                        let nibbles = h.get_access(nibble_buf, AccessMode::Read)?;
                        let (kernel, _) = FourBitMultiComparerKernel::new(
                            nibbles.raw(),
                            loci.raw(),
                            flags.raw(),
                            comp.raw(),
                            comp_index.raw(),
                            thresholds,
                            n,
                            plen,
                            g,
                            out,
                        );
                        h.parallel_for(range, &kernel)
                    }
                }
            })?;
            ev.wait();
            let commands_s: f64 = ev.launch_reports().iter().map(|r| r.sim_time_s).sum();
            timing.comparer_s += ev
                .launch_reports()
                .iter()
                .map(|r| r.exec_time_s)
                .sum::<f64>();
            for r in ev.launch_reports() {
                profile.record_ref(r);
            }
            timing.transfer_s += (ev.duration_s() - commands_s).max(0.0);
            timing.comparer_launches += 1;
            timing.fused_launches += 1;

            let mut entry_count = [0u32];
            let ev = self.queue.submit(|h| {
                let acc = h.get_access(&out_count, AccessMode::Read)?;
                h.copy_from_device(&acc, &mut entry_count)
            })?;
            timing.transfer_s += ev.duration_s();
            let m = entry_count[0] as usize;
            timing.entries += m as u64;
            if m > 0 {
                let mut mm = vec![0u16; m];
                let mut dir = vec![0u8; m];
                let mut pos = vec![0u32; m];
                let mut gid = vec![0u16; m];
                let ev = self.queue.submit(|h| {
                    let mm_acc = h.get_access(&out_mm, AccessMode::Read)?;
                    let dir_acc = h.get_access(&out_dir, AccessMode::Read)?;
                    let pos_acc = h.get_access(&out_loci, AccessMode::Read)?;
                    let gid_acc = h.get_access(&out_guide, AccessMode::Read)?;
                    h.copy_from_device(&mm_acc, &mut mm)?;
                    h.copy_from_device(&dir_acc, &mut dir)?;
                    h.copy_from_device(&pos_acc, &mut pos)?;
                    h.copy_from_device(&gid_acc, &mut gid)
                })?;
                timing.transfer_s += ev.duration_s();
                for i in 0..m {
                    per_query[start + gid[i] as usize].push((pos[i], dir[i], mm[i]));
                }
            }
            start += g;
        }
        Ok(())
    }

    /// Upload-only warmup for the raw path: bind `seq`'s buffer to the
    /// device inside a kernel-less command group (charging the implicit
    /// accessor upload) and retain it in the residency list under `token`,
    /// so a later [`run_chunk_resident`](Self::run_chunk_resident) with the
    /// same token rebinds instead of uploading. Returns whether an upload
    /// actually happened (`false` when the token was already resident).
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn prefetch_chunk(&self, token: u64, seq: &[u8]) -> SyclResult<bool> {
        if let Some(buf) = take_resident(&self.raw_res, token) {
            retain_resident(&self.raw_res, token, buf, self.resident_cap);
            return Ok(false);
        }
        let buf = Buffer::from_slice(seq);
        self.queue
            .submit(|h| h.get_access(&buf, AccessMode::Read).map(|_| ()))?;
        retain_resident(&self.raw_res, token, buf, self.resident_cap);
        Ok(true)
    }

    /// Upload-only warmup for the packed path: bind the packed payload's
    /// buffers in a kernel-less command group and retain them under
    /// `token`. Returns whether an upload actually happened.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn prefetch_packed_chunk(&self, token: u64, packed: &PackedSeq) -> SyclResult<bool> {
        if let Some(res) = take_resident(&self.packed_res, token) {
            retain_resident(&self.packed_res, token, res, self.resident_cap);
            return Ok(false);
        }
        let n_exc = packed.exceptions().len();
        let (exc_pos, exc_val) = packed.exception_arrays();
        let res = SyclPackedResident {
            packed_buf: Buffer::from_slice(packed.packed_bytes()),
            mask_buf: Buffer::from_slice(packed.mask_bytes()),
            exc_pos_buf: if n_exc > 0 {
                Buffer::from_vec(exc_pos)
            } else {
                Buffer::from_slice(&[0u32])
            },
            exc_val_buf: if n_exc > 0 {
                Buffer::from_vec(exc_val)
            } else {
                Buffer::from_slice(&[0u8])
            },
        };
        // Bind all four buffers, exactly as the cold run path does, so the
        // prefetch pays the same upload the first run would have paid.
        self.queue.submit(|h| {
            h.get_access(&res.packed_buf, AccessMode::Read)?;
            h.get_access(&res.mask_buf, AccessMode::Read)?;
            h.get_access(&res.exc_pos_buf, AccessMode::Read)?;
            h.get_access(&res.exc_val_buf, AccessMode::Read)?;
            Ok(())
        })?;
        retain_resident(&self.packed_res, token, res, self.resident_cap);
        Ok(true)
    }

    /// Upload-only warmup for the nibble path: bind the nibble words in a
    /// kernel-less command group and retain the buffer under `token`.
    /// Returns whether an upload actually happened.
    ///
    /// # Errors
    ///
    /// Propagates SYCL exceptions.
    pub fn prefetch_nibble_chunk(&self, token: u64, nibble: &NibbleSeq) -> SyclResult<bool> {
        if let Some(buf) = take_resident(&self.nibble_res, token) {
            retain_resident(&self.nibble_res, token, buf, self.resident_cap);
            return Ok(false);
        }
        let buf = Buffer::from_slice(nibble.nibble_bytes());
        self.queue
            .submit(|h| h.get_access(&buf, AccessMode::Read).map(|_| ()))?;
        retain_resident(&self.nibble_res, token, buf, self.resident_cap);
        Ok(true)
    }

    /// Block until every submitted command group completes.
    pub fn wait(&self) {
        self.queue.wait();
    }

    /// Simulated queue time consumed so far, in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.queue.elapsed_s()
    }

    /// Name of the simulated device the runner drives.
    pub fn device_name(&self) -> String {
        self.queue.device().spec().name.to_owned()
    }

    /// Transfer/launch counters of the underlying simulated device.
    pub fn traffic(&self) -> TrafficSnapshot {
        self.queue.device().traffic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::SearchInput;
    use crate::pipeline::entries_to_offtargets;
    use crate::site::sort_canonical;
    use genome::{Assembly, Chromosome, Chunker};
    use gpu_sim::{DeviceSpec, ExecMode};

    fn toy() -> (Assembly, SearchInput) {
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new(
            "chr1",
            b"ACGTACGTAGGTTTACGTACGAAGCCCCCACGTACGTCGG".to_vec(),
        ));
        let input = SearchInput::parse("toy\nNNNNNNNNNRG\nACGTACGTNNN 3\n").unwrap();
        (asm, input)
    }

    fn config() -> PipelineConfig {
        PipelineConfig::new(DeviceSpec::mi100())
            .chunk_size(16)
            .exec_mode(ExecMode::Sequential)
    }

    #[test]
    fn ocl_runner_reproduces_the_serial_pipeline() {
        let (asm, input) = toy();
        let cfg = config();
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let plen = runner.plen();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let mut offtargets = Vec::new();
        for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
            if chunk.seq.len() < plen {
                continue;
            }
            let per_query = runner
                .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            for (query, entries) in input.queries.iter().zip(&per_query) {
                entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
            }
        }
        sort_canonical(&mut offtargets);
        assert_eq!(offtargets, crate::cpu::search_sequential(&asm, &input));
        assert!(timing.finder_launches >= 2);
        tables.release();
        runner.release();
    }

    #[test]
    fn sycl_runner_reproduces_the_serial_pipeline() {
        let (asm, input) = toy();
        let cfg = config();
        let runner = SyclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries);
        let plen = runner.plen();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let mut offtargets = Vec::new();
        for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
            if chunk.seq.len() < plen {
                continue;
            }
            let per_query = runner
                .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            for (query, entries) in input.queries.iter().zip(&per_query) {
                entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
            }
        }
        runner.wait();
        sort_canonical(&mut offtargets);
        assert_eq!(offtargets, crate::cpu::search_sequential(&asm, &input));
    }

    /// The toy assembly plus a chromosome exercising every packed-path
    /// special case: masked N runs, a degenerate base ('R', which the
    /// lossless exception list must preserve — genome R matches pattern N,
    /// unlike N), and ordinary ACGT.
    fn toy_with_ambiguity() -> (Assembly, SearchInput) {
        let (mut asm, input) = toy();
        asm.push(Chromosome::new(
            "chr2",
            b"NNNNACGTACGTAGGTTTACGTACGRAGCCCCCACGTACGTCGGNNNN".to_vec(),
        ));
        (asm, input)
    }

    #[test]
    fn packed_ocl_runner_matches_the_char_path_with_fewer_upload_bytes() {
        let (asm, input) = toy_with_ambiguity();
        let cfg = config();
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let plen = runner.plen();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let (mut char_h2d, mut packed_h2d) = (0u64, 0u64);
        let mut offtargets = Vec::new();
        for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
            if chunk.seq.len() < plen {
                continue;
            }
            let before = runner.traffic().h2d_bytes;
            let plain = runner
                .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            let mid = runner.traffic().h2d_bytes;
            let packed = PackedSeq::encode(chunk.seq);
            let per_query = runner
                .run_packed_chunk(&packed, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            let after = runner.traffic().h2d_bytes;
            assert_eq!(per_query, plain, "packed path must be byte-identical");
            char_h2d += mid - before;
            packed_h2d += after - mid;
            for (query, entries) in input.queries.iter().zip(&per_query) {
                entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
            }
        }
        assert!(
            packed_h2d < char_h2d,
            "packed upload ({packed_h2d} B) must undercut the char upload ({char_h2d} B)"
        );
        sort_canonical(&mut offtargets);
        assert_eq!(offtargets, crate::cpu::search_sequential(&asm, &input));
        tables.release();
        runner.release();
    }

    #[test]
    fn packed_sycl_runner_reproduces_the_serial_pipeline() {
        let (asm, input) = toy_with_ambiguity();
        let cfg = config();
        let runner = SyclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries);
        let plen = runner.plen();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let mut offtargets = Vec::new();
        for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
            if chunk.seq.len() < plen {
                continue;
            }
            let packed = PackedSeq::encode(chunk.seq);
            let per_query = runner
                .run_packed_chunk(&packed, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            for (query, entries) in input.queries.iter().zip(&per_query) {
                entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
            }
        }
        runner.wait();
        sort_canonical(&mut offtargets);
        assert_eq!(offtargets, crate::cpu::search_sequential(&asm, &input));
        assert!(timing.finder_launches >= 2);
    }

    /// A chromosome dense in soft-masked runs and degenerate codes — the
    /// 2-bit encoding would carry an exception for most bases and fall back
    /// to the char comparer, the exact pathology the nibble path removes.
    fn toy_exception_dense() -> (Assembly, SearchInput) {
        let (mut asm, input) = toy();
        asm.push(Chromosome::new(
            "chr2",
            b"nnnnacgtacgtaggtttacgtacgRagccyccacgtwcgtcggnnnn".to_vec(),
        ));
        (asm, input)
    }

    #[test]
    fn nibble_ocl_runner_matches_the_char_path_with_fewer_upload_bytes() {
        let (asm, input) = toy_exception_dense();
        let cfg = config();
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let plen = runner.plen();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let (mut char_h2d, mut nibble_h2d) = (0u64, 0u64);
        let mut offtargets = Vec::new();
        for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
            if chunk.seq.len() < plen {
                continue;
            }
            let before = runner.traffic().h2d_bytes;
            let plain = runner
                .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            let mid = runner.traffic().h2d_bytes;
            let nibble = NibbleSeq::encode(chunk.seq);
            let per_query = runner
                .run_nibble_chunk(&nibble, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            let after = runner.traffic().h2d_bytes;
            assert_eq!(per_query, plain, "nibble path must be byte-identical");
            char_h2d += mid - before;
            nibble_h2d += after - mid;
            for (query, entries) in input.queries.iter().zip(&per_query) {
                entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
            }
        }
        assert!(
            (nibble_h2d as f64) < char_h2d as f64 * 0.55 + 8.0,
            "nibble upload ({nibble_h2d} B) must be about half the char upload ({char_h2d} B)"
        );
        sort_canonical(&mut offtargets);
        assert_eq!(offtargets, crate::cpu::search_sequential(&asm, &input));
        tables.release();
        runner.release();
    }

    #[test]
    fn nibble_sycl_runner_reproduces_the_serial_pipeline() {
        let (asm, input) = toy_exception_dense();
        let cfg = config();
        let runner = SyclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries);
        let plen = runner.plen();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let mut offtargets = Vec::new();
        for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
            if chunk.seq.len() < plen {
                continue;
            }
            let nibble = NibbleSeq::encode(chunk.seq);
            let per_query = runner
                .run_nibble_chunk(&nibble, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            for (query, entries) in input.queries.iter().zip(&per_query) {
                entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
            }
        }
        runner.wait();
        sort_canonical(&mut offtargets);
        assert_eq!(offtargets, crate::cpu::search_sequential(&asm, &input));
        assert!(timing.finder_launches >= 2);
    }

    #[test]
    fn resident_nibble_rerun_skips_the_upload_and_matches() {
        let (asm, input) = toy_exception_dense();
        let cfg = config().chunk_size(64).resident_slots(2);
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let chunk = Chunker::new(&asm, 64, runner.plen()).next().unwrap();
        let nibble = NibbleSeq::encode(chunk.seq);
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();

        let before = runner.traffic();
        let (first, reused) = runner
            .run_nibble_chunk_resident(5, &nibble, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        assert!(!reused, "first run must upload");
        let mid = runner.traffic();
        let (second, reused) = runner
            .run_nibble_chunk_resident(5, &nibble, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        let after = runner.traffic();
        assert!(reused, "same token must hit the resident slot");
        assert_eq!(second, first, "resident rerun must be byte-identical");
        assert!(after.since(&mid).h2d_bytes < mid.since(&before).h2d_bytes);
        assert_eq!(
            after.since(&mid).h2d_skipped_bytes,
            nibble.device_byte_len() as u64,
            "the skipped upload must be accounted"
        );
        tables.release();
        runner.release();
    }

    #[test]
    fn sycl_resident_nibble_rerun_skips_the_upload_and_matches() {
        let (asm, input) = toy_exception_dense();
        let cfg = config().chunk_size(64).resident_slots(2);
        let runner = SyclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries);
        let chunk = Chunker::new(&asm, 64, runner.plen()).next().unwrap();
        let nibble = NibbleSeq::encode(chunk.seq);
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();

        let before = runner.traffic();
        let (first, reused) = runner
            .run_nibble_chunk_resident(4, &nibble, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        assert!(!reused);
        let mid = runner.traffic();
        let (second, reused) = runner
            .run_nibble_chunk_resident(4, &nibble, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        let after = runner.traffic();
        assert!(reused, "retained sycl buffer must rebind without upload");
        assert_eq!(second, first);
        assert!(after.since(&mid).h2d_bytes < mid.since(&before).h2d_bytes);
        assert!(after.since(&mid).h2d_skipped_bytes > 0);
        runner.wait();
    }

    #[test]
    fn twobit_dispatch_tolerates_case_but_not_degenerate_codes() {
        // Lowercase concrete bases and `n` are exceptions only for lossless
        // decode; `base_mask` ignores case, so the 2-bit view is equivalent.
        assert!(twobit_compare_safe(&PackedSeq::encode(b"ACGTNNNNACGT")));
        assert!(twobit_compare_safe(&PackedSeq::encode(b"acgtnACGTNtg")));
        // Genome `R` matches pattern `R`/`D`/`V`, its masked stand-in `N`
        // does not: the chunk must fall back to the char comparer.
        assert!(!twobit_compare_safe(&PackedSeq::encode(b"ACGTRACGTACG")));
    }

    #[test]
    fn packed_path_spends_less_comparer_time_than_the_char_path() {
        // An exception-free chunk takes the comparer_2bit stage, which
        // shares packed bytes across four bases instead of loading one
        // byte per base — less simulated comparer time per launch.
        let seq: Vec<u8> = (0..4096usize).map(|i| b"ACGT"[(i * 7 + 3) % 4]).collect();
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new("chr1", seq));
        let input = SearchInput::parse("toy\nNNNNNNNNNNN\nACGTACGTNNN 8\n").unwrap();
        let cfg = config().chunk_size(4096);
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let plen = runner.plen();
        let chunk = Chunker::new(&asm, cfg.chunk_size, plen).next().unwrap();

        let mut char_t = TimingBreakdown::default();
        let mut packed_t = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let plain = runner
            .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut char_t, &mut profile)
            .unwrap();
        let packed = PackedSeq::encode(chunk.seq);
        assert!(packed.exceptions().is_empty());
        let per_query = runner
            .run_packed_chunk(&packed, chunk.scan_len, &tables, &mut packed_t, &mut profile)
            .unwrap();
        assert_eq!(per_query, plain);
        assert!(char_t.candidates > 0, "the all-N PAM keeps every locus");
        assert!(
            packed_t.comparer_s < char_t.comparer_s,
            "2-bit comparer ({:.3e}s) must beat the char comparer ({:.3e}s)",
            packed_t.comparer_s,
            char_t.comparer_s
        );
        tables.release();
        runner.release();
    }

    #[test]
    fn resident_packed_rerun_skips_the_upload_and_matches() {
        let (asm, input) = toy_with_ambiguity();
        let cfg = config().chunk_size(64).resident_slots(2);
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let chunk = Chunker::new(&asm, 64, runner.plen()).next().unwrap();
        let packed = PackedSeq::encode(chunk.seq);
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();

        let before = runner.traffic();
        let (first, reused) = runner
            .run_packed_chunk_resident(7, &packed, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        assert!(!reused, "first run must upload");
        let mid = runner.traffic();
        let (second, reused) = runner
            .run_packed_chunk_resident(7, &packed, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        let after = runner.traffic();
        assert!(reused, "same token must hit the resident slot");
        assert_eq!(second, first, "resident rerun must be byte-identical");
        let first_h2d = mid.since(&before).h2d_bytes;
        let second_h2d = after.since(&mid).h2d_bytes;
        assert!(
            second_h2d < first_h2d,
            "resident rerun uploaded {second_h2d} B, first run {first_h2d} B"
        );
        assert_eq!(
            after.since(&mid).h2d_skipped_bytes,
            packed.packed_bytes().len() as u64
                + packed.mask_bytes().len() as u64
                + 5 * packed.exceptions().len() as u64,
            "the skipped upload must be accounted"
        );
        tables.release();
        runner.release();
    }

    #[test]
    fn resident_slots_evict_least_recently_used() {
        let (asm, input) = toy_with_ambiguity();
        let cfg = config().chunk_size(16).resident_slots(2);
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let plen = runner.plen();
        let chunks: Vec<_> = Chunker::new(&asm, 16, plen)
            .filter(|c| c.seq.len() >= plen)
            .take(3)
            .collect();
        assert!(chunks.len() == 3, "need three chunks to overflow two slots");
        let packed: Vec<_> = chunks.iter().map(|c| PackedSeq::encode(c.seq)).collect();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let mut run = |tok: u64, i: usize| {
            runner
                .run_packed_chunk_resident(
                    tok,
                    &packed[i],
                    chunks[i].scan_len,
                    &tables,
                    &mut timing,
                    &mut profile,
                )
                .unwrap()
                .1
        };
        assert!(!run(0, 0) && !run(1, 1), "cold slots upload");
        assert!(run(0, 0), "both fit: token 0 still resident");
        assert!(!run(2, 2), "third token claims the LRU slot (token 1)");
        assert!(!run(1, 1), "token 1 was evicted, displacing token 0");
        assert!(run(2, 2), "token 2 remains resident in the other slot");
        assert!(!run(0, 0), "token 0 was displaced by token 1's reload");
        tables.release();
        runner.release();
    }

    #[test]
    fn resident_raw_rerun_skips_and_packed_runs_invalidate_it() {
        let (asm, input) = toy();
        let cfg = config().chunk_size(64).resident_slots(2);
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let chunk = Chunker::new(&asm, 64, runner.plen()).next().unwrap();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();

        let (first, reused) = runner
            .run_chunk_resident(3, chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        assert!(!reused);
        let (second, reused) = runner
            .run_chunk_resident(3, chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        assert!(reused, "raw rerun with the same token must skip the upload");
        assert_eq!(second, first);

        // A packed run decodes over the chr scratch: the raw copy is gone.
        let packed = PackedSeq::encode(chunk.seq);
        runner
            .run_packed_chunk(&packed, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        let (third, reused) = runner
            .run_chunk_resident(3, chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        assert!(!reused, "packed decode must invalidate raw residency");
        assert_eq!(third, first);
        tables.release();
        runner.release();
    }

    #[test]
    fn sycl_resident_rerun_skips_the_upload_and_matches() {
        let (asm, input) = toy_with_ambiguity();
        let cfg = config().chunk_size(64).resident_slots(2);
        let runner = SyclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries);
        let chunk = Chunker::new(&asm, 64, runner.plen()).next().unwrap();
        let packed = PackedSeq::encode(chunk.seq);
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();

        let before = runner.traffic();
        let (first, reused) = runner
            .run_packed_chunk_resident(9, &packed, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        assert!(!reused);
        let mid = runner.traffic();
        let (second, reused) = runner
            .run_packed_chunk_resident(9, &packed, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        let after = runner.traffic();
        assert!(reused, "retained sycl buffers must rebind without upload");
        assert_eq!(second, first);
        assert!(
            after.since(&mid).h2d_bytes < mid.since(&before).h2d_bytes,
            "resident rerun must move fewer bytes"
        );
        assert!(after.since(&mid).h2d_skipped_bytes > 0);

        // Raw residency is independent of the packed list.
        let (raw1, reused) = runner
            .run_chunk_resident(9, chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        assert!(!reused, "raw and packed residency are separate");
        let (raw2, reused) = runner
            .run_chunk_resident(9, chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        assert!(reused);
        assert_eq!(raw2, raw1);
        runner.wait();
    }

    #[test]
    fn coalescing_queries_saves_finder_launches() {
        // k queries on one chunk must cost 1 finder launch, not k.
        let (asm, _) = toy();
        let input = SearchInput::parse(
            "toy\nNNNNNNNNNRG\nACGTACGTNNN 3\nTTTACGTACNN 3\nCCCCCACGTNN 3\n",
        )
        .unwrap();
        let cfg = config().chunk_size(64);
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let chunk = Chunker::new(&asm, 64, runner.plen()).next().unwrap();
        let per_query = runner
            .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
            .unwrap();
        assert_eq!(per_query.len(), 3);
        assert_eq!(timing.finder_launches, 1);
        assert_eq!(timing.comparer_launches, 3);
        let traffic = runner.traffic();
        assert_eq!(traffic.kernel_launches, 4);
        tables.release();
        runner.release();
    }

    #[test]
    #[should_panic(expected = "exceeds runner capacity")]
    fn oversized_chunks_are_rejected() {
        let (_, input) = toy();
        let cfg = config().chunk_size(8);
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let seq = vec![b'A'; 64];
        let _ = runner.run_chunk(&seq, 64, &tables, &mut timing, &mut profile);
    }

    #[test]
    fn specialized_ocl_runner_is_byte_identical_on_every_encoding() {
        let (asm, input) = toy_exception_dense();
        let cfg = config();
        let generic = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let spec = OclChunkRunner::new(&cfg.clone().specialize(true), &input.pattern).unwrap();
        let gt = generic.prepare_queries(&input.queries).unwrap();
        let st = spec.prepare_queries(&input.queries).unwrap();
        let plen = generic.plen();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
            if chunk.seq.len() < plen {
                continue;
            }
            let g = generic
                .run_chunk(chunk.seq, chunk.scan_len, &gt, &mut timing, &mut profile)
                .unwrap();
            let s = spec
                .run_chunk(chunk.seq, chunk.scan_len, &st, &mut timing, &mut profile)
                .unwrap();
            assert_eq!(s, g, "specialized char path must be byte-identical");

            let packed = PackedSeq::encode(chunk.seq);
            let g = generic
                .run_packed_chunk(&packed, chunk.scan_len, &gt, &mut timing, &mut profile)
                .unwrap();
            let s = spec
                .run_packed_chunk(&packed, chunk.scan_len, &st, &mut timing, &mut profile)
                .unwrap();
            assert_eq!(s, g, "specialized 2-bit path must be byte-identical");

            let nibble = NibbleSeq::encode(chunk.seq);
            let g = generic
                .run_nibble_chunk(&nibble, chunk.scan_len, &gt, &mut timing, &mut profile)
                .unwrap();
            let s = spec
                .run_nibble_chunk(&nibble, chunk.scan_len, &st, &mut timing, &mut profile)
                .unwrap();
            assert_eq!(s, g, "specialized nibble path must be byte-identical");
        }
        gt.release();
        st.release();
        generic.release();
        spec.release();
    }

    #[test]
    fn specialized_sycl_runner_reproduces_the_serial_pipeline() {
        let (asm, input) = toy_exception_dense();
        let cfg = config().specialize(true);
        let runner = SyclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries);
        let plen = runner.plen();
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        let mut offtargets = Vec::new();
        for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
            if chunk.seq.len() < plen {
                continue;
            }
            let raw = runner
                .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            let packed = PackedSeq::encode(chunk.seq);
            let on_packed = runner
                .run_packed_chunk(&packed, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            assert_eq!(on_packed, raw, "specialized 2-bit path must match char");
            let nibble = NibbleSeq::encode(chunk.seq);
            let on_nibble = runner
                .run_nibble_chunk(&nibble, chunk.scan_len, &tables, &mut timing, &mut profile)
                .unwrap();
            assert_eq!(on_nibble, raw, "specialized nibble path must match char");
            for (query, entries) in input.queries.iter().zip(&raw) {
                entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
            }
        }
        runner.wait();
        sort_canonical(&mut offtargets);
        assert_eq!(offtargets, crate::cpu::search_sequential(&asm, &input));
    }

    /// A guide library on the toy pattern: `k` distinct 8-base guides plus
    /// the PAM wildcard tail, with uniform or cycling mismatch thresholds.
    fn library_input(k: usize, uniform: bool) -> SearchInput {
        let base = b"ACGTACGTACGTACGTTGCA";
        let mut s = String::from("toy\nNNNNNNNNNRG\n");
        for i in 0..k {
            let guide: String = (0..8)
                .map(|j| base[(i * 3 + j) % base.len()] as char)
                .collect();
            let thr = if uniform { 3 } else { 2 + (i % 2) };
            s.push_str(&format!("{guide}NNN {thr}\n"));
        }
        SearchInput::parse(&s).unwrap()
    }

    /// Fused multi-guide launches must be byte-identical to the serial
    /// per-query path on every encoding, with `ceil(k / GUIDE_BLOCK)`
    /// comparer launches instead of `k` — both generic (mixed thresholds)
    /// and threshold-folded JIT-specialized (uniform) blocks.
    #[test]
    fn fused_multi_guide_ocl_is_byte_identical_on_every_encoding() {
        let (asm, _) = toy_with_ambiguity();
        for (uniform, specialize) in [(false, false), (true, true)] {
            let input = library_input(GUIDE_BLOCK + 3, uniform);
            let cfg = config().specialize(specialize);
            let serial = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
            let fused = OclChunkRunner::new(&cfg.clone().multi_guide(true), &input.pattern).unwrap();
            let st = serial.prepare_queries(&input.queries).unwrap();
            let ft = fused.prepare_queries(&input.queries).unwrap();
            let plen = serial.plen();
            let mut serial_t = TimingBreakdown::default();
            let mut fused_t = TimingBreakdown::default();
            let mut profile = gpu_sim::profile::Profile::new();
            for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
                if chunk.seq.len() < plen {
                    continue;
                }
                let s = serial
                    .run_chunk(chunk.seq, chunk.scan_len, &st, &mut serial_t, &mut profile)
                    .unwrap();
                let f = fused
                    .run_chunk(chunk.seq, chunk.scan_len, &ft, &mut fused_t, &mut profile)
                    .unwrap();
                assert_eq!(f, s, "fused char path must be byte-identical");

                let packed = PackedSeq::encode(chunk.seq);
                let s = serial
                    .run_packed_chunk(&packed, chunk.scan_len, &st, &mut serial_t, &mut profile)
                    .unwrap();
                let f = fused
                    .run_packed_chunk(&packed, chunk.scan_len, &ft, &mut fused_t, &mut profile)
                    .unwrap();
                assert_eq!(f, s, "fused 2-bit path must be byte-identical");

                let nibble = NibbleSeq::encode(chunk.seq);
                let s = serial
                    .run_nibble_chunk(&nibble, chunk.scan_len, &st, &mut serial_t, &mut profile)
                    .unwrap();
                let f = fused
                    .run_nibble_chunk(&nibble, chunk.scan_len, &ft, &mut fused_t, &mut profile)
                    .unwrap();
                assert_eq!(f, s, "fused nibble path must be byte-identical");
            }
            assert_eq!(fused_t.fused_launches, fused_t.comparer_launches);
            assert!(fused_t.fused_launches > 0);
            // 19 guides per chunk run fuse into 2 block launches, not 19.
            assert_eq!(
                fused_t.comparer_launches * (GUIDE_BLOCK + 3),
                serial_t.comparer_launches * 2,
                "fused path must run ceil(k / GUIDE_BLOCK) launches"
            );
            st.release();
            ft.release();
            serial.release();
            fused.release();
        }
    }

    #[test]
    fn fused_multi_guide_sycl_is_byte_identical_on_every_encoding() {
        let (asm, _) = toy_with_ambiguity();
        for (uniform, specialize) in [(false, false), (true, true)] {
            let input = library_input(GUIDE_BLOCK + 3, uniform);
            let cfg = config().specialize(specialize);
            let serial = SyclChunkRunner::new(&cfg, &input.pattern).unwrap();
            let fused =
                SyclChunkRunner::new(&cfg.clone().multi_guide(true), &input.pattern).unwrap();
            let st = serial.prepare_queries(&input.queries);
            let ft = fused.prepare_queries(&input.queries);
            let plen = serial.plen();
            let mut serial_t = TimingBreakdown::default();
            let mut fused_t = TimingBreakdown::default();
            let mut profile = gpu_sim::profile::Profile::new();
            for chunk in Chunker::new(&asm, cfg.chunk_size, plen) {
                if chunk.seq.len() < plen {
                    continue;
                }
                let s = serial
                    .run_chunk(chunk.seq, chunk.scan_len, &st, &mut serial_t, &mut profile)
                    .unwrap();
                let f = fused
                    .run_chunk(chunk.seq, chunk.scan_len, &ft, &mut fused_t, &mut profile)
                    .unwrap();
                assert_eq!(f, s, "fused char path must be byte-identical");

                let packed = PackedSeq::encode(chunk.seq);
                let s = serial
                    .run_packed_chunk(&packed, chunk.scan_len, &st, &mut serial_t, &mut profile)
                    .unwrap();
                let f = fused
                    .run_packed_chunk(&packed, chunk.scan_len, &ft, &mut fused_t, &mut profile)
                    .unwrap();
                assert_eq!(f, s, "fused 2-bit path must be byte-identical");

                let nibble = NibbleSeq::encode(chunk.seq);
                let s = serial
                    .run_nibble_chunk(&nibble, chunk.scan_len, &st, &mut serial_t, &mut profile)
                    .unwrap();
                let f = fused
                    .run_nibble_chunk(&nibble, chunk.scan_len, &ft, &mut fused_t, &mut profile)
                    .unwrap();
                assert_eq!(f, s, "fused nibble path must be byte-identical");
            }
            assert_eq!(fused_t.fused_launches, fused_t.comparer_launches);
            assert!(fused_t.fused_launches > 0);
            assert_eq!(
                fused_t.comparer_launches * (GUIDE_BLOCK + 3),
                serial_t.comparer_launches * 2,
                "fused path must run ceil(k / GUIDE_BLOCK) launches"
            );
            serial.wait();
            fused.wait();
        }
    }

    #[test]
    fn cached_candidates_skip_the_finder_and_match_ocl() {
        let (asm, input) = toy();
        let cfg = config().chunk_size(64).resident_slots(2);
        let runner = OclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let chunk = Chunker::new(&asm, 64, runner.plen()).next().unwrap();
        let mut profile = gpu_sim::profile::Profile::new();

        // Capture the candidate list from a normal run.
        let mut warm_t = TimingBreakdown::default();
        runner.set_capture_candidates(true);
        let baseline = runner
            .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut warm_t, &mut profile)
            .unwrap();
        let sites = runner.take_captured_candidates().unwrap();
        runner.set_capture_candidates(false);
        assert_eq!(sites.len() as u64, warm_t.candidates);
        assert!(!sites.is_empty());

        // Replaying it must skip the finder launch and stay byte-identical.
        let mut cached_t = TimingBreakdown::default();
        let before = runner.traffic();
        let (replay, _) = runner
            .run_chunk_cached_candidates(42, chunk.seq, &sites, &tables, &mut cached_t, &mut profile)
            .unwrap();
        let mid = runner.traffic();
        assert_eq!(replay, baseline);
        assert_eq!(cached_t.finder_launches, 0);
        assert_eq!(cached_t.finder_launches_skipped, 1);
        assert_eq!(cached_t.candidates, warm_t.candidates);
        assert_eq!(mid.since(&before).kernel_launches_skipped, 1);

        // A same-token replay also skips the candidate re-upload.
        let (again, reused) = runner
            .run_chunk_cached_candidates(42, chunk.seq, &sites, &tables, &mut cached_t, &mut profile)
            .unwrap();
        let after = runner.traffic();
        assert!(reused, "chr stays resident under the token");
        assert_eq!(again, baseline);
        assert!(after.since(&mid).h2d_skipped_bytes >= sites.byte_len() as u64);

        // The 2-bit and nibble cached entry points match too.
        let packed = PackedSeq::encode(chunk.seq);
        assert!(twobit_compare_safe(&packed));
        let (on_packed, _) = runner
            .run_packed_chunk_cached_candidates(
                43, &packed, &sites, &tables, &mut cached_t, &mut profile,
            )
            .unwrap();
        assert_eq!(on_packed, baseline);
        let nibble = NibbleSeq::encode(chunk.seq);
        let (on_nibble, _) = runner
            .run_nibble_chunk_cached_candidates(
                44, &nibble, &sites, &tables, &mut cached_t, &mut profile,
            )
            .unwrap();
        assert_eq!(on_nibble, baseline);
        tables.release();
        runner.release();
    }

    #[test]
    fn cached_candidates_skip_the_finder_and_match_sycl() {
        let (asm, input) = toy();
        let cfg = config().chunk_size(64).resident_slots(2);
        let runner = SyclChunkRunner::new(&cfg, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries);
        let chunk = Chunker::new(&asm, 64, runner.plen()).next().unwrap();
        let mut profile = gpu_sim::profile::Profile::new();

        let mut warm_t = TimingBreakdown::default();
        runner.set_capture_candidates(true);
        let baseline = runner
            .run_chunk(chunk.seq, chunk.scan_len, &tables, &mut warm_t, &mut profile)
            .unwrap();
        let sites = runner.take_captured_candidates().unwrap();
        runner.set_capture_candidates(false);
        assert_eq!(sites.len() as u64, warm_t.candidates);
        assert!(!sites.is_empty());

        let mut cached_t = TimingBreakdown::default();
        let before = runner.traffic();
        let (replay, _) = runner
            .run_chunk_cached_candidates(42, chunk.seq, &sites, &tables, &mut cached_t, &mut profile)
            .unwrap();
        let mid = runner.traffic();
        assert_eq!(replay, baseline);
        assert_eq!(cached_t.finder_launches, 0);
        assert_eq!(cached_t.finder_launches_skipped, 1);
        assert_eq!(mid.since(&before).kernel_launches_skipped, 1);

        let (again, reused) = runner
            .run_chunk_cached_candidates(42, chunk.seq, &sites, &tables, &mut cached_t, &mut profile)
            .unwrap();
        let after = runner.traffic();
        assert!(reused);
        assert_eq!(again, baseline);
        assert!(after.since(&mid).h2d_skipped_bytes >= sites.byte_len() as u64);

        let packed = PackedSeq::encode(chunk.seq);
        assert!(twobit_compare_safe(&packed));
        let (on_packed, _) = runner
            .run_packed_chunk_cached_candidates(
                43, &packed, &sites, &tables, &mut cached_t, &mut profile,
            )
            .unwrap();
        assert_eq!(on_packed, baseline);
        let nibble = NibbleSeq::encode(chunk.seq);
        let (on_nibble, _) = runner
            .run_nibble_chunk_cached_candidates(
                44, &nibble, &sites, &tables, &mut cached_t, &mut profile,
            )
            .unwrap();
        assert_eq!(on_nibble, baseline);
        runner.wait();
    }
}
