//! The OpenCL host application: the original Cas-OFFinder, driven through
//! the thirteen programming steps of Table I.

use std::sync::Arc;

use genome::{Assembly, Chunker};
use opencl_rt::{
    ClBuffer, ClDeviceId, ClResult, CommandQueue, Context, KernelArg, KernelSource, MemFlags,
    Program, StepLog,
};

use crate::input::SearchInput;
use crate::kernels::cl::{ClComparer, ClFinder};
use crate::pattern::CompiledSeq;
use crate::report::{Api, SearchReport, TimingBreakdown};
use crate::site::sort_canonical;

use super::{entries_to_offtargets, round_up, PipelineConfig};

/// Run the OpenCL application over `assembly` with `input`.
///
/// Returns the off-target records plus the simulated timing breakdown; the
/// elapsed time excludes environment setup and input parsing, matching the
/// paper's measurement protocol (§IV.A).
///
/// # Errors
///
/// Propagates OpenCL-level failures (allocation, argument binding, launch).
pub fn run(
    assembly: &Assembly,
    input: &SearchInput,
    config: &PipelineConfig,
) -> ClResult<SearchReport> {
    let wall_start = std::time::Instant::now();

    // Steps 1-4: platform/device/context/queue.
    let device_id = ClDeviceId::from_spec(config.device.clone());
    let ctx = Context::with_mode(&[device_id], config.exec)?;
    let queue = CommandQueue::new(&ctx, 0)?;

    // Steps 6-8: program and kernels.
    let source = KernelSource::new()
        .with_function(Arc::new(ClFinder))
        .with_function(Arc::new(ClComparer::new(config.opt)));
    let program = Program::create_with_source(&ctx, source);
    program.build("-O3")?;
    let finder = program.create_kernel("finder")?;
    let comparer = program.create_kernel("comparer")?;

    let pattern = CompiledSeq::compile(&input.pattern);
    let plen = pattern.plen();
    let queries: Vec<CompiledSeq> = input
        .queries
        .iter()
        .map(|q| CompiledSeq::compile(&q.seq))
        .collect();
    let cap = config.chunk_size;

    // Step 5: memory objects, allocated once and reused across chunks.
    let chr = ClBuffer::<u8>::create(&ctx, MemFlags::ReadOnly, cap + plen)?;
    let pat = ClBuffer::create_with_data(&ctx, MemFlags::Constant, pattern.comp())?;
    let pat_index = ClBuffer::create_with_data(&ctx, MemFlags::Constant, pattern.comp_index())?;
    let loci = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, cap)?;
    let flags = ClBuffer::<u8>::create(&ctx, MemFlags::ReadWrite, cap)?;
    let fcount = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, 1)?;
    let mm_count = ClBuffer::<u16>::create(&ctx, MemFlags::WriteOnly, 2 * cap)?;
    let direction = ClBuffer::<u8>::create(&ctx, MemFlags::WriteOnly, 2 * cap)?;
    let mm_loci = ClBuffer::<u32>::create(&ctx, MemFlags::WriteOnly, 2 * cap)?;
    let ecount = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, 1)?;

    // The comparer's tables are plain global buffers (Listing 1 takes
    // `const char* comp`, not `__constant`).
    let query_bufs: Vec<(ClBuffer<u8>, ClBuffer<i32>)> = queries
        .iter()
        .map(|c| {
            Ok((
                ClBuffer::create_with_data(&ctx, MemFlags::ReadOnly, c.comp())?,
                ClBuffer::create_with_data(&ctx, MemFlags::ReadOnly, c.comp_index())?,
            ))
        })
        .collect::<ClResult<_>>()?;

    let lws = config.work_group_size;
    let rounding = lws.unwrap_or(64);
    let mut timing = TimingBreakdown::default();
    let mut offtargets = Vec::new();
    let mut profile = gpu_sim::profile::Profile::new();

    for chunk in Chunker::new(assembly, cap, plen) {
        if chunk.seq.len() < plen {
            continue;
        }
        // Step 11 (host->device): upload the chunk, reset the counter.
        let w1 = queue.enqueue_write_buffer(&chr, true, 0, chunk.seq)?;
        let w2 = queue.enqueue_fill_buffer(&fcount, 0u32)?;
        timing.transfer_s += w1.duration_s() + w2.duration_s();

        // Step 9: finder arguments.
        finder.set_arg(0, KernelArg::BufU8(chr.device_buffer()))?;
        finder.set_arg(1, KernelArg::BufU8(pat.device_buffer()))?;
        finder.set_arg(2, KernelArg::BufI32(pat_index.device_buffer()))?;
        finder.set_arg(3, KernelArg::BufU32(loci.device_buffer()))?;
        finder.set_arg(4, KernelArg::BufU8(flags.device_buffer()))?;
        finder.set_arg(5, KernelArg::BufU32(fcount.device_buffer()))?;
        finder.set_arg(6, KernelArg::U32(chunk.scan_len as u32))?;
        finder.set_arg(7, KernelArg::U32(chunk.seq.len() as u32))?;
        finder.set_arg(8, KernelArg::U32(plen as u32))?;
        finder.set_arg(9, KernelArg::Local { bytes: 2 * plen })?;
        finder.set_arg(10, KernelArg::Local { bytes: 8 * plen })?;

        // Step 10: enqueue the finder.
        let gws = round_up(chunk.scan_len, rounding);
        let ev = queue.enqueue_nd_range_kernel(&finder, gws, lws)?;
        ev.wait(); // step 12
        timing.finder_s += ev
            .launch_report()
            .map(|r| r.exec_time_s)
            .unwrap_or_else(|| ev.duration_s());
        if let Some(r) = ev.launch_report() {
            profile.record_ref(r);
        }
        timing.finder_launches += 1;

        let mut n = [0u32];
        let r = queue.enqueue_read_buffer(&fcount, true, 0, &mut n)?;
        timing.transfer_s += r.duration_s();
        let n = n[0] as usize;
        timing.candidates += n as u64;
        if n == 0 {
            continue;
        }

        for (query, (comp, comp_index)) in input.queries.iter().zip(&query_bufs) {
            let wz = queue.enqueue_fill_buffer(&ecount, 0u32)?;
            timing.transfer_s += wz.duration_s();

            comparer.set_arg(0, KernelArg::BufU8(chr.device_buffer()))?;
            comparer.set_arg(1, KernelArg::BufU32(loci.device_buffer()))?;
            comparer.set_arg(2, KernelArg::BufU8(flags.device_buffer()))?;
            comparer.set_arg(3, KernelArg::BufU8(comp.device_buffer()))?;
            comparer.set_arg(4, KernelArg::BufI32(comp_index.device_buffer()))?;
            comparer.set_arg(5, KernelArg::U32(n as u32))?;
            comparer.set_arg(6, KernelArg::U32(plen as u32))?;
            comparer.set_arg(7, KernelArg::U16(query.max_mismatches))?;
            comparer.set_arg(8, KernelArg::BufU16(mm_count.device_buffer()))?;
            comparer.set_arg(9, KernelArg::BufU8(direction.device_buffer()))?;
            comparer.set_arg(10, KernelArg::BufU32(mm_loci.device_buffer()))?;
            comparer.set_arg(11, KernelArg::BufU32(ecount.device_buffer()))?;
            comparer.set_arg(12, KernelArg::Local { bytes: 2 * plen })?;
            comparer.set_arg(13, KernelArg::Local { bytes: 8 * plen })?;

            let gws = round_up(n, rounding);
            let ev = queue.enqueue_nd_range_kernel(&comparer, gws, lws)?;
            ev.wait();
            timing.comparer_s += ev
                .launch_report()
                .map(|r| r.exec_time_s)
                .unwrap_or_else(|| ev.duration_s());
            if let Some(r) = ev.launch_report() {
                profile.record_ref(r);
            }
            timing.comparer_launches += 1;

            // Step 11 (device->host): read back the surviving entries.
            let mut m = [0u32];
            let r = queue.enqueue_read_buffer(&ecount, true, 0, &mut m)?;
            timing.transfer_s += r.duration_s();
            let m = m[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let mut mm = vec![0u16; m];
            let mut dir = vec![0u8; m];
            let mut pos = vec![0u32; m];
            let r1 = queue.enqueue_read_buffer(&mm_count, true, 0, &mut mm)?;
            let r2 = queue.enqueue_read_buffer(&direction, true, 0, &mut dir)?;
            let r3 = queue.enqueue_read_buffer(&mm_loci, true, 0, &mut pos)?;
            timing.transfer_s += r1.duration_s() + r2.duration_s() + r3.duration_s();

            let entries: Vec<(u32, u8, u16)> = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
            entries_to_offtargets(&chunk, &query.seq, plen, &entries, &mut offtargets);
        }
    }
    queue.finish();

    // Step 13: explicit release.
    let device_name = queue.device().spec().name.to_owned();
    timing.elapsed_s = queue.elapsed_s();
    timing.wall = wall_start.elapsed();
    for (c, ci) in query_bufs {
        c.release();
        ci.release();
    }
    finder.release();
    comparer.release();
    chr.release();
    pat.release();
    pat_index.release();
    loci.release();
    flags.release();
    fcount.release();
    mm_count.release();
    direction.release();
    mm_loci.release();
    ecount.release();
    program.release();
    queue.release();

    sort_canonical(&mut offtargets);
    Ok(SearchReport {
        api: Api::OpenCl,
        device: device_name,
        offtargets,
        timing,
        profile,
    })
}

/// The step log of a completed context — exposed for the Table I
/// experiment, which checks that the OpenCL application exercises all
/// thirteen steps.
pub fn step_log_of(assembly: &Assembly, input: &SearchInput, config: &PipelineConfig) -> ClResult<StepLog> {
    let device_id = ClDeviceId::from_spec(config.device.clone());
    let ctx = Context::with_mode(&[device_id], config.exec)?;
    run_with_context(assembly, input, config, &ctx)?;
    Ok(ctx.step_log().clone())
}

// A small internal duplicate of `run` that reuses an existing context so the
// caller can inspect its step log. Kept minimal: it runs a single chunk.
fn run_with_context(
    assembly: &Assembly,
    input: &SearchInput,
    config: &PipelineConfig,
    ctx: &Context,
) -> ClResult<()> {
    let queue = CommandQueue::new(ctx, 0)?;
    let source = KernelSource::new()
        .with_function(Arc::new(ClFinder))
        .with_function(Arc::new(ClComparer::new(config.opt)));
    let program = Program::create_with_source(ctx, source);
    program.build("-O3")?;
    let finder = program.create_kernel("finder")?;
    let pattern = CompiledSeq::compile(&input.pattern);
    let plen = pattern.plen();

    if let Some(chunk) = Chunker::new(assembly, config.chunk_size, plen).next() {
        let chr = ClBuffer::<u8>::create(ctx, MemFlags::ReadOnly, chunk.seq.len())?;
        let pat = ClBuffer::create_with_data(ctx, MemFlags::Constant, pattern.comp())?;
        let pat_index = ClBuffer::create_with_data(ctx, MemFlags::Constant, pattern.comp_index())?;
        let loci = ClBuffer::<u32>::create(ctx, MemFlags::ReadWrite, chunk.scan_len)?;
        let flags = ClBuffer::<u8>::create(ctx, MemFlags::ReadWrite, chunk.scan_len)?;
        let fcount = ClBuffer::<u32>::create(ctx, MemFlags::ReadWrite, 1)?;
        queue.enqueue_write_buffer(&chr, true, 0, chunk.seq)?;
        finder.set_arg(0, KernelArg::BufU8(chr.device_buffer()))?;
        finder.set_arg(1, KernelArg::BufU8(pat.device_buffer()))?;
        finder.set_arg(2, KernelArg::BufI32(pat_index.device_buffer()))?;
        finder.set_arg(3, KernelArg::BufU32(loci.device_buffer()))?;
        finder.set_arg(4, KernelArg::BufU8(flags.device_buffer()))?;
        finder.set_arg(5, KernelArg::BufU32(fcount.device_buffer()))?;
        finder.set_arg(6, KernelArg::U32(chunk.scan_len as u32))?;
        finder.set_arg(7, KernelArg::U32(chunk.seq.len() as u32))?;
        finder.set_arg(8, KernelArg::U32(plen as u32))?;
        finder.set_arg(9, KernelArg::Local { bytes: 2 * plen })?;
        finder.set_arg(10, KernelArg::Local { bytes: 8 * plen })?;
        let ev =
            queue.enqueue_nd_range_kernel(&finder, round_up(chunk.scan_len, 64), None)?;
        ev.wait();
        let mut n = [0u32];
        queue.enqueue_read_buffer(&fcount, true, 0, &mut n)?;
        chr.release();
        pat.release();
        pat_index.release();
        loci.release();
        flags.release();
        fcount.release();
    }
    finder.release();
    program.release();
    queue.release();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::Chromosome;
    use gpu_sim::{DeviceSpec, ExecMode};

    fn toy() -> (Assembly, SearchInput) {
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new(
            "chr1",
            b"ACGTACGTAGGTTTACGTACGAAGCCCCCACGTACGTCGG".to_vec(),
        ));
        let input = SearchInput::parse("toy\nNNNNNNNNNRG\nACGTACGTNNN 3\n").unwrap();
        (asm, input)
    }

    fn config() -> PipelineConfig {
        PipelineConfig::new(DeviceSpec::mi100())
            .chunk_size(16)
            .exec_mode(ExecMode::Sequential)
    }

    #[test]
    fn matches_the_cpu_oracle_across_chunk_boundaries() {
        let (asm, input) = toy();
        let report = run(&asm, &input, &config()).unwrap();
        let oracle = crate::cpu::search_sequential(&asm, &input);
        assert_eq!(report.offtargets, oracle);
        assert!(!oracle.is_empty(), "fixture must produce hits");
        assert!(report.timing.finder_launches >= 2, "chunking exercised");
    }

    #[test]
    fn timing_is_accounted() {
        let (asm, input) = toy();
        let report = run(&asm, &input, &config()).unwrap();
        let t = &report.timing;
        assert!(t.elapsed_s > 0.0);
        assert!(t.transfer_s > 0.0);
        assert!(t.finder_s > 0.0);
        assert!(t.comparer_s > 0.0);
        assert!(t.kernel_s() + t.transfer_s <= t.elapsed_s + 1e-9);
        assert_eq!(report.api, Api::OpenCl);
        assert_eq!(report.device, "MI100");
        assert!(t.candidates >= t.entries / 2);
    }

    #[test]
    fn all_thirteen_steps_are_exercised() {
        let (asm, input) = toy();
        let log = step_log_of(&asm, &input, &config()).unwrap();
        let mut steps = log.steps();
        steps.sort();
        let mut all = opencl_rt::steps::ALL_STEPS.to_vec();
        all.sort();
        assert_eq!(steps, all);
    }

    #[test]
    fn every_opt_level_agrees_with_the_oracle() {
        let (asm, input) = toy();
        let oracle = crate::cpu::search_sequential(&asm, &input);
        for opt in crate::kernels::OptLevel::ALL {
            let report = run(&asm, &input, &config().opt(opt)).unwrap();
            assert_eq!(report.offtargets, oracle, "opt level {opt}");
        }
    }
}
