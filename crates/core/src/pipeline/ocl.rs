//! The OpenCL host application: the original Cas-OFFinder, driven through
//! the thirteen programming steps of Table I.

use std::sync::Arc;

use genome::{Assembly, Chunker};
use opencl_rt::{
    ClBuffer, ClDeviceId, ClResult, CommandQueue, Context, KernelArg, KernelSource, MemFlags,
    Program, StepLog,
};

use crate::input::SearchInput;
use crate::kernels::cl::{ClComparer, ClFinder};
use crate::pattern::CompiledSeq;
use crate::report::{Api, SearchReport, TimingBreakdown};
use crate::site::sort_canonical;

use super::chunk::OclChunkRunner;
use super::{entries_to_offtargets, round_up, PipelineConfig};

/// Run the OpenCL application over `assembly` with `input`.
///
/// Returns the off-target records plus the simulated timing breakdown; the
/// elapsed time excludes environment setup and input parsing, matching the
/// paper's measurement protocol (§IV.A).
///
/// # Errors
///
/// Propagates OpenCL-level failures (allocation, argument binding, launch).
pub fn run(
    assembly: &Assembly,
    input: &SearchInput,
    config: &PipelineConfig,
) -> ClResult<SearchReport> {
    let wall_start = std::time::Instant::now();

    // Steps 1-8 plus the step-5 scratch allocations live in the runner;
    // the comparer's query tables are plain global buffers (Listing 1
    // takes `const char* comp`, not `__constant`).
    let runner = OclChunkRunner::new(config, &input.pattern)?;
    let tables = runner.prepare_queries(&input.queries)?;
    let plen = runner.plen();

    let mut timing = TimingBreakdown::default();
    let mut offtargets = Vec::new();
    let mut profile = gpu_sim::profile::Profile::new();

    for chunk in Chunker::new(assembly, config.chunk_size, plen) {
        if chunk.seq.len() < plen {
            continue;
        }
        // Steps 9-12, once per chunk: upload, finder, comparer per query,
        // read back the surviving entries.
        let per_query =
            runner.run_chunk(chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)?;
        for (query, entries) in input.queries.iter().zip(&per_query) {
            entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
        }
    }
    runner.finish();

    // Step 13: explicit release.
    let device_name = runner.device_name();
    timing.elapsed_s = runner.elapsed_s();
    timing.wall = wall_start.elapsed();
    tables.release();
    runner.release();

    sort_canonical(&mut offtargets);
    Ok(SearchReport {
        api: Api::OpenCl,
        device: device_name,
        offtargets,
        timing,
        profile,
    })
}

/// The step log of a completed context — exposed for the Table I
/// experiment, which checks that the OpenCL application exercises all
/// thirteen steps.
pub fn step_log_of(assembly: &Assembly, input: &SearchInput, config: &PipelineConfig) -> ClResult<StepLog> {
    let device_id = ClDeviceId::from_spec(config.device.clone());
    let ctx = Context::with_mode(&[device_id], config.exec)?;
    run_with_context(assembly, input, config, &ctx)?;
    Ok(ctx.step_log().clone())
}

// A small internal duplicate of `run` that reuses an existing context so the
// caller can inspect its step log. Kept minimal: it runs a single chunk.
fn run_with_context(
    assembly: &Assembly,
    input: &SearchInput,
    config: &PipelineConfig,
    ctx: &Context,
) -> ClResult<()> {
    let queue = CommandQueue::new(ctx, 0)?;
    let source = KernelSource::new()
        .with_function(Arc::new(ClFinder))
        .with_function(Arc::new(ClComparer::new(config.opt)));
    let program = Program::create_with_source(ctx, source);
    program.build("-O3")?;
    let finder = program.create_kernel("finder")?;
    let pattern = CompiledSeq::compile(&input.pattern);
    let plen = pattern.plen();

    if let Some(chunk) = Chunker::new(assembly, config.chunk_size, plen).next() {
        let chr = ClBuffer::<u8>::create(ctx, MemFlags::ReadOnly, chunk.seq.len())?;
        let pat = ClBuffer::create_with_data(ctx, MemFlags::Constant, pattern.comp())?;
        let pat_index = ClBuffer::create_with_data(ctx, MemFlags::Constant, pattern.comp_index())?;
        let loci = ClBuffer::<u32>::create(ctx, MemFlags::ReadWrite, chunk.scan_len)?;
        let flags = ClBuffer::<u8>::create(ctx, MemFlags::ReadWrite, chunk.scan_len)?;
        let fcount = ClBuffer::<u32>::create(ctx, MemFlags::ReadWrite, 1)?;
        queue.enqueue_write_buffer(&chr, true, 0, chunk.seq)?;
        finder.set_arg(0, KernelArg::BufU8(chr.device_buffer()))?;
        finder.set_arg(1, KernelArg::BufU8(pat.device_buffer()))?;
        finder.set_arg(2, KernelArg::BufI32(pat_index.device_buffer()))?;
        finder.set_arg(3, KernelArg::BufU32(loci.device_buffer()))?;
        finder.set_arg(4, KernelArg::BufU8(flags.device_buffer()))?;
        finder.set_arg(5, KernelArg::BufU32(fcount.device_buffer()))?;
        finder.set_arg(6, KernelArg::U32(chunk.scan_len as u32))?;
        finder.set_arg(7, KernelArg::U32(chunk.seq.len() as u32))?;
        finder.set_arg(8, KernelArg::U32(plen as u32))?;
        finder.set_arg(9, KernelArg::Local { bytes: 2 * plen })?;
        finder.set_arg(10, KernelArg::Local { bytes: 8 * plen })?;
        let ev =
            queue.enqueue_nd_range_kernel(&finder, round_up(chunk.scan_len, 64), None)?;
        ev.wait();
        let mut n = [0u32];
        queue.enqueue_read_buffer(&fcount, true, 0, &mut n)?;
        chr.release();
        pat.release();
        pat_index.release();
        loci.release();
        flags.release();
        fcount.release();
    }
    finder.release();
    program.release();
    queue.release();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::Chromosome;
    use gpu_sim::{DeviceSpec, ExecMode};

    fn toy() -> (Assembly, SearchInput) {
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new(
            "chr1",
            b"ACGTACGTAGGTTTACGTACGAAGCCCCCACGTACGTCGG".to_vec(),
        ));
        let input = SearchInput::parse("toy\nNNNNNNNNNRG\nACGTACGTNNN 3\n").unwrap();
        (asm, input)
    }

    fn config() -> PipelineConfig {
        PipelineConfig::new(DeviceSpec::mi100())
            .chunk_size(16)
            .exec_mode(ExecMode::Sequential)
    }

    #[test]
    fn matches_the_cpu_oracle_across_chunk_boundaries() {
        let (asm, input) = toy();
        let report = run(&asm, &input, &config()).unwrap();
        let oracle = crate::cpu::search_sequential(&asm, &input);
        assert_eq!(report.offtargets, oracle);
        assert!(!oracle.is_empty(), "fixture must produce hits");
        assert!(report.timing.finder_launches >= 2, "chunking exercised");
    }

    #[test]
    fn timing_is_accounted() {
        let (asm, input) = toy();
        let report = run(&asm, &input, &config()).unwrap();
        let t = &report.timing;
        assert!(t.elapsed_s > 0.0);
        assert!(t.transfer_s > 0.0);
        assert!(t.finder_s > 0.0);
        assert!(t.comparer_s > 0.0);
        assert!(t.kernel_s() + t.transfer_s <= t.elapsed_s + 1e-9);
        assert_eq!(report.api, Api::OpenCl);
        assert_eq!(report.device, "MI100");
        assert!(t.candidates >= t.entries / 2);
    }

    #[test]
    fn all_thirteen_steps_are_exercised() {
        let (asm, input) = toy();
        let log = step_log_of(&asm, &input, &config()).unwrap();
        let mut steps = log.steps();
        steps.sort();
        let mut all = opencl_rt::steps::ALL_STEPS.to_vec();
        all.sort();
        assert_eq!(steps, all);
    }

    #[test]
    fn every_opt_level_agrees_with_the_oracle() {
        let (asm, input) = toy();
        let oracle = crate::cpu::search_sequential(&asm, &input);
        for opt in crate::kernels::OptLevel::ALL {
            let report = run(&asm, &input, &config().opt(opt)).unwrap();
            assert_eq!(report.offtargets, oracle, "opt level {opt}");
        }
    }
}
