//! The 2-bit packed-genome pipeline — the Cas-OFFinder authors' follow-up
//! optimization (related work \[21\] of the paper: "a 2-bit sequence format,
//! shared local memory and atomic operations").
//!
//! The finder still scans the plain byte chunk (its reads are coalesced and
//! cheap either way), but the comparer's scattered reference reads go to
//! the packed representation: four bases per byte plus an ambiguity
//! bitmask, roughly quartering the comparer's global-memory traffic.

use genome::twobit::TwoBitSeq;
use genome::{Assembly, Chunker};
use gpu_sim::kernel::LocalLayout;
use gpu_sim::NdRange;
use sycl_rt::{AccessMode, Buffer, Queue, SpecSelector, SyclResult};

use crate::input::SearchInput;
use crate::kernels::{ComparerOutput, FinderKernel, FinderOutput, TwoBitComparerKernel};
use crate::pattern::CompiledSeq;
use crate::report::{Api, SearchReport, TimingBreakdown};
use crate::site::sort_canonical;

use super::{entries_to_offtargets, round_up, PipelineConfig};

/// Run the SYCL application with the 2-bit comparer.
///
/// # Errors
///
/// Propagates SYCL exceptions.
pub fn run(
    assembly: &Assembly,
    input: &SearchInput,
    config: &PipelineConfig,
) -> SyclResult<SearchReport> {
    let wall_start = std::time::Instant::now();
    let wgs = config
        .work_group_size
        .unwrap_or(super::sycl::SYCL_WORK_GROUP_SIZE);

    let queue = Queue::with_mode(&SpecSelector(config.device.clone()), config.exec)?;

    let pattern = CompiledSeq::compile(&input.pattern);
    let plen = pattern.plen();
    let queries: Vec<CompiledSeq> = input
        .queries
        .iter()
        .map(|q| CompiledSeq::compile(&q.seq))
        .collect();

    let pat_buf = Buffer::from_slice(pattern.comp()).constant();
    let pat_index_buf = Buffer::from_slice(pattern.comp_index()).constant();
    let query_bufs: Vec<(Buffer<u8>, Buffer<i32>)> = queries
        .iter()
        .map(|c| {
            (
                Buffer::from_slice(c.comp()),
                Buffer::from_slice(c.comp_index()),
            )
        })
        .collect();

    let mut timing = TimingBreakdown::default();
    let mut offtargets = Vec::new();
    let mut profile = gpu_sim::profile::Profile::new();

    for chunk in Chunker::new(assembly, config.chunk_size, plen) {
        if chunk.seq.len() < plen {
            continue;
        }
        let packed_seq = TwoBitSeq::encode(chunk.seq);
        let chr_buf = Buffer::from_slice(chunk.seq);
        let packed_buf = Buffer::from_slice(packed_seq.packed_bytes());
        let mask_buf = Buffer::from_slice(packed_seq.mask_bytes());
        let loci_buf = Buffer::<u32>::new(chunk.scan_len);
        let flags_buf = Buffer::<u8>::new(chunk.scan_len);
        let fcount_buf = Buffer::<u32>::new(1);

        let ev = queue.submit(|h| {
            let chr = h.get_access(&chr_buf, AccessMode::Read)?;
            let pat = h.get_access(&pat_buf, AccessMode::Read)?;
            let pat_index = h.get_access(&pat_index_buf, AccessMode::Read)?;
            let loci = h.get_access(&loci_buf, AccessMode::Write)?;
            let flags = h.get_access(&flags_buf, AccessMode::Write)?;
            let fcount = h.get_access(&fcount_buf, AccessMode::ReadWrite)?;
            let mut layout = LocalLayout::new();
            let l_pat = layout.array::<u8>(2 * plen);
            let l_pat_index = layout.array::<i32>(2 * plen);
            let kernel = FinderKernel {
                chr: chr.raw(),
                pat: pat.raw(),
                pat_index: pat_index.raw(),
                out: FinderOutput {
                    loci: loci.raw(),
                    flags: flags.raw(),
                    count: fcount.raw(),
                },
                scan_len: chunk.scan_len as u32,
                seq_len: chunk.seq.len() as u32,
                plen: plen as u32,
                l_pat,
                l_pat_index,
            };
            h.parallel_for(NdRange::linear(round_up(chunk.scan_len, wgs), wgs), &kernel)
        })?;
        timing.finder_s += ev.launch_reports().iter().map(|r| r.exec_time_s).sum::<f64>();
        for r in ev.launch_reports() {
            profile.record_ref(r);
        }
        timing.finder_launches += 1;

        let n = fcount_buf.to_vec()[0] as usize;
        timing.candidates += n as u64;
        if n == 0 {
            continue;
        }

        for (query, (comp_buf, comp_index_buf)) in input.queries.iter().zip(&query_bufs) {
            let out_mm = Buffer::<u16>::new(2 * n);
            let out_dir = Buffer::<u8>::new(2 * n);
            let out_loci = Buffer::<u32>::new(2 * n);
            let out_count = Buffer::<u32>::new(1);

            let ev = queue.submit(|h| {
                let packed = h.get_access(&packed_buf, AccessMode::Read)?;
                let mask = h.get_access(&mask_buf, AccessMode::Read)?;
                let loci = h.get_access(&loci_buf, AccessMode::Read)?;
                let flags = h.get_access(&flags_buf, AccessMode::Read)?;
                let comp = h.get_access(comp_buf, AccessMode::Read)?;
                let comp_index = h.get_access(comp_index_buf, AccessMode::Read)?;
                let mm = h.get_access(&out_mm, AccessMode::Write)?;
                let dir = h.get_access(&out_dir, AccessMode::Write)?;
                let mloci = h.get_access(&out_loci, AccessMode::Write)?;
                let count = h.get_access(&out_count, AccessMode::ReadWrite)?;
                let mut layout = LocalLayout::new();
                let l_comp = layout.array::<u8>(2 * plen);
                let l_comp_index = layout.array::<i32>(2 * plen);
                let kernel = TwoBitComparerKernel {
                    packed: packed.raw(),
                    mask: mask.raw(),
                    loci: loci.raw(),
                    flags: flags.raw(),
                    comp: comp.raw(),
                    comp_index: comp_index.raw(),
                    locicnt: n as u32,
                    plen: plen as u32,
                    threshold: query.max_mismatches,
                    out: ComparerOutput {
                        mm_count: mm.raw(),
                        direction: dir.raw(),
                        loci: mloci.raw(),
                        count: count.raw(),
                    },
                    l_comp,
                    l_comp_index,
                };
                h.parallel_for(NdRange::linear(round_up(n, wgs), wgs), &kernel)
            })?;
            timing.comparer_s += ev.launch_reports().iter().map(|r| r.exec_time_s).sum::<f64>();
            for r in ev.launch_reports() {
                profile.record_ref(r);
            }
            timing.comparer_launches += 1;

            let m = out_count.to_vec()[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let (mm, dir, pos) = (out_mm.to_vec(), out_dir.to_vec(), out_loci.to_vec());
            let entries: Vec<(u32, u8, u16)> = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
            entries_to_offtargets(&chunk, &query.seq, plen, &entries, &mut offtargets);
        }
    }
    queue.wait();

    timing.elapsed_s = queue.elapsed_s();
    timing.wall = wall_start.elapsed();
    sort_canonical(&mut offtargets);
    Ok(SearchReport {
        api: Api::Sycl,
        device: config.device.name.to_owned(),
        offtargets,
        timing,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn workload() -> (Assembly, SearchInput) {
        let assembly = genome::synth::hg19_mini(0.005);
        let input = SearchInput::canonical_example(assembly.name());
        (assembly, input)
    }

    #[test]
    fn packed_pipeline_matches_the_char_pipeline() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 14);
        let packed = run(&assembly, &input, &config).unwrap();
        let chars = super::super::sycl::run(&assembly, &input, &config).unwrap();
        assert_eq!(packed.offtargets, chars.offtargets);
        assert!(!packed.offtargets.is_empty());
    }

    #[test]
    fn packed_comparer_is_faster_than_the_baseline() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 16);
        let packed = run(&assembly, &input, &config).unwrap();
        let base = super::super::sycl::run(&assembly, &input, &config).unwrap();
        assert!(
            packed.timing.comparer_s < base.timing.comparer_s,
            "2-bit comparer must beat the char baseline: {} vs {}",
            packed.timing.comparer_s,
            base.timing.comparer_s
        );
    }

    #[test]
    fn degenerate_genome_codes_still_mismatch_correctly() {
        // A genome with IUPAC ambiguity codes: the packed path masks them to
        // N, the char path sees them directly. Both agree with the subset
        // rule only when the ambiguous base cannot match; use R which never
        // equals a concrete query base under either representation... except
        // R vs R. Restrict the check to the oracle semantics on concrete
        // queries: R decodes as N (mismatch) and the char comparer also
        // counts R as a mismatch for concrete query bases.
        let mut assembly = Assembly::new("amb");
        assembly.push(genome::Chromosome::new("c1", b"ACGRACGTAGG".to_vec()));
        let input = SearchInput::parse("amb\nNNNNNNNNNGG\nACGAACGTNNN 2\n").unwrap();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(64);
        let packed = run(&assembly, &input, &config).unwrap();
        let chars = super::super::sycl::run(&assembly, &input, &config).unwrap();
        assert_eq!(packed.offtargets, chars.offtargets);
    }
}
