//! The SYCL host application: the migrated Cas-OFFinder of §III, driven
//! through the eight programming steps of Table I.
//!
//! Functionally identical to the OpenCL pipeline; the host code differs the
//! way the paper describes — buffers with implicit release, ranged
//! accessors with handler copies, kernels submitted from command groups —
//! and the work-group size is fixed at 256 (§IV.A) instead of being left to
//! the runtime.

use genome::{Assembly, Chunker};
use gpu_sim::kernel::LocalLayout;
use gpu_sim::NdRange;
use sycl_rt::{AccessMode, Buffer, Queue, SpecSelector, StepLog, SyclResult};

use crate::input::SearchInput;
use crate::kernels::{FinderKernel, FinderOutput};
use crate::pattern::CompiledSeq;
use crate::report::{Api, SearchReport, TimingBreakdown};
use crate::site::sort_canonical;

use super::chunk::SyclChunkRunner;
use super::{entries_to_offtargets, round_up, PipelineConfig};

/// The work-group size the SYCL application launches both kernels with
/// (§IV.A of the paper).
pub const SYCL_WORK_GROUP_SIZE: usize = 256;

/// Run the SYCL application over `assembly` with `input`.
///
/// # Errors
///
/// Propagates SYCL exceptions (allocation, launch).
pub fn run(
    assembly: &Assembly,
    input: &SearchInput,
    config: &PipelineConfig,
) -> SyclResult<SearchReport> {
    let wall_start = std::time::Instant::now();

    // Steps 1-3: selector, queue and the constant pattern tables live in
    // the runner (§III.E's `constant_buffer` access target); the comparer's
    // query tables stay in global memory (Listing 1's `comp` is a plain
    // pointer).
    let runner = SyclChunkRunner::new(config, &input.pattern)?;
    let tables = runner.prepare_queries(&input.queries);
    let plen = runner.plen();

    let mut timing = TimingBreakdown::default();
    let mut offtargets = Vec::new();
    let mut profile = gpu_sim::profile::Profile::new();

    for chunk in Chunker::new(assembly, config.chunk_size, plen) {
        if chunk.seq.len() < plen {
            continue;
        }
        // Steps 4-7 per chunk: command groups with accessor binding
        // (implicit upload), finder, comparer per query, handler copies
        // back; per-chunk buffers release implicitly (step 8).
        let per_query =
            runner.run_chunk(chunk.seq, chunk.scan_len, &tables, &mut timing, &mut profile)?;
        for (query, entries) in input.queries.iter().zip(&per_query) {
            entries_to_offtargets(&chunk, &query.seq, plen, entries, &mut offtargets);
        }
    }
    runner.wait();

    timing.elapsed_s = runner.elapsed_s();
    timing.wall = wall_start.elapsed();
    sort_canonical(&mut offtargets);
    Ok(SearchReport {
        api: Api::Sycl,
        device: config.device.name.to_owned(),
        offtargets,
        timing,
        profile,
    })
}

/// Run a single-chunk search and return the queue's step log, for the
/// Table I experiment.
///
/// # Errors
///
/// Propagates SYCL exceptions.
pub fn step_log_of(
    assembly: &Assembly,
    input: &SearchInput,
    config: &PipelineConfig,
) -> SyclResult<StepLog> {
    let queue = Queue::with_mode(&SpecSelector(config.device.clone()), config.exec)?;
    let pattern = CompiledSeq::compile(&input.pattern);
    let plen = pattern.plen();
    let pat_buf = Buffer::from_slice(pattern.comp()).constant();
    let pat_index_buf = Buffer::from_slice(pattern.comp_index()).constant();

    if let Some(chunk) = Chunker::new(assembly, config.chunk_size, plen).next() {
        let chr_buf = Buffer::from_slice(chunk.seq);
        let loci_buf = Buffer::<u32>::new(chunk.scan_len);
        let flags_buf = Buffer::<u8>::new(chunk.scan_len);
        let fcount_buf = Buffer::<u32>::new(1);
        let ev = queue.submit(|h| {
            let chr = h.get_access(&chr_buf, AccessMode::Read)?;
            let pat = h.get_access(&pat_buf, AccessMode::Read)?;
            let pat_index = h.get_access(&pat_index_buf, AccessMode::Read)?;
            let loci = h.get_access(&loci_buf, AccessMode::Write)?;
            let flags = h.get_access(&flags_buf, AccessMode::Write)?;
            let fcount = h.get_access(&fcount_buf, AccessMode::ReadWrite)?;
            // An explicit copy, to exercise the Table III handler path.
            let mut first = vec![0u8; plen.min(chunk.seq.len())];
            h.copy_from_device(&chr, &mut first)?;

            let mut layout = LocalLayout::new();
            let l_pat = layout.array::<u8>(2 * plen);
            let l_pat_index = layout.array::<i32>(2 * plen);
            let kernel = FinderKernel {
                chr: chr.raw(),
                pat: pat.raw(),
                pat_index: pat_index.raw(),
                out: FinderOutput {
                    loci: loci.raw(),
                    flags: flags.raw(),
                    count: fcount.raw(),
                },
                scan_len: chunk.scan_len as u32,
                seq_len: chunk.seq.len() as u32,
                plen: plen as u32,
                l_pat,
                l_pat_index,
            };
            h.parallel_for(
                NdRange::linear(round_up(chunk.scan_len, SYCL_WORK_GROUP_SIZE), SYCL_WORK_GROUP_SIZE),
                &kernel,
            )
        })?;
        ev.wait();
    }
    // Implicit release happens as buffers drop; Table I records it as a
    // logical step of the programming model.
    queue.step_log().record(sycl_rt::Step::ImplicitRelease);
    Ok(queue.step_log().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::Chromosome;
    use gpu_sim::{DeviceSpec, ExecMode};

    fn toy() -> (Assembly, SearchInput) {
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new(
            "chr1",
            b"ACGTACGTAGGTTTACGTACGAAGCCCCCACGTACGTCGG".to_vec(),
        ));
        let input = SearchInput::parse("toy\nNNNNNNNNNRG\nACGTACGTNNN 3\n").unwrap();
        (asm, input)
    }

    fn config() -> PipelineConfig {
        PipelineConfig::new(DeviceSpec::mi100())
            .chunk_size(16)
            .exec_mode(ExecMode::Sequential)
    }

    #[test]
    fn matches_the_cpu_oracle() {
        let (asm, input) = toy();
        let report = run(&asm, &input, &config()).unwrap();
        let oracle = crate::cpu::search_sequential(&asm, &input);
        assert_eq!(report.offtargets, oracle);
        assert_eq!(report.api, Api::Sycl);
    }

    #[test]
    fn matches_the_opencl_pipeline() {
        let (asm, input) = toy();
        let sycl = run(&asm, &input, &config()).unwrap();
        let ocl = crate::pipeline::ocl::run(&asm, &input, &config()).unwrap();
        assert_eq!(sycl.offtargets, ocl.offtargets);
    }

    #[test]
    fn uses_256_wide_groups_by_default() {
        let (asm, input) = toy();
        // The toy chunks are tiny, so verify through a bigger single chunk.
        let cfg = config().chunk_size(4096);
        let report = run(&asm, &input, &cfg).unwrap();
        assert!(report.timing.finder_launches >= 1);
        // Indirect but sufficient: the default constant is what run() uses.
        assert_eq!(SYCL_WORK_GROUP_SIZE, 256);
    }

    #[test]
    fn eight_steps_are_exercised() {
        let (asm, input) = toy();
        let log = step_log_of(&asm, &input, &config()).unwrap();
        let mut steps = log.steps();
        steps.sort();
        let mut all = sycl_rt::steps::ALL_STEPS.to_vec();
        all.sort();
        assert_eq!(steps, all);
    }

    #[test]
    fn timing_breakdown_is_consistent() {
        let (asm, input) = toy();
        let report = run(&asm, &input, &config()).unwrap();
        let t = &report.timing;
        assert!(t.elapsed_s > 0.0);
        assert!(t.finder_s > 0.0 && t.comparer_s > 0.0);
        assert!(t.transfer_s >= 0.0);
        // elapsed = kernels + transfers + per-launch overheads.
        let launches = (t.finder_launches + t.comparer_launches) as f64;
        let overhead = launches * DeviceSpec::mi100().launch_overhead_s;
        assert!((t.kernel_s() + t.transfer_s + overhead - t.elapsed_s).abs() < 1e-9);
    }
}
