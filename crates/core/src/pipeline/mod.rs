//! The host pipelines: the OpenCL and SYCL applications of the paper.
//!
//! Both implement the same interaction loop (§II.A): chunk the genome, run
//! the `finder` kernel to select PAM sites, feed the candidate loci to the
//! `comparer` kernel once per query, read back the surviving entries, and
//! accumulate the off-target records — "the interaction between the host
//! and kernel programs continues until all chunks are processed."

pub mod chunk;
pub mod multi;
pub mod ocl;
pub mod sycl;
pub mod sycl_usm;
pub mod twobit;

use genome::Chunk;
use gpu_sim::{DeviceSpec, ExecMode};

use crate::kernels::OptLevel;
use crate::site::{OffTarget, Strand};

/// Configuration shared by both pipelines.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Device to run on.
    pub device: DeviceSpec,
    /// Owned scan positions per chunk.
    pub chunk_size: usize,
    /// Comparer optimization stage.
    pub opt: OptLevel,
    /// Work-group size for both kernels. `None` lets the runtime decide —
    /// which the OpenCL runtime resolves to one wavefront (64), while the
    /// SYCL application fixes 256, exactly the paper's §IV.A setup.
    pub work_group_size: Option<usize>,
    /// Host-thread scheduling of the simulator.
    pub exec: ExecMode,
    /// Number of device-resident chunk payloads a chunk runner keeps alive
    /// between calls. With 1 slot a runner can only reuse the chunk it ran
    /// last; a serving layer that revisits chunks out of order wants a
    /// budget matching its working set. Residency only pays off through the
    /// `run_*_resident` entry points of the chunk runners — the serial
    /// pipelines stream chunks exactly once and are unaffected.
    pub resident_slots: usize,
    /// Prefer JIT-specialized per-(pattern, threshold) kernel variants over
    /// the generic kernels in the chunk runners
    /// ([`crate::kernels::specialize`]). Variants are fetched from the
    /// process-wide single-flight cache; results are identical either way.
    pub specialize: bool,
    /// Fuse multi-query chunk runs into guide-block comparer launches
    /// ([`crate::kernels::MultiComparerKernel`] family): `k` queries cost
    /// `ceil(k / GUIDE_BLOCK)` comparer launches instead of `k`. Results
    /// are byte-identical to the serial per-query path.
    pub multi_guide: bool,
}

impl PipelineConfig {
    /// Defaults for `device`: 1 Mi-position chunks, baseline comparer,
    /// runtime-chosen work-group size, parallel host execution.
    pub fn new(device: DeviceSpec) -> Self {
        PipelineConfig {
            device,
            chunk_size: 1 << 20,
            opt: OptLevel::Base,
            work_group_size: None,
            exec: ExecMode::default(),
            resident_slots: 1,
            specialize: false,
            multi_guide: false,
        }
    }

    /// Set the chunk size.
    pub fn chunk_size(mut self, n: usize) -> Self {
        self.chunk_size = n;
        self
    }

    /// Set the comparer optimization stage.
    pub fn opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Set (or unset) the work-group size.
    pub fn work_group_size(mut self, wgs: Option<usize>) -> Self {
        self.work_group_size = wgs;
        self
    }

    /// Set the simulator's host-thread scheduling.
    pub fn exec_mode(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Set the resident chunk-payload budget of the chunk runners.
    pub fn resident_slots(mut self, slots: usize) -> Self {
        self.resident_slots = slots;
        self
    }

    /// Enable or disable JIT-specialized kernel variants.
    pub fn specialize(mut self, on: bool) -> Self {
        self.specialize = on;
        self
    }

    /// Enable or disable fused multi-guide comparer launches.
    pub fn multi_guide(mut self, on: bool) -> Self {
        self.multi_guide = on;
        self
    }
}

/// Map comparer entries `(locus, direction, mismatches)` of one chunk and
/// query into [`OffTarget`] records.
///
/// Public so external schedulers (e.g. `casoff-serve`) can turn the raw
/// output of [`chunk::OclChunkRunner::run_chunk`] into reportable records
/// with the chunk's genome coordinates applied.
pub fn entries_to_offtargets(
    chunk: &Chunk<'_>,
    query: &[u8],
    plen: usize,
    entries: &[(u32, u8, u16)],
    out: &mut Vec<OffTarget>,
) {
    for &(locus, dir, mm) in entries {
        let locus = locus as usize;
        let window = &chunk.seq[locus..locus + plen];
        let strand = if dir == b'-' {
            Strand::Reverse
        } else {
            Strand::Forward
        };
        out.push(OffTarget::from_window(
            query,
            chunk.chrom_name,
            chunk.start + locus,
            strand,
            mm,
            window,
        ));
    }
}

/// Round `items` up to a whole number of `wgs`-sized groups.
pub(crate) fn round_up(items: usize, wgs: usize) -> usize {
    items.div_ceil(wgs.max(1)) * wgs.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::{Assembly, Chromosome, Chunker};

    #[test]
    fn config_builders() {
        let cfg = PipelineConfig::new(DeviceSpec::mi60())
            .chunk_size(4096)
            .opt(OptLevel::Opt3)
            .work_group_size(Some(256))
            .exec_mode(ExecMode::Sequential);
        assert_eq!(cfg.chunk_size, 4096);
        assert_eq!(cfg.opt, OptLevel::Opt3);
        assert_eq!(cfg.work_group_size, Some(256));
        assert_eq!(cfg.exec, ExecMode::Sequential);
        assert_eq!(cfg.device.name, "MI60");
    }

    #[test]
    fn rounding() {
        assert_eq!(round_up(100, 64), 128);
        assert_eq!(round_up(128, 64), 128);
        assert_eq!(round_up(0, 64), 0);
        assert_eq!(round_up(5, 0), 5);
    }

    #[test]
    fn entry_mapping_uses_chunk_coordinates() {
        let mut asm = Assembly::new("t");
        asm.push(Chromosome::new("chr9", b"AAAACGTTTT".to_vec()));
        let chunks: Vec<_> = Chunker::new(&asm, 5, 3).collect();
        let second = chunks[1];
        assert_eq!(second.start, 5);
        let mut out = Vec::new();
        entries_to_offtargets(&second, b"GTT", 3, &[(0, b'+', 1)], &mut out);
        assert_eq!(out[0].chrom, "chr9");
        assert_eq!(out[0].position, 5);
        assert_eq!(out[0].strand, Strand::Forward);
    }
}
