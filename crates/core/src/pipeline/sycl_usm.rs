//! The SYCL application expressed with unified shared memory instead of
//! buffers — the other migration path §III.A of the paper mentions
//! ("unified shared memory ... allows for easier integration with existing
//! C/C++ programs").
//!
//! Functionally identical to [`super::sycl`]; the host code is
//! pointer-shaped: explicit `malloc_device` allocations, explicit
//! `memcpy`, no accessors.

use genome::{Assembly, Chunker};
use gpu_sim::kernel::LocalLayout;
use gpu_sim::NdRange;
use sycl_rt::{Queue, SpecSelector, SyclResult};

use crate::input::SearchInput;
use crate::kernels::{ComparerKernel, ComparerOutput, FinderKernel, FinderOutput};
use crate::pattern::CompiledSeq;
use crate::report::{Api, SearchReport, TimingBreakdown};
use crate::site::sort_canonical;

use super::{entries_to_offtargets, round_up, PipelineConfig};

/// Run the USM variant of the SYCL application.
///
/// # Errors
///
/// Propagates SYCL exceptions (allocation, launch).
pub fn run(
    assembly: &Assembly,
    input: &SearchInput,
    config: &PipelineConfig,
) -> SyclResult<SearchReport> {
    let wall_start = std::time::Instant::now();
    let wgs = config.work_group_size.unwrap_or(super::sycl::SYCL_WORK_GROUP_SIZE);

    let queue = Queue::with_mode(&SpecSelector(config.device.clone()), config.exec)?;

    let pattern = CompiledSeq::compile(&input.pattern);
    let plen = pattern.plen();
    let queries: Vec<CompiledSeq> = input
        .queries
        .iter()
        .map(|q| CompiledSeq::compile(&q.seq))
        .collect();
    let cap = config.chunk_size;

    // Device allocations, reused across chunks (the pointer-based style).
    let chr = queue.malloc_device::<u8>(cap + plen)?;
    let pat = queue.malloc_device::<u8>(2 * plen)?;
    let pat_index = queue.malloc_device::<i32>(2 * plen)?;
    let loci = queue.malloc_device::<u32>(cap)?;
    let flags = queue.malloc_device::<u8>(cap)?;
    let fcount = queue.malloc_device::<u32>(1)?;
    let mm_count = queue.malloc_device::<u16>(2 * cap)?;
    let direction = queue.malloc_device::<u8>(2 * cap)?;
    let mm_loci = queue.malloc_device::<u32>(2 * cap)?;
    let ecount = queue.malloc_device::<u32>(1)?;

    let mut timing = TimingBreakdown::default();
    let mut offtargets = Vec::new();
    let mut profile = gpu_sim::profile::Profile::new();

    let ev = queue.memcpy_to_device(&pat, pattern.comp())?;
    timing.transfer_s += ev.duration_s();
    let ev = queue.memcpy_to_device(&pat_index, pattern.comp_index())?;
    timing.transfer_s += ev.duration_s();

    let query_ptrs = queries
        .iter()
        .map(|c| {
            let comp = queue.malloc_device::<u8>(2 * plen)?;
            let comp_index = queue.malloc_device::<i32>(2 * plen)?;
            timing.transfer_s += queue.memcpy_to_device(&comp, c.comp())?.duration_s();
            timing.transfer_s += queue
                .memcpy_to_device(&comp_index, c.comp_index())?
                .duration_s();
            Ok((comp, comp_index))
        })
        .collect::<SyclResult<Vec<_>>>()?;

    for chunk in Chunker::new(assembly, cap, plen) {
        if chunk.seq.len() < plen {
            continue;
        }
        timing.transfer_s += queue.memcpy_to_device(&chr, chunk.seq)?.duration_s();
        timing.transfer_s += queue.memcpy_to_device(&fcount, &[0u32])?.duration_s();

        let ev = queue.submit(|h| {
            let mut layout = LocalLayout::new();
            let l_pat = layout.array::<u8>(2 * plen);
            let l_pat_index = layout.array::<i32>(2 * plen);
            let kernel = FinderKernel {
                chr: chr.raw(),
                pat: pat.raw(),
                pat_index: pat_index.raw(),
                out: FinderOutput {
                    loci: loci.raw(),
                    flags: flags.raw(),
                    count: fcount.raw(),
                },
                scan_len: chunk.scan_len as u32,
                seq_len: chunk.seq.len() as u32,
                plen: plen as u32,
                l_pat,
                l_pat_index,
            };
            h.parallel_for(NdRange::linear(round_up(chunk.scan_len, wgs), wgs), &kernel)
        })?;
        timing.finder_s += ev.launch_reports().iter().map(|r| r.exec_time_s).sum::<f64>();
        for r in ev.launch_reports() {
            profile.record_ref(r);
        }
        timing.finder_launches += 1;

        let mut n_host = [0u32];
        timing.transfer_s += queue.memcpy_to_host(&mut n_host, &fcount)?.duration_s();
        let n = n_host[0] as usize;
        timing.candidates += n as u64;
        if n == 0 {
            continue;
        }

        for (query, (comp, comp_index)) in input.queries.iter().zip(&query_ptrs) {
            timing.transfer_s += queue.memcpy_to_device(&ecount, &[0u32])?.duration_s();

            let ev = queue.submit(|h| {
                let mut layout = LocalLayout::new();
                let l_comp = layout.array::<u8>(2 * plen);
                let l_comp_index = layout.array::<i32>(2 * plen);
                let kernel = ComparerKernel {
                    opt: config.opt,
                    chr: chr.raw(),
                    loci: loci.raw(),
                    flags: flags.raw(),
                    comp: comp.raw(),
                    comp_index: comp_index.raw(),
                    locicnt: n as u32,
                    plen: plen as u32,
                    threshold: query.max_mismatches,
                    out: ComparerOutput {
                        mm_count: mm_count.raw(),
                        direction: direction.raw(),
                        loci: mm_loci.raw(),
                        count: ecount.raw(),
                    },
                    l_comp,
                    l_comp_index,
                };
                h.parallel_for(NdRange::linear(round_up(n, wgs), wgs), &kernel)
            })?;
            timing.comparer_s += ev.launch_reports().iter().map(|r| r.exec_time_s).sum::<f64>();
            for r in ev.launch_reports() {
                profile.record_ref(r);
            }
            timing.comparer_launches += 1;

            let mut m_host = [0u32];
            timing.transfer_s += queue.memcpy_to_host(&mut m_host, &ecount)?.duration_s();
            let m = m_host[0] as usize;
            timing.entries += m as u64;
            if m == 0 {
                continue;
            }
            let mut mm = vec![0u16; m];
            let mut dir = vec![0u8; m];
            let mut pos = vec![0u32; m];
            timing.transfer_s += queue.memcpy_to_host(&mut mm, &mm_count)?.duration_s();
            timing.transfer_s += queue.memcpy_to_host(&mut dir, &direction)?.duration_s();
            timing.transfer_s += queue.memcpy_to_host(&mut pos, &mm_loci)?.duration_s();
            let entries: Vec<(u32, u8, u16)> = (0..m).map(|i| (pos[i], dir[i], mm[i])).collect();
            entries_to_offtargets(&chunk, &query.seq, plen, &entries, &mut offtargets);
        }
    }
    queue.wait();

    timing.elapsed_s = queue.elapsed_s();
    timing.wall = wall_start.elapsed();
    sort_canonical(&mut offtargets);
    Ok(SearchReport {
        api: Api::Sycl,
        device: config.device.name.to_owned(),
        offtargets,
        timing,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn workload() -> (Assembly, SearchInput) {
        let assembly = genome::synth::hg19_mini(0.005);
        let input = SearchInput::canonical_example(assembly.name());
        (assembly, input)
    }

    #[test]
    fn usm_pipeline_matches_the_buffer_pipeline() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 14);
        let usm = run(&assembly, &input, &config).unwrap();
        let buffered = super::super::sycl::run(&assembly, &input, &config).unwrap();
        assert_eq!(usm.offtargets, buffered.offtargets);
        assert!(!usm.offtargets.is_empty());
    }

    #[test]
    fn usm_pipeline_matches_the_oracle_at_every_opt_level(){
        let (assembly, input) = workload();
        let oracle = crate::cpu::search_sequential(&assembly, &input);
        for opt in crate::OptLevel::ALL {
            let config = PipelineConfig::new(DeviceSpec::mi60())
                .chunk_size(1 << 13)
                .opt(opt);
            let report = run(&assembly, &input, &config).unwrap();
            assert_eq!(report.offtargets, oracle, "opt {opt}");
        }
    }

    #[test]
    fn timing_is_populated() {
        let (assembly, input) = workload();
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 14);
        let report = run(&assembly, &input, &config).unwrap();
        let t = &report.timing;
        assert!(t.elapsed_s > 0.0);
        assert!(t.transfer_s > 0.0);
        assert!(t.finder_s > 0.0 && t.comparer_s > 0.0);
        assert!(t.candidates > 0 && t.entries > 0);
    }
}
