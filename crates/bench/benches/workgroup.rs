//! Micro-benchmark: work-group-size ablation (the DESIGN.md ♦ item behind
//! Table VIII — the OpenCL runtime picks 64-wide groups, the SYCL
//! application fixes 256).

use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::SearchInput;
use casoff_bench::microbench::{BenchmarkId, Criterion};
use casoff_bench::{criterion_group, criterion_main};
use genome::synth;
use gpu_sim::DeviceSpec;

fn bench_workgroup(c: &mut Criterion) {
    let assembly = synth::hg38_mini(0.01);
    let input = SearchInput::canonical_example("hg38-mini");

    let mut group = c.benchmark_group("workgroup");
    group.sample_size(10);
    for wgs in [64usize, 128, 256, 512] {
        let config = PipelineConfig::new(DeviceSpec::mi100())
            .chunk_size(1 << 15)
            .work_group_size(Some(wgs));
        let report = pipeline::sycl::run(&assembly, &input, &config).unwrap();
        println!(
            "work-group {wgs}: simulated elapsed {:.6}s (comparer {:.6}s)",
            report.timing.elapsed_s, report.timing.comparer_s
        );
        group.bench_with_input(BenchmarkId::from_parameter(wgs), &config, |b, cfg| {
            b.iter(|| {
                pipeline::sycl::run(&assembly, &input, cfg)
                    .unwrap()
                    .timing
                    .elapsed_s
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workgroup);
criterion_main!(benches);
