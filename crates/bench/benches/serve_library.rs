//! Micro-benchmark: the library-screen fast path (`serve::candidates` +
//! fused `comparer_multi` launches) against per-guide serving.
//!
//! Two services over the same assembly, differing only in the fast-path
//! switches: the baseline runs a screen as per-guide comparer launches
//! with a finder sweep per batch; the fast service fuses each
//! guide-block into one `comparer_multi` launch and replays cached
//! candidate lists once the first sweep has published them. Cold
//! measures a first screen on a fresh service (every chunk's finder pass
//! included); post-warmup measures the steady state a screening portal
//! lives in, where every sweep's candidate list is already cached. The
//! printed counters are the comparison that matters: the fast screen's
//! comparer launches collapse by the guide-block factor and its repeat
//! finder launches disappear outright.

use casoff_bench::microbench::Criterion;
use casoff_bench::{criterion_group, criterion_main};
use casoff_serve::{ChunkEncoding, JobSpec, Placement, Service, ServiceConfig};
use genome::rng::Xoshiro256;
use genome::synth::hg38_mini;

/// Scan positions per chunk — the production size the serving demo uses.
const CHUNK_SIZE: usize = 1 << 13;
/// Assembly scale: a couple dozen chunks, so a screen is a real sweep but
/// a cold service start stays cheap.
const GENOME_SCALE: f64 = 0.005;
/// Guides per screen: enough guide blocks that the fused-launch ratio and
/// the candidate hit rate both converge.
const GUIDES: usize = 256;

fn screen_spec() -> JobSpec {
    let mut rng = Xoshiro256::seed_from_u64(0x11B2);
    let guides: Vec<Vec<u8>> = (0..GUIDES)
        .map(|_| {
            let mut g: Vec<u8> = (0..8).map(|_| *rng.choose(b"ACGT").unwrap()).collect();
            g.extend_from_slice(b"NNN");
            g
        })
        .collect();
    JobSpec::library("hg38-mini", b"NNNNNNNNNRG".to_vec(), guides, 3)
}

fn service_with(fast: bool) -> Service {
    let mut config = ServiceConfig::paper_pool();
    config.chunk_size = CHUNK_SIZE;
    config.cache_encoding = ChunkEncoding::Packed;
    config.placement = Placement::EarliestCompletion;
    // Guide-block-sized groups: one fused launch per coalesced batch.
    config.max_batch = 16;
    config.queue_cost_limit = 1 << 31;
    // Every screen must compute: a result-store hit would measure the
    // result cache, not the candidate cache and fused launches.
    config.result_cache_bytes = 0;
    config.multi_guide = fast;
    config.candidate_cache_bytes = if fast { 1 << 20 } else { 0 };
    Service::start(config, vec![hg38_mini(GENOME_SCALE)])
}

/// Submit one whole-library screen and wait for its union.
fn screen(service: &Service, spec: &JobSpec) {
    let id = service
        .submit(spec.clone())
        .expect("bench service accepts every submission");
    service.wait(id).expect("bench screens complete");
}

fn bench_serve_library(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve-library");
    group.sample_size(5);
    let spec = screen_spec();

    // Cold: fresh service, one screen, shutdown — the fast path's first
    // sweep pays every finder launch into the candidate cache here.
    for (label, fast) in [("per-guide", false), ("fused", true)] {
        group.bench_function(format!("cold-screen/{label}"), |b| {
            b.iter(|| {
                let service = service_with(fast);
                screen(&service, &spec);
                service.shutdown();
            })
        });
    }

    // Post-warmup: one screen publishes every chunk's candidate list,
    // then every measured screen replays them with its finders skipped.
    for (label, fast) in [("per-guide", false), ("fused", true)] {
        let service = service_with(fast);
        screen(&service, &spec);
        group.bench_function(format!("warm-screen/{label}"), |b| {
            b.iter(|| screen(&service, &spec))
        });
        let report = service.metrics();
        print!(
            "serve-library/{label}: {:.3} comparer launches per job-chunk",
            report.comparer_launch_ratio()
        );
        if fast {
            print!(
                " ({} fused, {} finder launches skipped, {:.1}% candidate hits)",
                report.fused_launches,
                report.finder_launches_skipped,
                100.0 * report.candidate_hit_rate()
            );
        }
        println!();
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_serve_library);
criterion_main!(benches);
