//! Micro-benchmark: char vs 2-bit packed comparer (the related-work [21]
//! optimization) and buffer vs USM host paths.

use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::{OptLevel, SearchInput};
use casoff_bench::microbench::Criterion;
use casoff_bench::{criterion_group, criterion_main};
use genome::synth;
use gpu_sim::DeviceSpec;

fn bench_variants(c: &mut Criterion) {
    let assembly = synth::hg19_mini(0.01);
    let input = SearchInput::canonical_example("hg19-mini");
    let config = PipelineConfig::new(DeviceSpec::mi100())
        .chunk_size(1 << 15)
        .opt(OptLevel::Opt3);

    let chars = pipeline::sycl::run(&assembly, &input, &config).unwrap();
    let packed = pipeline::twobit::run(&assembly, &input, &config).unwrap();
    let usm = pipeline::sycl_usm::run(&assembly, &input, &config).unwrap();
    assert_eq!(chars.offtargets, packed.offtargets);
    assert_eq!(chars.offtargets, usm.offtargets);
    println!(
        "simulated comparer: char {:.6}s, 2-bit {:.6}s (speedup {:.2}); \
         elapsed: buffer {:.6}s, usm {:.6}s",
        chars.timing.comparer_s,
        packed.timing.comparer_s,
        chars.timing.comparer_s / packed.timing.comparer_s,
        chars.timing.elapsed_s,
        usm.timing.elapsed_s,
    );

    let mut group = c.benchmark_group("variants");
    group.sample_size(10);
    group.bench_function("comparer-char", |b| {
        b.iter(|| pipeline::sycl::run(&assembly, &input, &config).unwrap().timing.comparer_s)
    });
    group.bench_function("comparer-2bit", |b| {
        b.iter(|| pipeline::twobit::run(&assembly, &input, &config).unwrap().timing.comparer_s)
    });
    group.bench_function("host-usm", |b| {
        b.iter(|| pipeline::sycl_usm::run(&assembly, &input, &config).unwrap().timing.elapsed_s)
    });
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
