//! Micro-benchmark: the comparer kernel at every optimization stage
//! (regenerates the relative shape of the paper's Fig. 2, and the opt3
//! local-staging ablation called out in DESIGN.md).
//!
//! Criterion measures host wall time of the simulation; the simulated
//! kernel seconds (what Fig. 2 plots) are printed once per variant.

use cas_offinder::kernels::{ComparerKernel, ComparerOutput};
use cas_offinder::{CompiledSeq, OptLevel};
use casoff_bench::microbench::{BenchmarkId, Criterion};
use casoff_bench::{criterion_group, criterion_main};
use gpu_sim::{Device, DeviceSpec, NdRange};

struct Fixture {
    device: Device,
    kernel: ComparerKernel,
    nd: NdRange,
}

fn fixture(opt: OptLevel) -> Fixture {
    let device = Device::new(DeviceSpec::mi100());
    let query = CompiledSeq::compile(b"GGCCGACCTGTCGCTGACGCNNN");
    let seq: Vec<u8> = (0..1 << 16u32)
        .map(|i| b"ACGT"[((i as usize).wrapping_mul(2654435761) >> 13) % 4])
        .collect();
    let candidates: Vec<u32> = (0..1 << 14).map(|i| (i * 3) as u32).collect();
    let flags = vec![0u8; candidates.len()];

    let chr = device.alloc_from_slice(&seq).unwrap();
    let loci = device.alloc_from_slice(&candidates).unwrap();
    let flags = device.alloc_from_slice(&flags).unwrap();
    let comp = device.alloc_from_slice(query.comp()).unwrap();
    let comp_index = device.alloc_from_slice(query.comp_index()).unwrap();
    let out = ComparerOutput::allocate(&device, candidates.len() * 2 + 1).unwrap();
    let n = candidates.len();
    let (kernel, _) = ComparerKernel::new(
        opt, chr, loci, flags, comp, comp_index, n, 4, out, &query,
    );
    let nd = NdRange::linear_cover(n, 256);
    Fixture { device, kernel, nd }
}

fn bench_comparer(c: &mut Criterion) {
    let mut group = c.benchmark_group("comparer");
    group.sample_size(10);
    for opt in OptLevel::ALL {
        let f = fixture(opt);
        let report = f.device.launch(&f.kernel, f.nd).unwrap();
        println!(
            "comparer {}: simulated {:.6}s, occupancy {}, {} wave-kcycles",
            opt,
            report.sim_time_s,
            report.occupancy.waves_per_simd,
            (report.wave_cycles / 1e3) as u64
        );
        group.bench_with_input(BenchmarkId::from_parameter(opt), &f, |b, f| {
            b.iter(|| {
                f.kernel.out.count.fill(0);
                f.device.launch(&f.kernel, f.nd).unwrap().sim_time_s
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_comparer);
criterion_main!(benches);
