//! Micro-benchmark: the host-side baselines — the scalar oracle and the
//! multithreaded search (the OpenMP-style optimization of related work
//! [21]) — measured in real wall time, plus their thread scaling.

use cas_offinder::{cpu, SearchInput};
use casoff_bench::microbench::{BenchmarkId, Criterion, Throughput};
use casoff_bench::{criterion_group, criterion_main};
use genome::synth;

fn bench_cpu(c: &mut Criterion) {
    let assembly = synth::hg19_mini(0.02);
    let input = SearchInput::canonical_example("hg19-mini");
    let bases = assembly.total_len() as u64;

    let mut group = c.benchmark_group("cpu");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bases));
    group.bench_function("sequential", |b| {
        b.iter(|| cpu::search_sequential(&assembly, &input).len())
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &t| b.iter(|| cpu::search_parallel(&assembly, &input, t).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cpu);
criterion_main!(benches);
