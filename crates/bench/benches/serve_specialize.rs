//! Micro-benchmark: generic vs JIT-specialized comparer kernels on the
//! serving chunk path, cold vs warm variant cache.
//!
//! The specialization stage constant-folds each query's compiled pattern
//! and mismatch threshold into a per-(pattern digest, threshold, encoding)
//! kernel variant; the folded kernels skip the query-table uploads and
//! the table loads entirely. This bench drives the same multi-guide
//! adaptive (4-bit nibble) workload through the OpenCL chunk runner twice
//! per device spec — once with the generic kernels, once specialized —
//! and reports the simulated pass time, the speedup, and the global
//! variant cache's behaviour across the cold first pass (compiles) and
//! the warm steady state (hits, no compiles).

use std::sync::Arc;

use cas_offinder::kernels::specialize::global_cache;
use cas_offinder::pipeline::chunk::OclChunkRunner;
use cas_offinder::pipeline::PipelineConfig;
use cas_offinder::{Query, SearchInput, TimingBreakdown};
use casoff_bench::microbench::Criterion;
use casoff_bench::{criterion_group, criterion_main};
use casoff_serve::cache::{ChunkKey, ChunkPayload, EncodedChunk};
use casoff_serve::{ChunkEncoding, GenomeCache};
use genome::{synth, Assembly, Chunker};
use gpu_sim::{DeviceSpec, ExecMode};

const CHUNK_SIZE: usize = 1 << 13;
const GENOME_SCALE: f64 = 0.02;
const CACHE_BYTES: usize = 128 * 1024;
/// Distinct guides, each its own (pattern, threshold) variant family —
/// enough tenants that the cold pass pays a real compile burst.
const GUIDES: usize = 8;

struct Workload {
    runner: OclChunkRunner,
    tables: cas_offinder::pipeline::chunk::OclQueryTables,
    cache: GenomeCache,
    chunks: Vec<(ChunkKey, Vec<u8>, usize)>,
}

impl Workload {
    fn new(spec: DeviceSpec, assembly: &Assembly, specialize: bool) -> Self {
        let input = SearchInput::parse(&format!(
            "{}\nNNNNNNNNNRG\nACGTACGTNNN 3\n",
            assembly.name()
        ))
        .unwrap();
        // A multi-tenant query mix: distinct guides at distinct thresholds,
        // the shape that exercises one variant per (pattern, threshold).
        let queries: Vec<Query> = (0..GUIDES)
            .map(|i| {
                let mut g = Vec::with_capacity(11);
                for j in 0..8 {
                    g.push(b"ACGT"[(i * 5 + j * 3) % 4]);
                }
                g.extend_from_slice(b"NNN");
                Query::new(g, 2 + (i % 3) as u16)
            })
            .collect();
        let config = PipelineConfig::new(spec)
            .chunk_size(CHUNK_SIZE)
            .exec_mode(ExecMode::Sequential)
            .specialize(specialize);
        let runner = OclChunkRunner::new(&config, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&queries).unwrap();
        let plen = runner.plen();
        let chunks: Vec<(ChunkKey, Vec<u8>, usize)> = Chunker::new(assembly, CHUNK_SIZE, plen)
            .enumerate()
            .filter(|(_, c)| c.seq.len() >= plen)
            .map(|(index, c)| {
                (
                    ChunkKey {
                        assembly: assembly.name().to_string(),
                        plen,
                        index,
                    },
                    c.seq.to_vec(),
                    c.scan_len,
                )
            })
            .collect();
        Workload {
            runner,
            tables,
            cache: GenomeCache::new(CACHE_BYTES),
            chunks,
        }
    }

    /// One pass over every chunk on the adaptive (4-bit nibble) payload —
    /// the encoding where both the finder and the comparer specialize.
    fn pass(&self) -> f64 {
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        for (key, seq, scan_len) in &self.chunks {
            let chunk: Arc<EncodedChunk> = self.cache.get_or_insert_with(key, || {
                EncodedChunk::encode(0, "chr".into(), 0, *scan_len, seq, ChunkEncoding::Adaptive)
            });
            match &chunk.payload {
                ChunkPayload::Packed(p) => {
                    self.runner
                        .run_packed_chunk(p, *scan_len, &self.tables, &mut timing, &mut profile)
                        .unwrap();
                }
                ChunkPayload::Nibble(n) => {
                    self.runner
                        .run_nibble_chunk(n, *scan_len, &self.tables, &mut timing, &mut profile)
                        .unwrap();
                }
                ChunkPayload::Raw(seq) => {
                    self.runner
                        .run_chunk(seq, *scan_len, &self.tables, &mut timing, &mut profile)
                        .unwrap();
                }
            }
        }
        timing.finder_s + timing.comparer_s + timing.transfer_s
    }
}

fn bench_serve_specialize(c: &mut Criterion) {
    let assembly = synth::hg38_masked_mini(GENOME_SCALE);
    let specs = [
        ("rvii", DeviceSpec::radeon_vii()),
        ("mi60", DeviceSpec::mi60()),
        ("mi100", DeviceSpec::mi100()),
    ];
    let mut group = c.benchmark_group("serve-specialize");
    group.sample_size(5);
    for (name, spec) in specs {
        let generic = Workload::new(spec.clone(), &assembly, false);
        let generic_s = generic.pass();

        // The first specialized pass is the cold one: every (pattern,
        // threshold) variant misses the process-global cache and compiles.
        let specialized = Workload::new(spec.clone(), &assembly, true);
        let before = global_cache().stats();
        let cold_s = specialized.pass();
        let after_cold = global_cache().stats();
        let warm_s = specialized.pass();
        let after_warm = global_cache().stats();

        let cold_compiles = after_cold.compiles - before.compiles;
        let warm_compiles = after_warm.compiles - after_cold.compiles;
        println!(
            "serve-specialize/{name}: generic {generic_s:.6} s/pass, specialized cold \
             {cold_s:.6} s/pass ({cold_compiles} compiles), warm {warm_s:.6} s/pass \
             ({warm_compiles} compiles, {:.2}x vs generic)",
            generic_s / warm_s,
        );

        group.bench_function(format!("{name}/generic"), |b| b.iter(|| generic.pass()));
        group.bench_function(format!("{name}/specialized-warm"), |b| {
            b.iter(|| specialized.pass())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_specialize);
criterion_main!(benches);
