//! Micro-benchmark: the serving cache's raw vs 2-bit packed payloads at an
//! equal byte budget, served through the chunk runner on three device
//! specs. The packed cache holds ~2.7x the chunks, so a working set that
//! thrashes the raw cache fits the packed one — the summary lines report
//! hit rate, per-pass upload bytes, and simulated batch time per spec.
//!
//! A second group replays an **exception-dense** soft-masked assembly,
//! where 2-bit-with-exceptions degrades to the char comparer: the adaptive
//! encoding flips those chunks to 4-bit nibbles and keeps every pass on a
//! packed device payload at half a byte per base.

use std::sync::Arc;

use cas_offinder::pipeline::chunk::OclChunkRunner;
use cas_offinder::pipeline::PipelineConfig;
use cas_offinder::SearchInput;
use cas_offinder::TimingBreakdown;
use casoff_bench::microbench::Criterion;
use casoff_bench::{criterion_group, criterion_main};
use casoff_serve::cache::{ChunkKey, ChunkPayload, EncodedChunk};
use casoff_serve::{ChunkEncoding, GenomeCache};
use genome::{synth, Assembly, Chunker};
use gpu_sim::{DeviceSpec, ExecMode};

const CHUNK_SIZE: usize = 1 << 13;
const GENOME_SCALE: f64 = 0.02;
/// Shared byte budget: comfortably holds the packed working set, thrashes
/// the raw one — the equal-budget comparison the serve cache is about.
const CACHE_BYTES: usize = 128 * 1024;

struct Workload {
    runner: OclChunkRunner,
    tables: cas_offinder::pipeline::chunk::OclQueryTables,
    cache: GenomeCache,
    chunks: Vec<(ChunkKey, Vec<u8>, usize)>,
    encoding: ChunkEncoding,
}

impl Workload {
    fn new(spec: DeviceSpec, assembly: &Assembly, encoding: ChunkEncoding) -> Self {
        let input = SearchInput::parse(&format!(
            "{}\nNNNNNNNNNRG\nACGTACGTNNN 3\n",
            assembly.name()
        ))
        .unwrap();
        let config = PipelineConfig::new(spec)
            .chunk_size(CHUNK_SIZE)
            .exec_mode(ExecMode::Sequential);
        let runner = OclChunkRunner::new(&config, &input.pattern).unwrap();
        let tables = runner.prepare_queries(&input.queries).unwrap();
        let plen = runner.plen();
        let chunks: Vec<(ChunkKey, Vec<u8>, usize)> = Chunker::new(assembly, CHUNK_SIZE, plen)
            .enumerate()
            .filter(|(_, c)| c.seq.len() >= plen)
            .map(|(index, c)| {
                (
                    ChunkKey {
                        assembly: assembly.name().to_string(),
                        plen,
                        index,
                    },
                    c.seq.to_vec(),
                    c.scan_len,
                )
            })
            .collect();
        Workload {
            runner,
            tables,
            cache: GenomeCache::new(CACHE_BYTES),
            chunks,
            encoding,
        }
    }

    /// One pass over every chunk through the cache and the runner, the way
    /// a serve worker replays a repeat tenant's working set.
    fn pass(&self) -> f64 {
        let mut timing = TimingBreakdown::default();
        let mut profile = gpu_sim::profile::Profile::new();
        for (key, seq, scan_len) in &self.chunks {
            let chunk: Arc<EncodedChunk> = self.cache.get_or_insert_with(key, || {
                EncodedChunk::encode(0, "chr".into(), 0, *scan_len, seq, self.encoding)
            });
            match &chunk.payload {
                ChunkPayload::Packed(p) => {
                    self.runner
                        .run_packed_chunk(p, *scan_len, &self.tables, &mut timing, &mut profile)
                        .unwrap();
                }
                ChunkPayload::Nibble(n) => {
                    self.runner
                        .run_nibble_chunk(n, *scan_len, &self.tables, &mut timing, &mut profile)
                        .unwrap();
                }
                ChunkPayload::Raw(seq) => {
                    self.runner
                        .run_chunk(seq, *scan_len, &self.tables, &mut timing, &mut profile)
                        .unwrap();
                }
            }
        }
        timing.finder_s + timing.comparer_s + timing.transfer_s
    }
}

fn encoding_label(encoding: ChunkEncoding) -> &'static str {
    match encoding {
        ChunkEncoding::Raw => "raw",
        ChunkEncoding::Packed => "packed",
        ChunkEncoding::Adaptive => "adaptive",
    }
}

fn run_group(
    c: &mut Criterion,
    group_name: &str,
    assembly: &Assembly,
    encodings: &[ChunkEncoding],
) {
    let specs = [
        ("rvii", DeviceSpec::radeon_vii()),
        ("mi60", DeviceSpec::mi60()),
        ("mi100", DeviceSpec::mi100()),
    ];
    let mut group = c.benchmark_group(group_name);
    group.sample_size(5);
    for (name, spec) in specs {
        for &encoding in encodings {
            let label = encoding_label(encoding);
            let w = Workload::new(spec.clone(), assembly, encoding);
            // Warm pass fills the cache, second pass shows steady state.
            w.pass();
            let before = w.runner.traffic().h2d_bytes;
            let sim_s = w.pass();
            let uploaded = w.runner.traffic().h2d_bytes - before;
            let stats = w.cache.stats();
            println!(
                "{group_name}/{name}/{label}: {:.1}% hits, {} resident ({} B), \
                 {uploaded} B uploaded/pass, {sim_s:.6} s simulated/pass",
                100.0 * stats.hit_rate(),
                stats.len,
                stats.bytes_resident,
            );
            group.bench_function(format!("{name}/{label}"), |b| b.iter(|| w.pass()));
        }
    }
    group.finish();
}

fn bench_serve_cache(c: &mut Criterion) {
    let clean = synth::hg38_mini(GENOME_SCALE);
    run_group(
        c,
        "serve-cache",
        &clean,
        &[ChunkEncoding::Raw, ChunkEncoding::Packed],
    );

    // Exception-dense workload: soft-mask runs and degenerate bases push
    // the 2-bit encoding off its compare-safe fast path, so the contrast
    // that matters here is char fallback (raw) vs the adaptive 4-bit path.
    let masked = synth::hg38_masked_mini(GENOME_SCALE);
    run_group(
        c,
        "serve-cache-masked",
        &masked,
        &[ChunkEncoding::Raw, ChunkEncoding::Adaptive],
    );
}

criterion_group!(benches, bench_serve_cache);
criterion_main!(benches);
