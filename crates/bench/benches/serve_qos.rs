//! Micro-benchmark: the multi-tenant QoS front end.
//!
//! Three groups of measurements around `casoff_serve`'s admission path:
//! the weighted-deficit-round-robin queue draining a proportional 4/2/1
//! burst (pure submit/pop throughput), the same queue under 2x overload
//! where every excess submission must be quota-shed in O(1), and the
//! non-blocking ticket/poll front end riding the result-store hit path
//! through a live service — the steady-state overhead a repeat tenant
//! pays per job when no compute happens at all.

use casoff_bench::microbench::Criterion;
use casoff_bench::{criterion_group, criterion_main};
use casoff_serve::{
    FairJobQueue, Job, JobSpec, Poll, Service, ServiceConfig, TenantConfig, TenantId,
};

/// Uniform per-job admission cost for the queue-level groups.
const JOB_COST: u64 = 1_000;
/// Jobs per weight unit in one burst: tenant weights 4/2/1 submit
/// 64/32/16 jobs against a budget that exactly fits the mix.
const PER_WEIGHT: u64 = 16;

const WEIGHTS: [(TenantId, u32); 3] = [
    (TenantId(1), 4),
    (TenantId(2), 2),
    (TenantId(3), 1),
];

fn tenant_configs() -> Vec<TenantConfig> {
    WEIGHTS
        .iter()
        .map(|&(id, w)| TenantConfig::weighted(id, w))
        .collect()
}

fn spec_for(tenant: TenantId) -> JobSpec {
    JobSpec::new(
        "hg38-mini",
        b"NNNNNNNNNRG".to_vec(),
        b"ACGTACGTNNN".to_vec(),
        3,
    )
    .for_tenant(tenant)
}

/// Submit `overload`x the proportional 4/2/1 mix, then drain whatever was
/// admitted through the DRR scheduler. Returns (admitted, quota sheds,
/// budget sheds).
fn burst_and_drain(overload: u64) -> (u64, u64, u64) {
    let total_weight: u64 = WEIGHTS.iter().map(|&(_, w)| w as u64).sum();
    let budget = JOB_COST * PER_WEIGHT * total_weight;
    let queue = FairJobQueue::new(budget, &tenant_configs());
    let mut id = 0;
    let mut admitted = 0;
    for &(tenant, w) in &WEIGHTS {
        let spec = spec_for(tenant);
        for _ in 0..(w as u64 * PER_WEIGHT * overload) {
            id += 1;
            let job = Job {
                id,
                spec: spec.clone(),
                cost: JOB_COST,
            };
            if queue.try_submit(job).is_ok() {
                admitted += 1;
            }
        }
    }
    while let Some(job) = queue.try_pop() {
        queue.job_finished(job.spec.tenant, job.cost);
    }
    let (quota, over_budget) = queue.shed_counts();
    (admitted, quota, over_budget)
}

/// Pop counts per tenant over the first 35 DRR pops of a full mix —
/// printed so a fairness regression in the drain order is visible in the
/// bench log next to the throughput numbers.
fn drain_order_counts() -> [u64; 3] {
    let total_weight: u64 = WEIGHTS.iter().map(|&(_, w)| w as u64).sum();
    let queue = FairJobQueue::new(JOB_COST * PER_WEIGHT * total_weight, &tenant_configs());
    let mut id = 0;
    for &(tenant, w) in &WEIGHTS {
        let spec = spec_for(tenant);
        for _ in 0..(w as u64 * PER_WEIGHT) {
            id += 1;
            queue
                .try_submit(Job {
                    id,
                    spec: spec.clone(),
                    cost: JOB_COST,
                })
                .unwrap();
        }
    }
    let mut counts = [0u64; 3];
    for _ in 0..35 {
        let job = queue.try_pop().unwrap();
        counts[(job.spec.tenant.0 - 1) as usize] += 1;
    }
    counts
}

fn bench_serve_qos(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve-qos");
    group.sample_size(10);

    let (admitted, quota, over_budget) = burst_and_drain(1);
    let counts = drain_order_counts();
    println!(
        "serve-qos/queue: proportional burst admits {admitted} \
         ({quota} quota sheds / {over_budget} budget sheds); first 35 DRR pops \
         split {}/{}/{} across weights 4/2/1",
        counts[0], counts[1], counts[2]
    );
    group.bench_function("queue/drr-burst-drain", |b| b.iter(|| burst_and_drain(1)));

    let (admitted, quota, over_budget) = burst_and_drain(2);
    println!(
        "serve-qos/queue: 2x overload admits {admitted}, sheds {quota} on quota \
         and {over_budget} on budget"
    );
    group.bench_function("queue/overload-shed", |b| b.iter(|| burst_and_drain(2)));

    // Non-blocking front end on the result-store hit path: a live service,
    // every spec already cached, so each iteration measures the pure
    // ticket/poll overhead per job — admission, fair-queue accounting,
    // completion hub, ledger — with zero compute and zero blocking waits.
    let mut config = ServiceConfig::paper_pool();
    config.chunk_size = 512;
    config.tenants = tenant_configs();
    let service = Service::start(config, vec![genome::synth::hg38_mini(0.001)]);
    let specs: Vec<JobSpec> = WEIGHTS
        .iter()
        .flat_map(|&(tenant, _)| {
            (0..3).map(move |i| {
                let mut guide = vec![b"ACGT"[(tenant.0 as usize + i) % 4]; 8];
                guide.extend_from_slice(b"NNN");
                JobSpec::new("hg38-mini", b"NNNNNNNNNRG".to_vec(), guide, 3).for_tenant(tenant)
            })
        })
        .collect();
    let submit_and_poll = |specs: &[JobSpec]| {
        let mut pending: Vec<u64> = specs
            .iter()
            .map(|s| service.submit_ticket(s.clone()).unwrap().id)
            .collect();
        while !pending.is_empty() {
            pending.retain(|&id| !matches!(service.poll(id), Ok(Poll::Ready(_))));
        }
    };
    // Warm pass: computes each distinct spec once and fills the result
    // store; every bench iteration after this is hit-path only.
    submit_and_poll(&specs);
    group.bench_function("service/ticket-poll-hit", |b| {
        b.iter(|| submit_and_poll(&specs))
    });
    group.finish();

    let report = service.metrics();
    println!(
        "serve-qos/service: {} jobs admitted, {} blocking waits, \
         {:.1}% served from the result store",
        report.jobs_admitted,
        report.blocking_waits,
        100.0 * report.results.hits as f64
            / (report.results.hits + report.results.merges + report.results.misses).max(1) as f64,
    );
    service.shutdown();
}

criterion_group!(benches, bench_serve_qos);
criterion_main!(benches);
