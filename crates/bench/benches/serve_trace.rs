//! Micro-benchmark: the trace-driven load harness.
//!
//! Four costs on the serving hot paths the load harness adds: generating
//! a seeded multi-phase arrival schedule (thinned Poisson draws per
//! event), folding result digests for replay verification, feeding the
//! time-bucketed latency window ring and rolling its quantiles up, and
//! the autoscale controller's per-window decision (pure streak
//! arithmetic — this runs inside the watch loop every 250 ms in
//! production, so it had better be nanoseconds).

use std::time::Duration;

use cas_offinder::{OffTarget, Strand};
use casoff_bench::microbench::Criterion;
use casoff_bench::{criterion_group, criterion_main};
use casoff_serve::trace::{fold_results, schedule_digest, RESULT_DIGEST_SEED};
use casoff_serve::{
    ArrivalShape, AutoscaleConfig, Controller, HotSpot, LatencyWindows, PhaseSpec, TenantId,
    TraceSpec, WindowObservation,
};

/// Catalog size the generator draws spec indices from.
const CATALOG: usize = 32;

/// A three-phase spec shaped like the demo trace but denser, so one
/// generate() call is a real workload (~2k events).
fn dense_trace() -> TraceSpec {
    TraceSpec {
        seed: 0xBE9C4,
        phases: vec![
            PhaseSpec {
                duration_s: 10.0,
                shape: ArrivalShape::Diurnal {
                    base_rate_per_s: 60.0,
                    amplitude: 0.5,
                    period_s: 10.0,
                },
                tenants: vec![(TenantId(1), 3), (TenantId(2), 1)],
                hot_spot: None,
            },
            PhaseSpec {
                duration_s: 10.0,
                shape: ArrivalShape::Bursty {
                    on_rate_per_s: 200.0,
                    period_s: 2.0,
                    duty: 0.5,
                },
                tenants: vec![(TenantId(2), 2), (TenantId(3), 1)],
                hot_spot: Some(HotSpot {
                    fraction: 0.6,
                    span: 4,
                }),
            },
            PhaseSpec {
                duration_s: 5.0,
                shape: ArrivalShape::Steady { rate_per_s: 40.0 },
                tenants: vec![(TenantId(3), 1)],
                hot_spot: None,
            },
        ],
    }
}

/// A small, fixed result set standing in for one job's records.
fn sample_records() -> Vec<OffTarget> {
    (0..16)
        .map(|i| OffTarget {
            query: format!("ACGTACGT{i:03}").into_bytes(),
            chrom: "chr1".into(),
            position: 1000 + i * 37,
            strand: if i % 2 == 0 { Strand::Forward } else { Strand::Reverse },
            mismatches: (i % 4) as u16,
            site: format!("TTGCACGT{i:03}AGG").into_bytes(),
        })
        .collect()
}

/// One pass over the window ring: 512 completions bucketed across ~16
/// windows, then the rollup every report consumer pays.
fn fill_and_report(window_ns: u64) -> usize {
    let windows = LatencyWindows::new(Duration::from_nanos(window_ns), 64);
    for i in 0..512u64 {
        let now = i * window_ns / 32;
        windows.note_admitted(now);
        windows.note_depth(now, (i % 7) as usize);
        windows.note_completion(now, 1_000_000 + (i * 37_000) % 900_000);
    }
    windows.reports().len()
}

/// Drive the controller through a synthetic breach/recover cycle and
/// count the non-hold decisions.
fn controller_cycle(controller: &mut Controller) -> usize {
    let mut actions = 0;
    for step in 0..64u64 {
        let breach = (step / 8) % 2 == 0;
        let obs = WindowObservation {
            peak_predicted_delay: if breach {
                Duration::from_millis(900)
            } else {
                Duration::from_millis(40)
            },
            utilization: if breach { 0.95 } else { 0.2 },
            active_devices: 2,
        };
        if !matches!(
            controller.decide(&obs),
            casoff_serve::Decision::Hold
        ) {
            actions += 1;
        }
    }
    actions
}

fn bench_serve_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve-trace");
    group.sample_size(10);

    let spec = dense_trace();
    let events = spec.generate(CATALOG);
    assert_eq!(
        schedule_digest(&events),
        schedule_digest(&spec.generate(CATALOG)),
        "the generator must replay byte-identically"
    );
    println!(
        "serve-trace/generate: {} events over {:.0} s, schedule digest {:016x}",
        events.len(),
        spec.horizon_s(),
        schedule_digest(&events),
    );
    group.bench_function("trace/generate-2k-events", |b| {
        b.iter(|| spec.generate(CATALOG).len())
    });
    group.bench_function("trace/schedule-digest", |b| {
        b.iter(|| schedule_digest(&events))
    });

    let records = sample_records();
    group.bench_function("trace/fold-256-result-sets", |b| {
        b.iter(|| {
            (0..256).fold(RESULT_DIGEST_SEED, |d, _| fold_results(d, &records))
        })
    });

    let reports = fill_and_report(1_000_000);
    println!("serve-trace/windows: 512 completions roll up into {reports} windows");
    group.bench_function("metrics/window-ring-fill-report", |b| {
        b.iter(|| fill_and_report(1_000_000))
    });

    let mut controller = Controller::new(AutoscaleConfig::default());
    let actions = controller_cycle(&mut controller);
    println!("serve-trace/controller: 64-window breach/recover cycle emits {actions} actions");
    group.bench_function("autoscale/controller-64-windows", |b| {
        b.iter(|| controller_cycle(&mut controller))
    });

    group.finish();
}

criterion_group!(benches, bench_serve_trace);
criterion_main!(benches);
