//! Micro-benchmark: end-to-end pipelines (regenerates the relative shape of
//! Tables VIII and IX — OpenCL vs SYCL, and base vs opt3).

use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::{OptLevel, SearchInput};
use casoff_bench::microbench::Criterion;
use casoff_bench::{criterion_group, criterion_main};
use genome::synth;
use gpu_sim::DeviceSpec;

fn bench_pipelines(c: &mut Criterion) {
    let assembly = synth::hg19_mini(0.01);
    let input = SearchInput::canonical_example("hg19-mini");
    let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 15);

    // Print the simulated elapsed times once (the quantity the paper's
    // tables report).
    let ocl = pipeline::ocl::run(&assembly, &input, &config).unwrap();
    let sycl = pipeline::sycl::run(&assembly, &input, &config).unwrap();
    let opt3 = pipeline::sycl::run(&assembly, &input, &config.clone().opt(OptLevel::Opt3)).unwrap();
    println!(
        "simulated elapsed: OpenCL {:.6}s, SYCL {:.6}s (speedup {:.2}), SYCL opt3 {:.6}s (speedup {:.2})",
        ocl.timing.elapsed_s,
        sycl.timing.elapsed_s,
        ocl.timing.elapsed_s / sycl.timing.elapsed_s,
        opt3.timing.elapsed_s,
        sycl.timing.elapsed_s / opt3.timing.elapsed_s,
    );

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("opencl-base", |b| {
        b.iter(|| pipeline::ocl::run(&assembly, &input, &config).unwrap().timing.elapsed_s)
    });
    group.bench_function("sycl-base", |b| {
        b.iter(|| pipeline::sycl::run(&assembly, &input, &config).unwrap().timing.elapsed_s)
    });
    let opt3_cfg = config.clone().opt(OptLevel::Opt3);
    group.bench_function("sycl-opt3", |b| {
        b.iter(|| pipeline::sycl::run(&assembly, &input, &opt3_cfg).unwrap().timing.elapsed_s)
    });
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
