//! Micro-benchmark: the finder kernel over growing chunk sizes, plus the
//! finder share of kernel time (the paper's §IV.B observation that the
//! comparer, not the finder, is the hotspot).

use cas_offinder::kernels::{FinderKernel, FinderOutput};
use cas_offinder::CompiledSeq;
use casoff_bench::microbench::{BenchmarkId, Criterion, Throughput};
use casoff_bench::{criterion_group, criterion_main};
use gpu_sim::{Device, DeviceSpec, NdRange};

fn bench_finder(c: &mut Criterion) {
    let mut group = c.benchmark_group("finder");
    group.sample_size(10);
    let pattern = CompiledSeq::compile(b"NNNNNNNNNNNNNNNNNNNNNRG");

    for bits in [14usize, 16, 18] {
        let len = 1usize << bits;
        let device = Device::new(DeviceSpec::mi100());
        let seq: Vec<u8> = (0..len)
            .map(|i| b"ACGT"[(i.wrapping_mul(2654435761) >> 13) % 4])
            .collect();
        let chr = device.alloc_from_slice(&seq).unwrap();
        let pat = device.alloc_constant_from_slice(pattern.comp()).unwrap();
        let pat_index = device
            .alloc_constant_from_slice(pattern.comp_index())
            .unwrap();
        let out = FinderOutput::allocate(&device, len).unwrap();
        let (kernel, _) = FinderKernel::new(chr, pat, pat_index, out, len, len, &pattern);
        let nd = NdRange::linear_cover(len, 256);

        let report = device.launch(&kernel, nd).unwrap();
        println!(
            "finder {len} positions: simulated {:.6}s, {} candidates",
            report.sim_time_s,
            kernel.out.count_matches()
        );

        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &(), |b, _| {
            b.iter(|| {
                kernel.out.count.fill(0);
                device.launch(&kernel, nd).unwrap().sim_time_s
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_finder);
criterion_main!(benches);
