//! Micro-benchmark: planned placement (`serve::shard`) against the
//! emergent residency affinity it replaces.
//!
//! Two services over the same assembly, differing only in placement
//! policy: `EarliestCompletion`, where residency discounts steer repeat
//! chunks back to whichever device happened to serve them first, and
//! `Planned`, where a `ShardPlan` partitions the chunk space up front,
//! workers prefetch their partitions on first touch, and batches go to
//! their planned owner. Cold measures a first whole-genome scan on a
//! fresh service (plan + prefetch overhead included); post-warmup
//! measures the steady state the plan exists for, where every chunk
//! should already sit on its owner. The printed resident-hit rates are
//! the comparison that matters: emergent affinity converges to whatever
//! the first race produced, the plan converges to its partition.

use casoff_bench::microbench::Criterion;
use casoff_bench::{criterion_group, criterion_main};
use casoff_serve::{ChunkEncoding, JobSpec, MetricsReport, Placement, Service, ServiceConfig};
use genome::synth::hg38_mini;

/// Scan positions per chunk — the production size the sharding demo uses.
const CHUNK_SIZE: usize = 1 << 13;
/// Assembly scale: enough chunks that every device owns a partition worth
/// prefetching, small enough that a cold service start stays cheap.
const GENOME_SCALE: f64 = 0.02;
/// Whole-genome scans per measured pass, one distinct guide each.
const SCANS: usize = 4;

fn service_with(placement: Placement) -> Service {
    let mut config = ServiceConfig::paper_pool();
    config.chunk_size = CHUNK_SIZE;
    config.cache_encoding = ChunkEncoding::Packed;
    config.placement = placement;
    config.max_batch = 1;
    config.resident_chunks = 64;
    config.cache_bytes = 1 << 21;
    // Every scan must compute: a result-store hit would measure the cache,
    // not the placement.
    config.result_cache_bytes = 0;
    Service::start(config, vec![hg38_mini(GENOME_SCALE)])
}

/// Submit `SCANS` whole-genome jobs with distinct guides and wait for all.
fn scan(service: &Service) {
    let ids: Vec<u64> = (0..SCANS)
        .map(|i| {
            let mut guide = vec![b"ACGT"[i % 4]; 8];
            guide.extend_from_slice(b"NNN");
            service
                .submit(JobSpec::new(
                    "hg38-mini",
                    b"NNNNNNNNNRG".to_vec(),
                    guide,
                    3,
                ))
                .expect("bench service accepts every submission")
        })
        .collect();
    for id in ids {
        service.wait(id).expect("bench jobs complete");
    }
}

/// Resident hits and misses summed over the fleet since `since`.
fn hit_rate_since(report: &MetricsReport, since: &MetricsReport) -> f64 {
    let hits: u64 = report.devices.iter().map(|d| d.resident_hits).sum::<u64>()
        - since.devices.iter().map(|d| d.resident_hits).sum::<u64>();
    let misses: u64 = report.devices.iter().map(|d| d.resident_misses).sum::<u64>()
        - since.devices.iter().map(|d| d.resident_misses).sum::<u64>();
    hits as f64 / (hits + misses).max(1) as f64
}

fn bench_serve_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve-sharding");
    group.sample_size(5);

    // Cold: fresh service, one scan, shutdown — the plan computation and
    // one-pass prefetch are part of the planned bill here.
    for (label, placement) in [
        ("emergent", Placement::EarliestCompletion),
        ("planned", Placement::Planned),
    ] {
        group.bench_function(format!("cold-scan/{label}"), |b| {
            b.iter(|| {
                let service = service_with(placement);
                scan(&service);
                service.shutdown();
            })
        });
    }

    // Post-warmup: one warm scan settles residency (and, under the plan,
    // runs the one-pass prefetch), then every measured pass scans a fully
    // resident fleet.
    for (label, placement) in [
        ("emergent", Placement::EarliestCompletion),
        ("planned", Placement::Planned),
    ] {
        let service = service_with(placement);
        scan(&service);
        let warmed = service.metrics();
        group.bench_function(format!("warm-scan/{label}"), |b| b.iter(|| scan(&service)));
        let report = service.metrics();
        print!(
            "serve-sharding/{label}: {:.1}% post-warmup resident hits",
            100.0 * hit_rate_since(&report, &warmed)
        );
        if placement == Placement::Planned {
            print!(
                " ({} planned hits / {} spills, {} prefetch uploads)",
                report.planned_hits, report.spill_fallbacks, report.prefetch_uploads
            );
        }
        println!();
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_serve_sharding);
criterion_main!(benches);
