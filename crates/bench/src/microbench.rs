//! A minimal, std-only micro-benchmark harness with a Criterion-shaped API.
//!
//! The workspace builds with no network access, so the real `criterion`
//! crate is unavailable; the bench targets under `benches/` instead import
//! this module. It reproduces the slice of Criterion's surface they use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`] and
//! the `criterion_group!`/`criterion_main!` macros — and prints mean/min
//! wall time (plus throughput when configured) per benchmark. No statistics
//! beyond that: these benches exist to chart *relative* shapes of the
//! simulator, not to detect 1% regressions.
//!
//! Set `CASOFF_BENCH_SAMPLES` to override every group's sample count, e.g.
//! `CASOFF_BENCH_SAMPLES=3 cargo bench -p casoff-bench`.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions by `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named benchmark identifier: `group/function` or `group/function/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units the measured time is normalized against in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of benchmarks sharing a name prefix and measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed iterations per benchmark (overridable via the
    /// `CASOFF_BENCH_SAMPLES` environment variable).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Normalize subsequent report lines against this per-iteration volume.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure `f`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        let samples = std::env::var("CASOFF_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.sample_size)
            .max(1);
        // One untimed warm-up pass, then the timed samples.
        f(&mut b);
        b.reset();
        for _ in 0..samples {
            f(&mut b);
        }
        self.report(&id, &b, samples);
        self
    }

    /// Measure `f` with an input borrowed for the benchmark's duration.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group. Purely cosmetic here (Criterion parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher, samples: usize) {
        let mean = b.total.as_secs_f64() / b.iters.max(1) as f64;
        let min = b.min.map(|d| d.as_secs_f64()).unwrap_or(mean);
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(n) => format!(
                "  thrpt: {}/s",
                fmt_bytes((n as f64 / mean.max(f64::MIN_POSITIVE)) as u64)
            ),
            Throughput::Elements(n) => format!(
                "  thrpt: {:.3} Melem/s",
                n as f64 / mean.max(f64::MIN_POSITIVE) / 1e6
            ),
        });
        println!(
            "{}/{:<24} time: [mean {} min {}] ({samples} samples){}",
            self.name,
            id.id,
            fmt_duration(mean),
            fmt_duration(min),
            rate.unwrap_or_default()
        );
    }
}

/// Timer handle passed to the closure under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    total: Duration,
    min: Option<Duration>,
}

impl Bencher {
    /// Time one execution of `routine`, accumulating into this sample set.
    /// The return value is passed through [`std::hint::black_box`] so the
    /// optimizer cannot delete the work.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        let elapsed = start.elapsed();
        self.iters += 1;
        self.total += elapsed;
        self.min = Some(self.min.map_or(elapsed, |m| m.min(elapsed)));
    }

    fn reset(&mut self) {
        *self = Bencher::default();
    }
}

fn fmt_duration(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

/// Collect benchmark functions into a runnable group function
/// (`criterion_group!(benches, bench_a, bench_b)` defines `fn benches()`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::microbench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_samples() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        b.iter(|| std::thread::sleep(Duration::from_millis(1)));
        assert_eq!(b.iters, 2);
        assert!(b.total >= Duration::from_millis(1));
        assert!(b.min.unwrap() <= b.total);
    }

    #[test]
    fn groups_run_their_functions() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        let mut calls = 0;
        group.bench_function("counted", |b| {
            calls += 1;
            b.iter(|| ());
        });
        group.bench_with_input(BenchmarkId::new("with-input", 7), &7, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        // 1 warm-up + 2 samples.
        assert_eq!(calls, 3);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_duration(2.5), "2.500 s");
        assert_eq!(fmt_duration(2.5e-3), "2.500 ms");
        assert_eq!(fmt_duration(2.5e-6), "2.500 µs");
        assert_eq!(fmt_duration(2.5e-9), "2.5 ns");
        assert_eq!(fmt_bytes(512), "512.0 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
    }
}
