//! Table X: resource usage and occupancy of the comparer kernel variants,
//! from the pseudo-ISA compiler and the occupancy model.

use cas_offinder::kernels::ComparerKernel;
use cas_offinder::OptLevel;
use gpu_sim::isa::{compile, ResourceUsage};
use gpu_sim::occupancy::occupancy;
use gpu_sim::{DeviceSpec, NdRange};

use crate::{deviation_pct, paper, TextTable};

/// Result of the Table X experiment, per variant (base, opt1..opt4).
#[derive(Debug, Clone)]
pub struct Table10 {
    /// Modeled static resources.
    pub resources: [ResourceUsage; 5],
    /// Modeled occupancy (waves/SIMD) at the SYCL launch geometry.
    pub occupancy: [u32; 5],
}

impl Table10 {
    /// Run the experiment (pure modeling; no simulation needed).
    pub fn run() -> Table10 {
        let spec = DeviceSpec::mi100();
        // Work-group geometry of the SYCL application; plen 23 like the
        // canonical input, so LDS per group is 23 * 2 * (1 + 4) = 230 B.
        let nd = NdRange::linear(1 << 20, 256);
        let resources: Vec<ResourceUsage> = OptLevel::ALL
            .iter()
            .map(|&opt| {
                let mut r = compile(&ComparerKernel::code_model_for(opt));
                r.lds_bytes = 230;
                r
            })
            .collect();
        let occupancy: Vec<u32> = resources
            .iter()
            .map(|r| occupancy(r, &nd, &spec).waves_per_simd)
            .collect();
        Table10 {
            resources: resources.try_into().expect("five variants"),
            occupancy: occupancy.try_into().expect("five variants"),
        }
    }

    /// Render paper-vs-measured.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table X — resource usage and occupancy of the comparer variants",
            &[
                "metric", "base", "opt1", "opt2", "opt3", "opt4", "paper", "max dev %",
            ],
        );
        let rows: [(&str, Vec<u32>, &[u32; 5]); 4] = [
            (
                "code length (B)",
                self.resources.iter().map(|r| r.code_bytes).collect(),
                &paper::TABLE10_CODE_BYTES,
            ),
            (
                "#VGPRs",
                self.resources.iter().map(|r| r.vgprs).collect(),
                &paper::TABLE10_VGPRS,
            ),
            (
                "#SGPRs",
                self.resources.iter().map(|r| r.sgprs).collect(),
                &paper::TABLE10_SGPRS,
            ),
            ("occupancy", self.occupancy.to_vec(), &paper::TABLE10_OCCUPANCY),
        ];
        for (name, measured, expected) in rows {
            let max_dev = measured
                .iter()
                .zip(expected.iter())
                .map(|(&m, &e)| deviation_pct(m as f64, e as f64).abs())
                .fold(0.0f64, f64::max);
            let mut cells = vec![name.to_owned()];
            cells.extend(measured.iter().map(u32::to_string));
            cells.push(format!("{expected:?}"));
            cells.push(format!("{max_dev:.1}"));
            t.row(cells);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_and_occupancy_match_exactly() {
        let t = Table10::run();
        let vgprs: Vec<u32> = t.resources.iter().map(|r| r.vgprs).collect();
        let sgprs: Vec<u32> = t.resources.iter().map(|r| r.sgprs).collect();
        assert_eq!(vgprs, paper::TABLE10_VGPRS);
        assert_eq!(sgprs, paper::TABLE10_SGPRS);
        assert_eq!(t.occupancy, paper::TABLE10_OCCUPANCY);
    }

    #[test]
    fn code_bytes_within_ten_percent() {
        let t = Table10::run();
        for (r, &expected) in t.resources.iter().zip(&paper::TABLE10_CODE_BYTES) {
            let dev = deviation_pct(r.code_bytes as f64, expected as f64).abs();
            assert!(dev < 10.0, "{} vs {} ({dev:.1}%)", r.code_bytes, expected);
        }
    }
}
