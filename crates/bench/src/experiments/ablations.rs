//! Ablations beyond the paper's tables: the design choices DESIGN.md marks
//! with ♦, plus the extensions (2-bit packing, multi-GPU).

use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::OptLevel;
use gpu_sim::DeviceSpec;

use crate::{fmt_s, fmt_x, Runner, TextTable};

/// Results of the ablation suite.
#[derive(Debug, Clone)]
pub struct Ablations {
    /// Comparer kernel seconds per work-group size (64/128/256/512),
    /// baseline comparer on MI100, hg19 dataset.
    pub workgroup: Vec<(usize, f64)>,
    /// (char comparer seconds, 2-bit comparer seconds) on MI100, hg19.
    pub twobit: (f64, f64),
    /// Elapsed seconds for 1..=4 MI100 devices.
    pub multi_gpu: Vec<(usize, f64)>,
}

impl Ablations {
    /// Run the suite on the runner's workload.
    pub fn run(runner: &mut Runner) -> Ablations {
        let workload = runner.workload();
        let assembly = &workload.hg19;
        let input = workload.input(0);
        let chunk = 1 << 17;

        // ♦ Work-group size (the Table VIII mechanism).
        let workgroup = [64usize, 128, 256, 512]
            .into_iter()
            .map(|wgs| {
                let config = PipelineConfig::new(DeviceSpec::mi100())
                    .chunk_size(chunk)
                    .work_group_size(Some(wgs));
                let report = pipeline::sycl::run(assembly, &input, &config).expect("pipeline");
                (wgs, report.timing.comparer_s)
            })
            .collect();

        // Extension: 2-bit packed genome (related work [21]).
        let config = PipelineConfig::new(DeviceSpec::mi100())
            .chunk_size(chunk)
            .opt(OptLevel::Opt3);
        let chars = pipeline::sycl::run(assembly, &input, &config).expect("pipeline");
        let packed = pipeline::twobit::run(assembly, &input, &config).expect("pipeline");
        let twobit = (chars.timing.comparer_s, packed.timing.comparer_s);

        // Extension: multi-GPU scaling.
        let multi_gpu = (1usize..=4)
            .map(|n| {
                let fleet = vec![DeviceSpec::mi100(); n];
                let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(chunk / 4);
                let (report, _) =
                    pipeline::multi::run(assembly, &input, &config, &fleet).expect("pipeline");
                (n, report.timing.elapsed_s)
            })
            .collect();

        Ablations {
            workgroup,
            twobit,
            multi_gpu,
        }
    }

    /// Render the three ablations.
    pub fn render(&self) -> Vec<TextTable> {
        let mut wg = TextTable::new(
            "Ablation — work-group size (baseline comparer, MI100, hg19-mini)",
            &["work-group", "comparer (sim s)", "vs 256"],
        );
        let base_256 = self
            .workgroup
            .iter()
            .find(|&&(w, _)| w == 256)
            .map(|&(_, t)| t)
            .unwrap_or(1.0);
        for &(wgs, t) in &self.workgroup {
            wg.row(vec![wgs.to_string(), fmt_s(t), fmt_x(t / base_256)]);
        }

        let mut tb = TextTable::new(
            "Extension — 2-bit packed genome (opt3 comparer, MI100, hg19-mini; related work [21])",
            &["kernel", "comparer (sim s)", "speedup"],
        );
        tb.row(vec!["char".into(), fmt_s(self.twobit.0), fmt_x(1.0)]);
        tb.row(vec![
            "2-bit".into(),
            fmt_s(self.twobit.1),
            fmt_x(self.twobit.0 / self.twobit.1),
        ]);

        let mut mg = TextTable::new(
            "Extension — multi-GPU scaling (MI100 fleet, hg19-mini)",
            &["devices", "elapsed (sim s)", "scaling"],
        );
        let single = self.multi_gpu.first().map(|&(_, t)| t).unwrap_or(1.0);
        for &(n, t) in &self.multi_gpu {
            mg.row(vec![n.to_string(), fmt_s(t), fmt_x(single / t)]);
        }

        vec![wg, tb, mg]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn ablation_shapes_hold() {
        let mut runner = Runner::new(Workload::new(0.01), 1 << 16);
        let a = Ablations::run(&mut runner);

        // Smaller groups pay staging/dispatch more often.
        let t = |w: usize| a.workgroup.iter().find(|&&(x, _)| x == w).unwrap().1;
        assert!(t(64) > t(256), "workgroup: {:?}", a.workgroup);

        // Packing beats chars.
        assert!(a.twobit.1 < a.twobit.0, "2-bit: {:?}", a.twobit);

        // More devices, faster runs.
        assert!(a.multi_gpu[3].1 < a.multi_gpu[0].1 * 0.5, "{:?}", a.multi_gpu);

        let rendered = a.render();
        assert_eq!(rendered.len(), 3);
        assert!(rendered[1].to_string().contains("2-bit"));
    }
}
