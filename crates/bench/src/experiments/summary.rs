//! The reproduction scorecard: one row per shape claim of the paper's
//! evaluation, each checked against its target band.

use cas_offinder::{Api, OptLevel};

use crate::experiments::{fig2::Fig2, table1::Table1, table10::Table10, table8::Table8, table9::Table9};
use crate::{paper, Runner, TextTable};

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// What the paper claims.
    pub claim: String,
    /// The acceptance band.
    pub band: String,
    /// What we measured (worst case across configurations).
    pub measured: String,
    /// Whether the measurement falls in the band.
    pub pass: bool,
}

/// The full scorecard.
#[derive(Debug, Clone)]
pub struct Summary {
    /// All verdicts, in paper order.
    pub verdicts: Vec<Verdict>,
}

impl Summary {
    /// Run every experiment and score it.
    pub fn run(runner: &mut Runner) -> Summary {
        let mut verdicts = Vec::new();
        let mut check = |claim: &str, band: &str, measured: String, pass: bool| {
            verdicts.push(Verdict {
                claim: claim.to_owned(),
                band: band.to_owned(),
                measured,
                pass,
            });
        };

        // Table I.
        let t1 = Table1::run();
        check(
            "Table I: OpenCL needs 13 logical steps",
            "= 13",
            t1.opencl_steps.len().to_string(),
            t1.opencl_steps.len() == paper::OPENCL_STEPS,
        );
        check(
            "Table I: SYCL needs 8 logical steps",
            "= 8",
            t1.sycl_steps.len().to_string(),
            t1.sycl_steps.len() == paper::SYCL_STEPS,
        );

        // Table X.
        let t10 = Table10::run();
        let vgprs: Vec<u32> = t10.resources.iter().map(|r| r.vgprs).collect();
        let sgprs: Vec<u32> = t10.resources.iter().map(|r| r.sgprs).collect();
        check(
            "Table X: VGPRs 64,64,64,57,82",
            "exact",
            format!("{vgprs:?}"),
            vgprs == paper::TABLE10_VGPRS,
        );
        check(
            "Table X: SGPRs 22,22,22,10,10",
            "exact",
            format!("{sgprs:?}"),
            sgprs == paper::TABLE10_SGPRS,
        );
        check(
            "Table X: occupancy 10,10,10,10,9",
            "exact",
            format!("{:?}", t10.occupancy),
            t10.occupancy == paper::TABLE10_OCCUPANCY,
        );
        let max_code_dev = t10
            .resources
            .iter()
            .zip(&paper::TABLE10_CODE_BYTES)
            .map(|(r, &e)| ((r.code_bytes as f64 - e as f64) / e as f64).abs())
            .fold(0.0f64, f64::max);
        check(
            "Table X: code bytes within 10% of 6064..3660",
            "< 10%",
            format!("{:.1}%", max_code_dev * 100.0),
            max_code_dev < 0.10,
        );

        // Table VIII.
        let t8 = Table8::run(runner);
        let speedups: Vec<f64> = (0..2)
            .flat_map(|d| (0..3).map(move |g| (d, g)))
            .map(|(d, g)| t8.cells[d][g].speedup())
            .collect();
        let (min8, max8) = bounds(&speedups);
        check(
            "Table VIII: SYCL over OpenCL speedup in 1.00-1.20",
            "0.98..=1.35",
            format!("{min8:.2}..{max8:.2}"),
            min8 >= 0.98 && max8 <= 1.35,
        );

        // Fig. 2.
        let f2 = Fig2::run(runner);
        let rems: Vec<f64> = (0..2)
            .flat_map(|d| (0..3).map(move |g| (d, g)))
            .map(|(d, g)| f2.remaining(d, g, 3))
            .collect();
        let (rmin, rmax) = bounds(&rems);
        check(
            "Fig. 2: opt3 leaves 72-79% of base kernel time",
            "0.55..=0.90",
            format!("{rmin:.2}..{rmax:.2}"),
            rmin >= 0.55 && rmax <= 0.90,
        );
        let cliffs: Vec<f64> = (0..2)
            .flat_map(|d| (0..3).map(move |g| (d, g)))
            .map(|(d, g)| f2.opt4_over_opt3(d, g))
            .collect();
        let (cmin, cmax) = bounds(&cliffs);
        check(
            "Fig. 2: opt4 nearly doubles the opt3 kernel time",
            "1.4..=2.4",
            format!("{cmin:.2}..{cmax:.2}"),
            cmin >= 1.4 && cmax <= 2.4,
        );

        // Hotspot shares.
        let share = runner
            .report(2, 0, Api::Sycl, OptLevel::Base)
            .timing
            .clone();
        check(
            "§IV.B: comparer dominates kernel time (~98%)",
            "> 85%",
            format!("{:.1}%", share.comparer_kernel_share() * 100.0),
            share.comparer_kernel_share() > 0.85,
        );
        check(
            "§IV.B: comparer is 50-80% of elapsed time",
            "40%..85%",
            format!("{:.1}%", share.comparer_elapsed_share() * 100.0),
            (0.40..=0.85).contains(&share.comparer_elapsed_share()),
        );

        // Table IX.
        let t9 = Table9::run(runner);
        let opt_speedups: Vec<f64> = (0..2)
            .flat_map(|d| (0..3).map(move |g| (d, g)))
            .map(|(d, g)| t9.cells[d][g].speedup())
            .collect();
        let (omin, omax) = bounds(&opt_speedups);
        check(
            "Table IX: opt3 end-to-end speedup in 1.09-1.23",
            "1.03..=1.40",
            format!("{omin:.2}..{omax:.2}"),
            omin >= 1.03 && omax <= 1.40,
        );

        Summary { verdicts }
    }

    /// True when every claim passed.
    pub fn all_pass(&self) -> bool {
        self.verdicts.iter().all(|v| v.pass)
    }

    /// Render the scorecard.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Reproduction scorecard — every shape claim of the evaluation",
            &["claim", "band", "measured", "verdict"],
        );
        for v in &self.verdicts {
            t.row(vec![
                v.claim.clone(),
                v.band.clone(),
                v.measured.clone(),
                if v.pass { "PASS" } else { "FAIL" }.to_owned(),
            ]);
        }
        t
    }
}

fn bounds(values: &[f64]) -> (f64, f64) {
    values.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
        (lo.min(v), hi.max(v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn every_claim_passes() {
        let mut runner = Runner::new(Workload::new(0.02), 1 << 18);
        let summary = Summary::run(&mut runner);
        assert_eq!(summary.verdicts.len(), 12);
        for v in &summary.verdicts {
            assert!(v.pass, "claim failed: {} (measured {})", v.claim, v.measured);
        }
        assert!(summary.all_pass());
        let text = summary.render().to_string();
        assert!(text.contains("PASS"));
        assert!(!text.contains("FAIL"));
    }
}
