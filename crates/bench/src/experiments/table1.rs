//! Table I: programming steps in OpenCL and SYCL.
//!
//! Runs both host pipelines once and reads back their step logs: the OpenCL
//! application must exercise all thirteen logical steps, the SYCL
//! application all eight.

use cas_offinder::pipeline::{ocl, sycl, PipelineConfig};
use genome::synth;
use gpu_sim::DeviceSpec;

use crate::{paper, TextTable};

/// Result of the Table I experiment.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The distinct OpenCL steps, in first-occurrence order.
    pub opencl_steps: Vec<String>,
    /// The distinct SYCL steps, in first-occurrence order.
    pub sycl_steps: Vec<String>,
}

impl Table1 {
    /// Run the experiment.
    ///
    /// # Panics
    ///
    /// Panics if either pipeline fails on the tiny probe workload.
    pub fn run() -> Table1 {
        let assembly = synth::hg19_mini(0.002);
        let input = cas_offinder::SearchInput::canonical_example("hg19-mini");
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 14);

        let ocl_log = ocl::step_log_of(&assembly, &input, &config)
            .expect("opencl probe pipeline failed");
        let sycl_log = sycl::step_log_of(&assembly, &input, &config)
            .expect("sycl probe pipeline failed");

        Table1 {
            opencl_steps: ocl_log.steps().iter().map(|s| s.to_string()).collect(),
            sycl_steps: sycl_log.steps().iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Render paper-vs-measured.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table I — logical programming steps (paper: OpenCL 13, SYCL 8)",
            &["model", "paper", "measured", "steps exercised"],
        );
        t.row(vec![
            "OpenCL".into(),
            paper::OPENCL_STEPS.to_string(),
            self.opencl_steps.len().to_string(),
            self.opencl_steps.join("; "),
        ]);
        t.row(vec![
            "SYCL".into(),
            paper::SYCL_STEPS.to_string(),
            self.sycl_steps.len().to_string(),
            self.sycl_steps.join("; "),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_counts_match_table_i() {
        let t = Table1::run();
        assert_eq!(t.opencl_steps.len(), paper::OPENCL_STEPS);
        assert_eq!(t.sycl_steps.len(), paper::SYCL_STEPS);
        let rendered = t.render().to_string();
        assert!(rendered.contains("platform query"));
        assert!(rendered.contains("device selector class"));
    }
}
