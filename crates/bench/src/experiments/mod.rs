//! One module per table/figure of the paper's evaluation section.

pub mod ablations;
pub mod fig2;
pub mod summary;
pub mod table1;
pub mod table10;
pub mod table8;
pub mod table9;
