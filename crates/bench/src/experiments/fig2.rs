//! Fig. 2: comparer kernel execution time under the cumulative
//! optimizations (base, opt1..opt4), per device and dataset.
//!
//! Shape targets: kernel time falls monotonically base→opt3, the opt3
//! reduction lands near the paper's 21–28%, and opt4 regresses to roughly
//! twice the opt3 time despite its smaller code, because occupancy drops
//! from 10 to 9 waves/SIMD.

use cas_offinder::{Api, OptLevel};

use crate::{fmt_s, fmt_x, paper, Runner, TextTable};

/// Result of the Fig. 2 experiment: `kernel_s[dataset][device][opt]`.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Total simulated comparer kernel seconds per configuration.
    pub kernel_s: [[[f64; 5]; 3]; 2],
    /// Comparer share of total kernel time at base (paper: ~98%).
    pub comparer_kernel_share: [[f64; 3]; 2],
}

impl Fig2 {
    /// Run the experiment (30 pipeline simulations, cached).
    pub fn run(runner: &mut Runner) -> Fig2 {
        let mut kernel_s = [[[0.0f64; 5]; 3]; 2];
        let mut share = [[0.0f64; 3]; 2];
        for d in 0..2 {
            for g in 0..3 {
                for (o, &opt) in OptLevel::ALL.iter().enumerate() {
                    let timing = &runner.report(g, d, Api::Sycl, opt).timing;
                    kernel_s[d][g][o] = timing.comparer_s;
                    if opt == OptLevel::Base {
                        share[d][g] = timing.comparer_kernel_share();
                    }
                }
            }
        }
        Fig2 {
            kernel_s,
            comparer_kernel_share: share,
        }
    }

    /// Remaining fraction of base kernel time at `opt` for a configuration.
    pub fn remaining(&self, dataset: usize, device: usize, opt: usize) -> f64 {
        self.kernel_s[dataset][device][opt] / self.kernel_s[dataset][device][0]
    }

    /// opt4/opt3 kernel-time ratio for a configuration.
    pub fn opt4_over_opt3(&self, dataset: usize, device: usize) -> f64 {
        self.kernel_s[dataset][device][4] / self.kernel_s[dataset][device][3]
    }

    /// Export the figure's data series as CSV
    /// (`dataset,device,opt,kernel_s,remaining`), ready for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("dataset,device,opt,kernel_s,remaining\n");
        for d in 0..2 {
            for g in 0..3 {
                for (o, opt) in cas_offinder::OptLevel::ALL.iter().enumerate() {
                    out.push_str(&format!(
                        "{},{},{},{:.9},{:.4}\n",
                        paper::DATASETS[d],
                        paper::DEVICES[g],
                        opt.label(),
                        self.kernel_s[d][g][o],
                        self.remaining(d, g, o),
                    ));
                }
            }
        }
        out
    }

    /// Render paper-vs-measured.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig. 2 — comparer kernel time vs cumulative optimizations \
             (simulated seconds; `rem` = fraction of base remaining)",
            &[
                "dataset",
                "device",
                "base",
                "opt1",
                "opt2",
                "opt3",
                "opt4",
                "opt3 rem",
                "paper opt3 rem",
                "opt4/opt3",
                "paper opt4/opt3",
                "comparer share",
            ],
        );
        for d in 0..2 {
            for g in 0..3 {
                let k = &self.kernel_s[d][g];
                t.row(vec![
                    paper::DATASETS[d].into(),
                    paper::DEVICES[g].into(),
                    fmt_s(k[0]),
                    fmt_s(k[1]),
                    fmt_s(k[2]),
                    fmt_s(k[3]),
                    fmt_s(k[4]),
                    fmt_x(self.remaining(d, g, 3)),
                    fmt_x(paper::FIG2_OPT3_REMAINING[d][g]),
                    fmt_x(self.opt4_over_opt3(d, g)),
                    fmt_x(paper::FIG2_OPT4_OVER_OPT3),
                    format!("{:.1}%", self.comparer_kernel_share[d][g] * 100.0),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn figure_2_shapes_hold() {
        let mut runner = Runner::new(Workload::new(0.02), 1 << 18);
        let f = Fig2::run(&mut runner);
        for d in 0..2 {
            for g in 0..3 {
                let k = &f.kernel_s[d][g];
                // Monotone improvement base..opt3.
                for w in k[..4].windows(2) {
                    assert!(w[1] < w[0], "kernel times {k:?}");
                }
                // opt3 cut in a generous band around the paper's 21-28%.
                let rem = f.remaining(d, g, 3);
                assert!(
                    (0.55..=0.90).contains(&rem),
                    "opt3 remaining fraction {rem:.3}"
                );
                // The opt4 occupancy cliff.
                let cliff = f.opt4_over_opt3(d, g);
                assert!(
                    (1.4..=2.4).contains(&cliff),
                    "opt4/opt3 ratio {cliff:.3}"
                );
                // The comparer dominates kernel time.
                assert!(
                    f.comparer_kernel_share[d][g] > 0.85,
                    "comparer share {:.3}",
                    f.comparer_kernel_share[d][g]
                );
            }
        }
        // CSV export covers every series point.
        let csv = f.to_csv();
        assert_eq!(csv.lines().count(), 1 + 2 * 3 * 5);
        assert!(csv.starts_with("dataset,device,opt"));
        assert!(csv.contains("hg38,MI100,opt4"));
    }
}
