//! Table VIII: elapsed time of the OpenCL and SYCL applications on the
//! three GPUs and two datasets.
//!
//! Shape target: SYCL ≥ OpenCL everywhere, with speedups in roughly the
//! paper's 1.00–1.19 band, and the hg38 runs slower than the hg19 runs.

use cas_offinder::{Api, OptLevel};

use crate::{deviation_pct, fmt_s, fmt_x, paper, Runner, TextTable};

/// One cell of Table VIII.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Simulated OpenCL elapsed seconds.
    pub ocl_s: f64,
    /// Simulated SYCL elapsed seconds.
    pub sycl_s: f64,
}

impl Cell {
    /// SYCL speedup over OpenCL.
    pub fn speedup(&self) -> f64 {
        self.ocl_s / self.sycl_s
    }
}

/// Result of the Table VIII experiment: `cells[dataset][device]`.
#[derive(Debug, Clone)]
pub struct Table8 {
    /// Measured cells.
    pub cells: [[Cell; 3]; 2],
    /// Extrapolation factors to full-genome scale per dataset.
    pub extrapolation: [f64; 2],
}

impl Table8 {
    /// Run the experiment (6 OpenCL + 6 SYCL pipeline simulations, cached).
    pub fn run(runner: &mut Runner) -> Table8 {
        let extrapolation = [
            runner.workload().extrapolation_factor(0),
            runner.workload().extrapolation_factor(1),
        ];
        let mut cells = [[Cell {
            ocl_s: 0.0,
            sycl_s: 0.0,
        }; 3]; 2];
        for (d, row) in cells.iter_mut().enumerate() {
            for (g, cell) in row.iter_mut().enumerate() {
                cell.ocl_s = runner
                    .report(g, d, Api::OpenCl, OptLevel::Base)
                    .timing
                    .elapsed_s;
                cell.sycl_s = runner
                    .report(g, d, Api::Sycl, OptLevel::Base)
                    .timing
                    .elapsed_s;
            }
        }
        Table8 {
            cells,
            extrapolation,
        }
    }

    /// Render paper-vs-measured.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table VIII — elapsed time, OpenCL vs SYCL (simulated seconds on miniature; \
             speedup = OCL/SYCL)",
            &[
                "dataset",
                "device",
                "OCL (sim s)",
                "SYCL (sim s)",
                "speedup",
                "paper speedup",
                "dev %",
                "SYCL full-genome est (s)",
            ],
        );
        for d in 0..2 {
            for g in 0..3 {
                let cell = self.cells[d][g];
                let paper_speedup = paper::TABLE8_OPENCL_S[d][g] / paper::TABLE8_SYCL_S[d][g];
                t.row(vec![
                    paper::DATASETS[d].into(),
                    paper::DEVICES[g].into(),
                    fmt_s(cell.ocl_s),
                    fmt_s(cell.sycl_s),
                    fmt_x(cell.speedup()),
                    fmt_x(paper_speedup),
                    format!("{:+.1}", deviation_pct(cell.speedup(), paper_speedup)),
                    fmt_x(cell.sycl_s * self.extrapolation[d]),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn sycl_is_never_slower_and_hg38_costs_more() {
        let mut runner = Runner::new(Workload::new(0.02), 1 << 18);
        let t = Table8::run(&mut runner);
        for d in 0..2 {
            for g in 0..3 {
                let s = t.cells[d][g].speedup();
                assert!(
                    (0.98..=1.35).contains(&s),
                    "speedup {s:.3} out of band at dataset {d} device {g}"
                );
            }
        }
        for g in 0..3 {
            assert!(
                t.cells[1][g].sycl_s > t.cells[0][g].sycl_s,
                "hg38 must be slower than hg19"
            );
        }
        let rendered = t.render().to_string();
        assert!(rendered.contains("MI100"));
    }
}
