//! Table IX: elapsed time of the baseline vs optimized (opt3) SYCL
//! application.
//!
//! Shape target: opt3 wins everywhere, with end-to-end speedups in roughly
//! the paper's 1.09–1.23 band.

use cas_offinder::{Api, OptLevel};

use crate::{deviation_pct, fmt_s, fmt_x, paper, Runner, TextTable};

/// One cell of Table IX.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Baseline SYCL elapsed seconds.
    pub base_s: f64,
    /// Optimized (opt3) SYCL elapsed seconds.
    pub opt_s: f64,
}

impl Cell {
    /// Optimization speedup.
    pub fn speedup(&self) -> f64 {
        self.base_s / self.opt_s
    }
}

/// Result of the Table IX experiment: `cells[dataset][device]`.
#[derive(Debug, Clone)]
pub struct Table9 {
    /// Measured cells.
    pub cells: [[Cell; 3]; 2],
}

impl Table9 {
    /// Run the experiment.
    pub fn run(runner: &mut Runner) -> Table9 {
        let mut cells = [[Cell {
            base_s: 0.0,
            opt_s: 0.0,
        }; 3]; 2];
        for (d, row) in cells.iter_mut().enumerate() {
            for (g, cell) in row.iter_mut().enumerate() {
                cell.base_s = runner
                    .report(g, d, Api::Sycl, OptLevel::Base)
                    .timing
                    .elapsed_s;
                cell.opt_s = runner
                    .report(g, d, Api::Sycl, OptLevel::Opt3)
                    .timing
                    .elapsed_s;
            }
        }
        Table9 { cells }
    }

    /// Render paper-vs-measured.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table IX — elapsed time of the optimized SYCL application \
             (base vs opt3; speedup = base/opt)",
            &[
                "dataset",
                "device",
                "base (sim s)",
                "opt (sim s)",
                "speedup",
                "paper speedup",
                "dev %",
            ],
        );
        for d in 0..2 {
            for g in 0..3 {
                let cell = self.cells[d][g];
                let paper_speedup = paper::TABLE9_BASE_S[d][g] / paper::TABLE9_OPT_S[d][g];
                t.row(vec![
                    paper::DATASETS[d].into(),
                    paper::DEVICES[g].into(),
                    fmt_s(cell.base_s),
                    fmt_s(cell.opt_s),
                    fmt_x(cell.speedup()),
                    fmt_x(paper_speedup),
                    format!("{:+.1}", deviation_pct(cell.speedup(), paper_speedup)),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn opt3_wins_everywhere_in_the_paper_band() {
        let mut runner = Runner::new(Workload::new(0.02), 1 << 18);
        let t = Table9::run(&mut runner);
        for d in 0..2 {
            for g in 0..3 {
                let s = t.cells[d][g].speedup();
                assert!(
                    (1.03..=1.40).contains(&s),
                    "opt3 end-to-end speedup {s:.3} out of band at dataset {d} device {g}"
                );
            }
        }
    }
}
