//! The paper's published numbers, used as the comparison baseline by every
//! experiment.

/// Device names in the order of the paper's tables.
pub const DEVICES: [&str; 3] = ["Radeon VII", "MI60", "MI100"];

/// Dataset names in the order of the paper's tables.
pub const DATASETS: [&str; 2] = ["hg19", "hg38"];

/// Table I: logical programming steps.
pub const OPENCL_STEPS: usize = 13;
/// Table I: logical programming steps.
pub const SYCL_STEPS: usize = 8;

/// Table VIII: elapsed seconds `[dataset][device]` for the OpenCL
/// application.
pub const TABLE8_OPENCL_S: [[f64; 3]; 2] = [[54.0, 51.0, 49.0], [71.0, 63.0, 61.0]];
/// Table VIII: elapsed seconds for the SYCL application.
pub const TABLE8_SYCL_S: [[f64; 3]; 2] = [[48.0, 50.0, 41.0], [61.0, 63.0, 58.0]];

/// Table IX: elapsed seconds for the baseline SYCL application.
pub const TABLE9_BASE_S: [[f64; 3]; 2] = [[48.0, 50.0, 41.0], [61.0, 63.0, 58.0]];
/// Table IX: elapsed seconds for the optimized (opt3) SYCL application.
pub const TABLE9_OPT_S: [[f64; 3]; 2] = [[39.0, 42.0, 36.0], [52.0, 57.0, 53.0]];

/// Fig. 2: fraction of the baseline comparer kernel time remaining at opt3,
/// `[dataset][device]` (the paper reports the reductions: hg19
/// 27.8/23.4/23.1%, hg38 22.9/21.1/21.7%).
pub const FIG2_OPT3_REMAINING: [[f64; 3]; 2] =
    [[1.0 - 0.278, 1.0 - 0.234, 1.0 - 0.231], [1.0 - 0.229, 1.0 - 0.211, 1.0 - 0.217]];

/// Fig. 2: opt4 "almost doubles" the opt3 kernel time.
pub const FIG2_OPT4_OVER_OPT3: f64 = 1.9;

/// Table X: code length in bytes per comparer variant (base, opt1..opt4).
pub const TABLE10_CODE_BYTES: [u32; 5] = [6064, 5852, 5408, 4408, 3660];
/// Table X: vector GPRs per variant (the paper's text: "the number of
/// vector GPRs decrease from 64 to 57"; opt4 rises to 82).
pub const TABLE10_VGPRS: [u32; 5] = [64, 64, 64, 57, 82];
/// Table X: scalar GPRs per variant ("the number of scalar GPRs from 22 to
/// 10").
pub const TABLE10_SGPRS: [u32; 5] = [22, 22, 22, 10, 10];
/// Table X: occupancy (waves per SIMD) per variant.
pub const TABLE10_OCCUPANCY: [u32; 5] = [10, 10, 10, 10, 9];

/// §IV.B: the comparer accounts for ~98% of total kernel time.
pub const COMPARER_KERNEL_SHARE: f64 = 0.98;
/// §IV.B: ... and 50% to 80% of the elapsed time.
pub const COMPARER_ELAPSED_SHARE: (f64, f64) = (0.5, 0.8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_speedups_are_in_the_reported_band() {
        // The paper: "the performance speedup of the SYCL application over
        // the OpenCL application across the GPUs ranges from 1 to 1.19".
        for d in 0..2 {
            for g in 0..3 {
                let speedup = TABLE8_OPENCL_S[d][g] / TABLE8_SYCL_S[d][g];
                assert!((1.0..=1.20).contains(&speedup), "{speedup}");
            }
        }
    }

    #[test]
    fn table9_speedups_are_in_the_reported_band() {
        // "the performance speedup from the kernel optimizations (opt3)
        // ranges from 1.09 to 1.23" (48/39 rounds to 1.231).
        for d in 0..2 {
            for g in 0..3 {
                let speedup = TABLE9_BASE_S[d][g] / TABLE9_OPT_S[d][g];
                assert!((1.09..=1.235).contains(&speedup), "{speedup}");
            }
        }
    }

    #[test]
    fn table10_is_monotone_in_code_size() {
        for w in TABLE10_CODE_BYTES.windows(2) {
            assert!(w[1] < w[0]);
        }
    }
}
