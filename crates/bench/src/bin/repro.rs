//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [all|table1|table8|table9|table10|fig2|shares] [--scale FRACTION] [--chunk N]
//! ```
//!
//! `--scale` sets the miniature-genome scale (default 0.05 ≈ 300–375 kbp
//! per assembly); `--chunk` the chunk size in scan positions (default 2^17).

use casoff_bench::experiments::{
    ablations::Ablations, fig2::Fig2, summary::Summary, table1::Table1, table10::Table10,
    table8::Table8, table9::Table9,
};
use casoff_bench::{paper, Runner, TextTable, Workload};

struct Args {
    which: Vec<String>,
    scale: f64,
    chunk: usize,
}

fn parse_args() -> Args {
    let mut which = Vec::new();
    let mut scale = 0.05;
    let mut chunk = 1 << 17;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number"));
            }
            "--chunk" => {
                chunk = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--chunk needs an integer"));
            }
            "-h" | "--help" => usage(""),
            other => which.push(other.to_owned()),
        }
    }
    if which.is_empty() {
        which.push("all".to_owned());
    }
    Args {
        which,
        scale,
        chunk,
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [all|table1|table8|table9|table10|fig2|shares|ablations|summary|disasm]... [--scale F] [--chunk N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn shares_table(runner: &mut Runner) -> TextTable {
    use cas_offinder::{Api, OptLevel};
    let mut t = TextTable::new(
        "Hotspot shares (§IV.B) — comparer fraction of kernel and elapsed time \
         (paper: ~98% of kernel, 50-80% of elapsed)",
        &["dataset", "device", "kernel share", "elapsed share"],
    );
    for d in 0..2 {
        for g in 0..3 {
            let timing = runner
                .report(g, d, Api::Sycl, OptLevel::Base)
                .timing
                .clone();
            t.row(vec![
                paper::DATASETS[d].into(),
                paper::DEVICES[g].into(),
                format!("{:.1}%", timing.comparer_kernel_share() * 100.0),
                format!("{:.1}%", timing.comparer_elapsed_share() * 100.0),
            ]);
        }
    }
    t
}

fn main() {
    let args = parse_args();
    let wants = |name: &str| args.which.iter().any(|w| w == name || w == "all");

    println!(
        "# Reproduction run: scale {} (hg19-mini/hg38-mini), chunk {}\n",
        args.scale, args.chunk
    );
    let mut runner = Runner::new(Workload::new(args.scale), args.chunk);
    println!(
        "datasets: hg19-mini {} bp ({} searchable), hg38-mini {} bp ({} searchable)\n",
        runner.workload().hg19.total_len(),
        runner.workload().hg19.searchable_len(),
        runner.workload().hg38.total_len(),
        runner.workload().hg38.searchable_len(),
    );

    if wants("table1") {
        println!("{}", Table1::run().render());
    }
    if wants("table10") {
        println!("{}", Table10::run().render());
    }
    if wants("table8") {
        println!("{}", Table8::run(&mut runner).render());
    }
    if wants("fig2") {
        let fig2 = Fig2::run(&mut runner);
        println!("{}", fig2.render());
        if std::fs::write("fig2.csv", fig2.to_csv()).is_ok() {
            println!("(series written to fig2.csv)\n");
        }
    }
    if wants("table9") {
        println!("{}", Table9::run(&mut runner).render());
    }
    if wants("shares") {
        println!("{}", shares_table(&mut runner));
    }
    if wants("ablations") {
        for table in Ablations::run(&mut runner).render() {
            println!("{table}");
        }
    }
    if args.which.iter().any(|w| w == "summary") {
        let summary = Summary::run(&mut runner);
        println!("{}", summary.render());
        if !summary.all_pass() {
            std::process::exit(1);
        }
    }
    if args.which.iter().any(|w| w == "disasm") {
        use cas_offinder::kernels::ComparerKernel;
        for opt in cas_offinder::OptLevel::ALL {
            let program = gpu_sim::isa::compile_program(&ComparerKernel::code_model_for(opt));
            println!("{}", program.disassemble());
        }
    }
}
