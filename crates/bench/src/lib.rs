//! # casoff-bench — experiment harness for the SOCC'23 reproduction
//!
//! One module per table/figure of the paper's evaluation:
//!
//! | Experiment | Module | Regenerates |
//! |---|---|---|
//! | Table I | [`experiments::table1`] | programming-step counts (13 vs 8) |
//! | Table VIII | [`experiments::table8`] | OpenCL vs SYCL elapsed time |
//! | Fig. 2 | [`experiments::fig2`] | comparer kernel time, base..opt4 |
//! | Table IX | [`experiments::table9`] | baseline vs optimized SYCL app |
//! | Table X | [`experiments::table10`] | code length / registers / occupancy |
//!
//! The `repro` binary runs them all and prints paper-vs-measured tables;
//! `EXPERIMENTS.md` records a full run.

pub mod experiments;
pub mod microbench;
pub mod paper;

use std::collections::HashMap;
use std::fmt;

use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::{Api, OptLevel, SearchInput, SearchReport};
use genome::{synth, Assembly};
use gpu_sim::DeviceSpec;

/// The evaluation workload: both miniature assemblies and the canonical
/// input, at a given scale (1.0 ≈ 6–7.5 Mbp per assembly).
pub struct Workload {
    /// `hg19-mini`.
    pub hg19: Assembly,
    /// `hg38-mini`.
    pub hg38: Assembly,
    /// The scale the assemblies were generated at.
    pub scale: f64,
}

impl Workload {
    /// Generate the workload at `scale`.
    pub fn new(scale: f64) -> Workload {
        Workload {
            hg19: synth::hg19_mini(scale),
            hg38: synth::hg38_mini(scale),
            scale,
        }
    }

    /// Dataset by index (0 = hg19, 1 = hg38), matching [`paper::DATASETS`].
    pub fn dataset(&self, index: usize) -> &Assembly {
        match index {
            0 => &self.hg19,
            _ => &self.hg38,
        }
    }

    /// The canonical example input targeting dataset `index`.
    pub fn input(&self, index: usize) -> SearchInput {
        SearchInput::canonical_example(self.dataset(index).name())
    }

    /// Base pairs of the real assembly the miniature stands in for.
    pub fn full_bp(index: usize) -> u64 {
        match index {
            0 => synth::HG19_FULL_BP,
            _ => synth::HG38_FULL_BP,
        }
    }

    /// Factor to extrapolate a simulated miniature time to the full
    /// assembly.
    pub fn extrapolation_factor(&self, index: usize) -> f64 {
        Self::full_bp(index) as f64 / self.dataset(index).total_len() as f64
    }
}

/// Runs pipelines and caches their reports, so experiments that share a
/// configuration (e.g. Table VIII's SYCL baseline and Table IX's baseline)
/// simulate it once.
pub struct Runner {
    workload: Workload,
    chunk_size: usize,
    cache: HashMap<(usize, usize, Api, OptLevel), SearchReport>,
}

impl Runner {
    /// A runner over `workload` with the given chunk size.
    pub fn new(workload: Workload, chunk_size: usize) -> Runner {
        Runner {
            workload,
            chunk_size,
            cache: HashMap::new(),
        }
    }

    /// The workload under test.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The three simulated devices, in the paper's order.
    pub fn devices() -> [DeviceSpec; 3] {
        DeviceSpec::paper_devices()
    }

    /// Simulate (or fetch from cache) one configuration.
    ///
    /// # Panics
    ///
    /// Panics if the underlying pipeline fails — experiments are expected
    /// to run on valid configurations.
    pub fn report(
        &mut self,
        device: usize,
        dataset: usize,
        api: Api,
        opt: OptLevel,
    ) -> &SearchReport {
        let key = (device, dataset, api, opt);
        if !self.cache.contains_key(&key) {
            let spec = Self::devices()[device].clone();
            let config = PipelineConfig::new(spec)
                .chunk_size(self.chunk_size)
                .opt(opt);
            let report = match api {
                Api::OpenCl => pipeline::ocl::run(
                    self.workload.dataset(dataset),
                    &self.workload.input(dataset),
                    &config,
                )
                .expect("opencl pipeline failed"),
                Api::Sycl => pipeline::sycl::run(
                    self.workload.dataset(dataset),
                    &self.workload.input(dataset),
                    &config,
                )
                .expect("sycl pipeline failed"),
            };
            self.cache.insert(key, report);
        }
        &self.cache[&key]
    }
}

/// A plain-text table with a title, for terminal output.
#[derive(Debug, Clone)]
pub struct TextTable {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (i, cell) in cells.iter().enumerate().take(cols) {
                write!(f, "{:w$}  ", cell, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format seconds with four decimals.
pub fn fmt_s(v: f64) -> String {
    format!("{v:.4}")
}

/// Format a ratio (speedup) with two decimals.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}")
}

/// Relative deviation of `measured` from `expected`, as a percentage.
pub fn deviation_pct(measured: f64, expected: f64) -> f64 {
    (measured - expected) / expected * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_indexing() {
        let w = Workload::new(0.003);
        assert_eq!(w.dataset(0).name(), "hg19-mini");
        assert_eq!(w.dataset(1).name(), "hg38-mini");
        assert_eq!(w.input(1).genome, "hg38-mini");
        assert!(w.extrapolation_factor(0) > 100.0);
    }

    #[test]
    fn runner_caches_reports() {
        let mut r = Runner::new(Workload::new(0.002), 1 << 14);
        let a = r.report(2, 0, Api::Sycl, OptLevel::Base).timing.elapsed_s;
        let before = r.cache.len();
        let b = r.report(2, 0, Api::Sycl, OptLevel::Base).timing.elapsed_s;
        assert_eq!(a, b);
        assert_eq!(r.cache.len(), before);
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new("demo", &["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_s(1.23456789), "1.2346");
        assert_eq!(fmt_x(1.234), "1.23");
        assert!((deviation_pct(110.0, 100.0) - 10.0).abs() < 1e-12);
    }
}
