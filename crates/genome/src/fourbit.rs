//! 4-bit (nibble) packed sequence encoding.
//!
//! Where the [2-bit encoding](crate::twobit) stores only concrete bases and
//! pushes everything else into an ambiguity mask plus an exception list, the
//! nibble encoding stores every IUPAC code — including the degenerate ones —
//! as its 4-bit base-possibility mask ([`base_mask`]). The subset match rule
//! the compare kernels implement (`g != 0 && (g & p) == g`) only ever reads
//! that mask, so a kernel operating on nibble words reproduces the char
//! comparer bit for bit on *any* input: soft-masked runs, ambiguity codes,
//! even invalid bytes (mask 0 never matches). Exception-dense chunks that
//! would force the 2-bit path back onto the char comparer stay packed at
//! half a byte per base of device traffic.
//!
//! Host-side round-trips must be byte-exact (the serving cache decodes its
//! payloads to report genomic windows), so [`NibbleSeq`] additionally keeps a
//! 1-bit-per-base lowercase mask and a verbatim exception list for the rare
//! bytes the (nibble, case) pair cannot restore — non-IUPAC characters and
//! `U`/`u`, which share `T`'s mask. None of that travels to the device.

use crate::base::base_mask;

/// Uppercase IUPAC code of a 4-bit possibility mask (only the low four bits
/// are used). This is the inverse of [`base_mask`] on the fifteen IUPAC
/// codes; the empty mask 0 — which never matches and is never matched —
/// decodes to `X`, a byte with the same never-matching semantics.
///
/// # Examples
///
/// ```
/// use genome::base::base_mask;
/// use genome::fourbit::mask_to_char;
///
/// assert_eq!(mask_to_char(base_mask(b'R')), b'R');
/// assert_eq!(mask_to_char(0), b'X');
/// ```
#[inline]
pub const fn mask_to_char(mask: u8) -> u8 {
    match mask & 0b1111 {
        0b0001 => b'A',
        0b0010 => b'C',
        0b0011 => b'M',
        0b0100 => b'G',
        0b0101 => b'R',
        0b0110 => b'S',
        0b0111 => b'V',
        0b1000 => b'T',
        0b1001 => b'W',
        0b1010 => b'Y',
        0b1011 => b'H',
        0b1100 => b'K',
        0b1101 => b'D',
        0b1110 => b'B',
        0b1111 => b'N',
        _ => b'X',
    }
}

/// A sequence packed at 4 bits per base, each nibble the IUPAC possibility
/// mask of the original byte, plus the host-only metadata needed to decode
/// byte-exactly: a lowercase bitmask and a verbatim exception list for bytes
/// whose (mask, case) pair is not unique (`U`/`u` and non-IUPAC characters).
///
/// The device payload is [`nibble_bytes`](Self::nibble_bytes) alone — case
/// and exceptions never affect matching, so uploads cost 0.5 B/base
/// regardless of how masked or ambiguous the sequence is.
///
/// # Examples
///
/// ```
/// use genome::fourbit::NibbleSeq;
///
/// let packed = NibbleSeq::encode(b"ACGRNNtawrymkbdhv");
/// assert_eq!(packed.decode(), b"ACGRNNtawrymkbdhv"); // byte-exact
/// assert!(packed.exceptions().is_empty()); // every byte is IUPAC
/// assert_eq!(packed.nibble_bytes().len(), 9); // 17 bases -> 9 bytes
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct NibbleSeq {
    nibbles: Vec<u8>,
    lower: Vec<u8>,
    exceptions: Vec<(u32, u8)>,
    len: usize,
}

impl NibbleSeq {
    /// Pack a byte sequence losslessly.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is longer than `u32::MAX` bases (exception positions
    /// are stored as `u32`, matching the device-side representation).
    pub fn encode(seq: &[u8]) -> Self {
        assert!(seq.len() <= u32::MAX as usize, "sequence too long to pack");
        let len = seq.len();
        let mut nibbles = vec![0u8; len.div_ceil(2)];
        let mut lower = vec![0u8; len.div_ceil(8)];
        let mut exceptions = Vec::new();
        for (i, &c) in seq.iter().enumerate() {
            let mask = base_mask(c);
            nibbles[i / 2] |= mask << ((i % 2) * 4);
            if c.is_ascii_lowercase() {
                lower[i / 8] |= 1 << (i % 8);
            }
            // A byte round-trips through (mask, case) exactly when
            // uppercasing it gives the canonical code of its mask.
            if mask == 0 || mask_to_char(mask) != c.to_ascii_uppercase() {
                exceptions.push((i as u32, c));
            }
        }
        NibbleSeq {
            nibbles,
            lower,
            exceptions,
            len,
        }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 4-bit possibility mask at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn mask(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of bounds for length {}", self.len);
        (self.nibbles[i / 2] >> ((i % 2) * 4)) & 0b1111
    }

    /// The uppercase IUPAC code at position `i` (`X` for non-IUPAC bytes) —
    /// what an on-device nibble decode produces.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn base(&self, i: usize) -> u8 {
        mask_to_char(self.mask(i))
    }

    /// The nibble words (2 bases per byte, low nibble first) — the only
    /// bytes a device upload needs.
    pub fn nibble_bytes(&self) -> &[u8] {
        &self.nibbles
    }

    /// Bytes of the device payload: half a byte per base.
    pub fn device_byte_len(&self) -> usize {
        self.nibbles.len()
    }

    /// Positions whose original byte the (nibble, case) pair cannot restore,
    /// sorted ascending, with the verbatim byte. Host-only.
    pub fn exceptions(&self) -> &[(u32, u8)] {
        &self.exceptions
    }

    /// Bytes used by the host-resident representation (nibbles + lowercase
    /// mask + exceptions): ~0.625 B/base on genomic data.
    pub fn byte_len(&self) -> usize {
        self.nibbles.len()
            + self.lower.len()
            + self.exceptions.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<u8>())
    }

    /// Unpack the original sequence exactly.
    pub fn decode(&self) -> Vec<u8> {
        let mut seq: Vec<u8> = (0..self.len)
            .map(|i| {
                let c = self.base(i);
                if (self.lower[i / 8] >> (i % 8)) & 1 == 1 {
                    c.to_ascii_lowercase()
                } else {
                    c
                }
            })
            .collect();
        for &(pos, byte) in &self.exceptions {
            seq[pos as usize] = byte;
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::{is_mismatch, IUPAC_CODES};

    #[test]
    fn mask_to_char_inverts_base_mask_on_iupac() {
        for &code in IUPAC_CODES.iter() {
            assert_eq!(mask_to_char(base_mask(code)), code, "code {}", code as char);
        }
    }

    #[test]
    fn every_iupac_code_roundtrips_without_exceptions() {
        for &code in IUPAC_CODES.iter() {
            for c in [code, code.to_ascii_lowercase()] {
                for phase in 0..2 {
                    let mut seq = vec![b'A'; phase];
                    seq.push(c);
                    seq.extend_from_slice(b"cgt");
                    let p = NibbleSeq::encode(&seq);
                    assert_eq!(p.decode(), seq, "code {} at phase {phase}", c as char);
                    assert!(p.exceptions().is_empty(), "code {}", c as char);
                }
            }
        }
    }

    #[test]
    fn u_and_invalid_bytes_become_exceptions() {
        let seq = b"ACGUuX-".to_vec();
        let p = NibbleSeq::encode(&seq);
        assert_eq!(p.decode(), seq);
        assert_eq!(p.exceptions().len(), 4, "U, u, X and -");
        // On device, U still matches as T and invalid bytes never match.
        assert_eq!(p.mask(3), base_mask(b'T'));
        assert_eq!(p.mask(5), 0);
    }

    #[test]
    fn stored_masks_reproduce_char_mismatch_semantics() {
        // The property the 4-bit comparer rests on: for every pattern code
        // and every genome byte, the mismatch verdict computed from the
        // stored nibble equals the char comparer's verdict on the raw byte.
        let mut genome_bytes: Vec<u8> = IUPAC_CODES.to_vec();
        genome_bytes.extend(IUPAC_CODES.iter().map(|c| c.to_ascii_lowercase()));
        genome_bytes.extend_from_slice(b"Uu X@-");
        let p = NibbleSeq::encode(&genome_bytes);
        for &pat in IUPAC_CODES.iter() {
            let pmask = base_mask(pat);
            for (i, &g) in genome_bytes.iter().enumerate() {
                let gmask = p.mask(i);
                let nibble_mismatch = !(gmask != 0 && (gmask & pmask) == gmask);
                assert_eq!(
                    nibble_mismatch,
                    is_mismatch(pat, g),
                    "pattern {} vs genome {}",
                    pat as char,
                    g as char
                );
            }
        }
    }

    #[test]
    fn random_genomic_sequences_roundtrip() {
        use crate::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(0x4B17);
        for round in 0..32 {
            let len = rng.gen_below(700);
            let seq: Vec<u8> = (0..len)
                .map(|_| {
                    if rng.gen_bool(0.10) {
                        IUPAC_CODES[rng.gen_below(IUPAC_CODES.len())]
                    } else if rng.gen_bool(0.25) {
                        b"acgtn"[rng.gen_below(5)]
                    } else {
                        b"ACGTN"[rng.gen_below(5)]
                    }
                })
                .collect();
            let p = NibbleSeq::encode(&seq);
            assert_eq!(p.decode(), seq, "round {round}");
            assert_eq!(p.len(), seq.len());
            assert!(p.exceptions().is_empty(), "IUPAC-only input, round {round}");
        }
    }

    #[test]
    fn footprint_is_half_a_byte_per_base_on_device() {
        // A worst case for the 2-bit encoding — every base soft-masked or
        // degenerate — costs the nibble encoding nothing extra.
        let seq: Vec<u8> = (0..1000)
            .map(|i| if i % 2 == 0 { b'r' } else { b'y' })
            .collect();
        let p = NibbleSeq::encode(&seq);
        assert_eq!(p.device_byte_len(), 500);
        assert_eq!(p.byte_len(), 500 + 125, "nibbles + lowercase mask");
        assert_eq!(p.decode(), seq);
    }

    #[test]
    fn non_multiple_of_two_lengths() {
        for n in 0..9 {
            let seq: Vec<u8> = b"ACGRNyWtT"[..n].to_vec();
            let p = NibbleSeq::encode(&seq);
            assert_eq!(p.len(), n);
            assert_eq!(p.decode(), seq);
        }
        assert!(NibbleSeq::encode(b"").is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        NibbleSeq::encode(b"ACGT").mask(4);
    }
}
