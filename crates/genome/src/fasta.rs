//! FASTA parsing and writing.
//!
//! Cas-OFFinder's host program "reads genome sequence data in single- or
//! multi-sequence data format \[and\] parses the data files with an
//! open-source parser library" (§II.A of the paper). This module is that
//! parser: it reads single- and multi-record FASTA, tolerates Windows line
//! endings and blank lines, normalizes sequences to uppercase, and writes
//! FASTA back out with configurable line wrapping.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::base::is_iupac;

/// One FASTA record: a header line and its sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Sequence identifier: the first word after `>`.
    pub id: String,
    /// The rest of the header line, if any.
    pub description: String,
    /// Uppercased sequence bytes.
    pub seq: Vec<u8>,
}

impl FastaRecord {
    /// Create a record, uppercasing the sequence.
    pub fn new(id: impl Into<String>, seq: impl Into<Vec<u8>>) -> Self {
        let mut seq = seq.into();
        seq.make_ascii_uppercase();
        FastaRecord {
            id: id.into(),
            description: String::new(),
            seq,
        }
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True when the record holds no sequence.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// Errors produced while parsing FASTA.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FastaError {
    /// Sequence data appeared before the first `>` header.
    MissingHeader {
        /// 1-based line number of the offending data.
        line: usize,
    },
    /// A record contained a character that is not an IUPAC nucleotide code.
    InvalidCharacter {
        /// The offending byte.
        byte: u8,
        /// 1-based line number.
        line: usize,
        /// Record id the byte occurred in.
        record: String,
    },
    /// A header introduced a record with no sequence lines.
    EmptyRecord {
        /// Record id of the empty record.
        record: String,
    },
    /// Underlying I/O failure (stored as its display string so the error
    /// stays `Clone` and comparable in tests).
    Io(String),
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::MissingHeader { line } => {
                write!(f, "sequence data before first '>' header at line {line}")
            }
            FastaError::InvalidCharacter { byte, line, record } => write!(
                f,
                "invalid nucleotide byte 0x{byte:02x} ({:?}) at line {line} in record {record}",
                *byte as char
            ),
            FastaError::EmptyRecord { record } => {
                write!(f, "record {record} has no sequence data")
            }
            FastaError::Io(msg) => write!(f, "i/o error reading fasta: {msg}"),
        }
    }
}

impl Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e.to_string())
    }
}

/// Parser configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseOptions {
    /// Reject characters outside the IUPAC alphabet (default `true`).
    /// When `false`, invalid characters are replaced by `N`, which is how
    /// assembly pipelines usually handle them.
    pub strict: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions { strict: true }
    }
}

/// A streaming FASTA reader: yields one [`FastaRecord`] at a time without
/// materializing the whole file, which is how a host program feeds
/// chromosome-sized chunks to the device without holding a 3-Gbp assembly
/// twice in memory.
///
/// # Examples
///
/// ```
/// use genome::fasta::{ParseOptions, Reader};
///
/// let mut reader = Reader::new(&b">a\nACGT\n>b\nTT\n"[..], ParseOptions::default());
/// let a = reader.next().unwrap()?;
/// assert_eq!(a.id, "a");
/// let b = reader.next().unwrap()?;
/// assert_eq!(b.seq, b"TT");
/// assert!(reader.next().is_none());
/// # Ok::<(), genome::fasta::FastaError>(())
/// ```
#[derive(Debug)]
pub struct Reader<R> {
    inner: R,
    options: ParseOptions,
    line_no: usize,
    pending: Option<FastaRecord>,
    done: bool,
}

impl<R: BufRead> Reader<R> {
    /// Wrap a buffered reader.
    pub fn new(inner: R, options: ParseOptions) -> Self {
        Reader {
            inner,
            options,
            line_no: 0,
            pending: None,
            done: false,
        }
    }

    fn read_record(&mut self) -> Result<Option<FastaRecord>, FastaError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.inner.read_line(&mut line)?;
            if n == 0 {
                self.done = true;
                return match self.pending.take() {
                    Some(rec) if rec.seq.is_empty() => {
                        Err(FastaError::EmptyRecord { record: rec.id })
                    }
                    other => Ok(other),
                };
            }
            self.line_no += 1;
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            if let Some(header) = trimmed.strip_prefix('>') {
                let mut words = header.splitn(2, char::is_whitespace);
                let next = FastaRecord {
                    id: words.next().unwrap_or("").to_owned(),
                    description: words.next().unwrap_or("").trim().to_owned(),
                    seq: Vec::new(),
                };
                match self.pending.replace(next) {
                    None => continue,
                    Some(rec) if rec.seq.is_empty() => {
                        return Err(FastaError::EmptyRecord { record: rec.id });
                    }
                    Some(rec) => return Ok(Some(rec)),
                }
            } else {
                let line_no = self.line_no;
                let rec = self
                    .pending
                    .as_mut()
                    .ok_or(FastaError::MissingHeader { line: line_no })?;
                for &b in trimmed.as_bytes() {
                    if b.is_ascii_whitespace() {
                        continue;
                    }
                    let up = b.to_ascii_uppercase();
                    if is_iupac(up) {
                        rec.seq.push(up);
                    } else if self.options.strict {
                        return Err(FastaError::InvalidCharacter {
                            byte: b,
                            line: line_no,
                            record: rec.id.clone(),
                        });
                    } else {
                        rec.seq.push(b'N');
                    }
                }
            }
        }
    }
}

impl<R: BufRead> Iterator for Reader<R> {
    type Item = Result<FastaRecord, FastaError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Parse all records from a reader.
///
/// Accepts `&[u8]`, files wrapped in `BufReader`, or any `BufRead`; a `&mut`
/// reference to a reader also works. For record-at-a-time streaming use
/// [`Reader`].
///
/// # Errors
///
/// Returns a [`FastaError`] on malformed input, an empty record, or I/O
/// failure.
///
/// # Examples
///
/// ```
/// use genome::fasta::{parse, ParseOptions};
///
/// let records = parse(&b">chr1 test\nACGT\nacgt\n>chr2\nNNNN\n"[..], ParseOptions::default())?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].id, "chr1");
/// assert_eq!(records[0].seq, b"ACGTACGT");
/// # Ok::<(), genome::fasta::FastaError>(())
/// ```
pub fn parse<R: BufRead>(reader: R, options: ParseOptions) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records = Vec::new();
    for record in Reader::new(reader, options) {
        let record = record?;
        if record.seq.is_empty() {
            return Err(FastaError::EmptyRecord { record: record.id });
        }
        records.push(record);
    }
    Ok(records)
}

/// Parse records from an in-memory string.
///
/// # Errors
///
/// Returns a [`FastaError`] on malformed input.
pub fn parse_str(s: &str, options: ParseOptions) -> Result<Vec<FastaRecord>, FastaError> {
    parse(s.as_bytes(), options)
}

/// Write records to a writer in FASTA format with lines wrapped at
/// `wrap` bases (`wrap = 0` disables wrapping).
///
/// A `&mut` reference to a writer also works.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write<W: Write>(mut w: W, records: &[FastaRecord], wrap: usize) -> io::Result<()> {
    for rec in records {
        if rec.description.is_empty() {
            writeln!(w, ">{}", rec.id)?;
        } else {
            writeln!(w, ">{} {}", rec.id, rec.description)?;
        }
        if wrap == 0 {
            w.write_all(&rec.seq)?;
            writeln!(w)?;
        } else {
            for chunk in rec.seq.chunks(wrap) {
                w.write_all(chunk)?;
                writeln!(w)?;
            }
        }
    }
    Ok(())
}

/// Render records to a FASTA `String` (70-column wrapped).
pub fn to_string(records: &[FastaRecord]) -> String {
    let mut out = Vec::new();
    write(&mut out, records, 70).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("fasta output is ascii")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_record_with_crlf_and_blanks() {
        let input = ">chr1 primary\r\nACGT\r\n\r\nacgtn\r\n>chr2\r\nTTTT\r\n";
        let recs = parse_str(input, ParseOptions::default()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "chr1");
        assert_eq!(recs[0].description, "primary");
        assert_eq!(recs[0].seq, b"ACGTACGTN");
        assert_eq!(recs[1].seq, b"TTTT");
    }

    #[test]
    fn data_before_header_is_an_error() {
        let err = parse_str("ACGT\n", ParseOptions::default()).unwrap_err();
        assert_eq!(err, FastaError::MissingHeader { line: 1 });
    }

    #[test]
    fn strict_mode_rejects_invalid_bytes() {
        let err = parse_str(">x\nAC-GT\n", ParseOptions::default()).unwrap_err();
        match err {
            FastaError::InvalidCharacter { byte, line, record } => {
                assert_eq!(byte, b'-');
                assert_eq!(line, 2);
                assert_eq!(record, "x");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lenient_mode_masks_invalid_bytes() {
        let recs = parse_str(">x\nAC-GT\n", ParseOptions { strict: false }).unwrap();
        assert_eq!(recs[0].seq, b"ACNGT");
    }

    #[test]
    fn empty_record_is_an_error() {
        let err = parse_str(">a\n>b\nACGT\n", ParseOptions::default()).unwrap_err();
        assert_eq!(
            err,
            FastaError::EmptyRecord {
                record: "a".to_owned()
            }
        );
        // Also at end of input.
        let err = parse_str(">only\n", ParseOptions::default()).unwrap_err();
        assert_eq!(
            err,
            FastaError::EmptyRecord {
                record: "only".to_owned()
            }
        );
    }

    #[test]
    fn iupac_codes_are_accepted() {
        let recs = parse_str(">x\nRYSWKMBDHVN\n", ParseOptions::default()).unwrap();
        assert_eq!(recs[0].seq, b"RYSWKMBDHVN");
    }

    #[test]
    fn write_parse_roundtrip() {
        let original = vec![
            FastaRecord {
                id: "chr1".into(),
                description: "mini".into(),
                seq: b"ACGTN".repeat(40),
            },
            FastaRecord::new("chr2", b"ggggcccc".to_vec()),
        ];
        let text = to_string(&original);
        assert!(text.lines().all(|l| l.len() <= 70));
        let parsed = parse_str(&text, ParseOptions::default()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn unwrapped_write() {
        let recs = vec![FastaRecord::new("x", b"ACGT".repeat(50))];
        let mut out = Vec::new();
        write(&mut out, &recs, 0).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn streaming_reader_yields_records_lazily() {
        let mut reader = Reader::new(
            &b">a one\nAC\nGT\n\n>b\nNNNN\n"[..],
            ParseOptions::default(),
        );
        let a = reader.next().unwrap().unwrap();
        assert_eq!((a.id.as_str(), a.description.as_str()), ("a", "one"));
        assert_eq!(a.seq, b"ACGT");
        let b = reader.next().unwrap().unwrap();
        assert_eq!(b.seq, b"NNNN");
        assert!(reader.next().is_none());
        assert!(reader.next().is_none(), "fused after the end");
    }

    #[test]
    fn streaming_reader_surfaces_errors_and_stops() {
        let mut reader = Reader::new(&b"ACGT\n"[..], ParseOptions::default());
        assert!(matches!(
            reader.next(),
            Some(Err(FastaError::MissingHeader { line: 1 }))
        ));
        assert!(reader.next().is_none(), "fused after an error");

        let mut reader = Reader::new(&b">empty\n>b\nAC\n"[..], ParseOptions::default());
        assert!(matches!(
            reader.next(),
            Some(Err(FastaError::EmptyRecord { .. }))
        ));
    }

    #[test]
    fn streaming_and_batch_parsers_agree() {
        let text = ">x desc\nACGTN\n>y\nggg\n>z\nRYSW\n";
        let batch = parse_str(text, ParseOptions::default()).unwrap();
        let streamed: Vec<FastaRecord> = Reader::new(text.as_bytes(), ParseOptions::default())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn record_len_helpers() {
        let r = FastaRecord::new("x", b"acg".to_vec());
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.seq, b"ACG", "constructor uppercases");
    }
}
