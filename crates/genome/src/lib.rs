//! # genome — sequence substrate for the Cas-OFFinder reproduction
//!
//! Everything the off-target search needs from the genomics side:
//!
//! * [`base`] — nucleotide and IUPAC degenerate-code semantics: possibility
//!   masks, the subset match rule used by the compare kernels, complements
//!   and reverse complements;
//! * [`fasta`] — single-/multi-record FASTA parsing and writing (the paper's
//!   "open-source parser library");
//! * [`Assembly`]/[`Chromosome`] — genome assemblies;
//! * [`synth`] — deterministic synthetic miniatures of the hg19/hg38 human
//!   assemblies used by the paper's evaluation (see `DESIGN.md` for the
//!   substitution rationale);
//! * [`Chunker`] — splitting an assembly into device-memory-sized chunks
//!   with window overlap;
//! * [`twobit`] — the 2-bit packed encoding of the Cas-OFFinder authors'
//!   follow-up optimization;
//! * [`fourbit`] — the 4-bit possibility-mask encoding that keeps
//!   soft-masked and ambiguity-rich sequences packed.
//!
//! ## Example
//!
//! ```
//! use genome::{synth, Chunker};
//! use genome::base::{matches, reverse_complement};
//!
//! // A miniature hg38 at 1% scale.
//! let asm = synth::hg38_mini(0.01);
//! assert!(asm.total_len() > 50_000);
//!
//! // Chunk it for a device, keeping 22 bases of window overlap.
//! let chunks: Vec<_> = Chunker::new(&asm, 16_384, 22).collect();
//! assert!(!chunks.is_empty());
//!
//! // IUPAC matching: the NRG PAM matches AGG on the forward strand...
//! assert!(matches(b'R', b'G'));
//! // ...and its reverse complement is CYN.
//! assert_eq!(reverse_complement(b"NRG"), b"CYN");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod fasta;
pub mod fourbit;
pub mod rng;
pub mod synth;
pub mod twobit;

mod assembly;
mod chunk;

pub use assembly::{Assembly, AssemblyStats, Chromosome};
pub use chunk::{Chunk, Chunker};
pub use fasta::{FastaError, FastaRecord};
