//! Deterministic synthetic genome assemblies.
//!
//! The paper evaluates on the UCSC hg19 and hg38 human assemblies
//! (~3.1 Gbp). Those cannot be downloaded in this environment, so this
//! module generates seeded miniature stand-ins that preserve the properties
//! the kernels care about: multi-chromosome structure with descending
//! chromosome sizes, telomeric and centromeric `N` runs, realistic GC
//! content, a sprinkle of IUPAC ambiguity codes, and — matching the paper's
//! observed hg38/hg19 elapsed-time ratio — about 25% more searchable
//! content in the hg38 miniature (see `DESIGN.md` §2).

use crate::assembly::{Assembly, Chromosome};
use crate::rng::Xoshiro256;

/// Parameters for synthetic assembly generation.
///
/// # Examples
///
/// ```
/// use genome::synth::SynthSpec;
///
/// let asm = SynthSpec::new("demo", 42)
///     .chromosomes(2)
///     .mean_chromosome_len(10_000)
///     .generate();
/// assert_eq!(asm.chromosomes().len(), 2);
/// assert!(asm.total_len() >= 15_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    name: String,
    seed: u64,
    chromosomes: usize,
    mean_chromosome_len: usize,
    gc_content: f64,
    telomere_n: usize,
    centromere_n_frac: f64,
    ambiguity_rate: f64,
    soft_mask_frac: f64,
    soft_mask_run: usize,
}

impl SynthSpec {
    /// A spec with human-like defaults: 8 chromosomes averaging 750 kbp,
    /// 41% GC, telomeric and centromeric `N` runs.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        SynthSpec {
            name: name.into(),
            seed,
            chromosomes: 8,
            mean_chromosome_len: 750_000,
            gc_content: 0.41,
            telomere_n: 5_000,
            centromere_n_frac: 0.05,
            ambiguity_rate: 1e-5,
            soft_mask_frac: 0.0,
            soft_mask_run: 300,
        }
    }

    /// Number of chromosomes.
    pub fn chromosomes(mut self, n: usize) -> Self {
        self.chromosomes = n;
        self
    }

    /// Mean chromosome length in bases. Actual lengths descend linearly from
    /// 1.5x to 0.5x the mean, like the human karyotype.
    pub fn mean_chromosome_len(mut self, len: usize) -> Self {
        self.mean_chromosome_len = len;
        self
    }

    /// Fraction of G+C among searchable bases.
    pub fn gc_content(mut self, gc: f64) -> Self {
        self.gc_content = gc;
        self
    }

    /// Length of the `N` run at each chromosome end.
    pub fn telomere_n(mut self, n: usize) -> Self {
        self.telomere_n = n;
        self
    }

    /// Fraction of each chromosome masked as a central `N` block.
    pub fn centromere_n_frac(mut self, frac: f64) -> Self {
        self.centromere_n_frac = frac;
        self
    }

    /// Probability of replacing a base with an IUPAC ambiguity code.
    pub fn ambiguity_rate(mut self, rate: f64) -> Self {
        self.ambiguity_rate = rate;
        self
    }

    /// Soft-mask the sequence: roughly `frac` of the searchable bases are
    /// emitted lowercase, in runs averaging `mean_run` bases — how
    /// RepeatMasker-style annotation looks in the real assemblies. Together
    /// with [`ambiguity_rate`](Self::ambiguity_rate) this is the
    /// exception-density knob: every lowercase or degenerate byte is an
    /// exception for the 2-bit packed encoding, so cranking these up makes
    /// assemblies that stress the 4-bit fallback-free path.
    pub fn soft_mask(mut self, frac: f64, mean_run: usize) -> Self {
        self.soft_mask_frac = frac.clamp(0.0, 1.0);
        self.soft_mask_run = mean_run.max(1);
        self
    }

    /// Generate the assembly. Deterministic for a given spec.
    pub fn generate(&self) -> Assembly {
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let mut asm = Assembly::new(self.name.clone());
        let n = self.chromosomes.max(1);
        for i in 0..n {
            // Descend from 1.5x to 0.5x of the mean.
            let factor = if n == 1 {
                1.0
            } else {
                1.5 - i as f64 / (n - 1) as f64
            };
            let len = ((self.mean_chromosome_len as f64) * factor).round() as usize;
            let seq = self.chromosome_seq(len, &mut rng);
            asm.push(Chromosome::new(format!("chr{}", i + 1), seq));
        }
        asm
    }

    fn chromosome_seq(&self, len: usize, rng: &mut Xoshiro256) -> Vec<u8> {
        let mut seq = Vec::with_capacity(len);
        let telo = self.telomere_n.min(len / 4);
        let centro_len = ((len as f64) * self.centromere_n_frac) as usize;
        let centro_start = len / 2 - centro_len / 2;

        // Per-base probability of opening a soft-mask run, chosen so runs of
        // the configured mean length cover the configured fraction.
        let soft_start = if self.soft_mask_frac > 0.0 && self.soft_mask_frac < 1.0 {
            (self.soft_mask_frac / ((1.0 - self.soft_mask_frac) * self.soft_mask_run as f64))
                .min(1.0)
        } else {
            self.soft_mask_frac
        };
        let mut soft_left = 0usize;

        for i in 0..len {
            let masked =
                i < telo || i >= len - telo || (i >= centro_start && i < centro_start + centro_len);
            if masked {
                seq.push(b'N');
                continue;
            }
            if soft_left == 0 && soft_start > 0.0 && rng.gen_bool(soft_start) {
                // Run lengths spread 0.5x–1.5x around the mean.
                soft_left = self.soft_mask_run / 2 + rng.gen_below(self.soft_mask_run.max(1)) + 1;
            }
            let c = if self.ambiguity_rate > 0.0 && rng.gen_bool(self.ambiguity_rate) {
                const AMBIG: &[u8] = b"RYSWKM";
                AMBIG[rng.gen_below(AMBIG.len())]
            } else {
                let gc = rng.gen_bool(self.gc_content);
                let first = rng.gen_bool(0.5);
                match (gc, first) {
                    (true, true) => b'G',
                    (true, false) => b'C',
                    (false, true) => b'A',
                    (false, false) => b'T',
                }
            };
            if soft_left > 0 {
                soft_left -= 1;
                seq.push(c.to_ascii_lowercase());
            } else {
                seq.push(c);
            }
        }
        seq
    }
}

/// Implant copies of `site` into `assembly` at seeded random positions,
/// each copy carrying a number of substitutions cycling through
/// `0..=max_mutations`.
///
/// The real hg19/hg38 assemblies contain near-matches of any plausible
/// guide; a random synthetic sequence does not, so the miniatures plant
/// them — otherwise the comparer's output path would never fire. Masked
/// (`N`) regions are avoided.
pub fn implant_sites(
    assembly: &mut Assembly,
    seed: u64,
    site: &[u8],
    copies: usize,
    max_mutations: usize,
) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut chroms: Vec<Chromosome> = assembly.chromosomes().to_vec();
    let mut placed = 0;
    let mut attempts = 0;
    while placed < copies && attempts < copies * 50 {
        attempts += 1;
        let c = rng.gen_below(chroms.len());
        let chrom = &mut chroms[c];
        if chrom.len() < site.len() {
            continue;
        }
        let pos = rng.gen_below(chrom.len() - site.len() + 1);
        if chrom.seq[pos..pos + site.len()].contains(&b'N') {
            continue;
        }
        let mut copy = site.to_vec();
        let mutations = placed % (max_mutations + 1);
        for _ in 0..mutations {
            let at = rng.gen_below(copy.len());
            copy[at] = b"ACGT"[rng.gen_below(4)];
        }
        chrom.seq[pos..pos + site.len()].copy_from_slice(&copy);
        placed += 1;
    }
    let mut rebuilt = Assembly::new(assembly.name().to_owned());
    rebuilt.extend(chroms);
    *assembly = rebuilt;
}

/// The canonical example guides (reference \[17\] of the paper) as genomic
/// sites: the 20-nt protospacer followed by an `AGG` PAM (which satisfies
/// the `NRG` pattern).
pub fn canonical_sites() -> [Vec<u8>; 2] {
    [
        b"GGCCGACCTGTCGCTGACGCAGG".to_vec(),
        b"CGCCAGCGTCAGCGACAGGTAGG".to_vec(),
    ]
}

fn implant_canonical(assembly: &mut Assembly, seed: u64) {
    // One planted site per ~40 kbp keeps the hit density realistic at any
    // scale while guaranteeing the comparer's output path is exercised.
    let copies = (assembly.total_len() / 40_000).max(3);
    for (i, site) in canonical_sites().iter().enumerate() {
        implant_sites(assembly, seed ^ (i as u64 + 1), site, copies, 5);
    }
}

/// Reference length of the real assemblies, used by the experiment harness
/// to extrapolate simulated miniature timings to full-genome scale.
pub const HG19_FULL_BP: u64 = 3_137_161_264;
/// See [`HG19_FULL_BP`].
pub const HG38_FULL_BP: u64 = 3_209_286_105;

/// The `hg19-mini` miniature: ~6 Mbp at `scale = 1.0` with heavier masking
/// (more sequencing artifacts masked out, as in the real hg19).
pub fn hg19_mini(scale: f64) -> Assembly {
    let mut asm = SynthSpec::new("hg19-mini", 0x6819)
        .chromosomes(8)
        .mean_chromosome_len(scaled(750_000, scale))
        .telomere_n(scaled(12_000, scale))
        .centromere_n_frac(0.10)
        .gc_content(0.409)
        .generate();
    implant_canonical(&mut asm, 0x6819);
    asm
}

/// The `hg38-mini` miniature: ~7.5 Mbp at `scale = 1.0` with lighter masking
/// — mirroring that hg38 "corrects thousands of small sequencing artifacts"
/// and leaves ~25% more searchable content than our hg19 miniature, which is
/// what reproduces the paper's hg38/hg19 elapsed-time ratio.
pub fn hg38_mini(scale: f64) -> Assembly {
    let mut asm = SynthSpec::new("hg38-mini", 0x6838)
        .chromosomes(8)
        .mean_chromosome_len(scaled(930_000, scale))
        .telomere_n(scaled(6_000, scale))
        .centromere_n_frac(0.05)
        .gc_content(0.411)
        .generate();
    implant_canonical(&mut asm, 0x6838);
    asm
}

/// The `hg38-masked` miniature: the hg38 geometry with RepeatMasker-style
/// soft-mask runs over ~45% of the searchable bases and a heavy degenerate
/// sprinkle — an exception-dense assembly on which the 2-bit packed path
/// degrades to the char comparer. Tests and benches use it to exercise the
/// 4-bit fallback-free path.
pub fn hg38_masked_mini(scale: f64) -> Assembly {
    let mut asm = SynthSpec::new("hg38-masked", 0x6853)
        .chromosomes(8)
        .mean_chromosome_len(scaled(930_000, scale))
        .telomere_n(scaled(6_000, scale))
        .centromere_n_frac(0.05)
        .gc_content(0.411)
        .ambiguity_rate(2e-3)
        .soft_mask(0.45, scaled(400, scale.min(1.0)).max(16))
        .generate();
    implant_canonical(&mut asm, 0x6853);
    asm
}

fn scaled(v: usize, scale: f64) -> usize {
    ((v as f64) * scale).round().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SynthSpec::new("x", 7).mean_chromosome_len(5_000).generate();
        let b = SynthSpec::new("x", 7).mean_chromosome_len(5_000).generate();
        assert_eq!(a, b);
        let c = SynthSpec::new("x", 8).mean_chromosome_len(5_000).generate();
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn chromosome_sizes_descend() {
        let asm = SynthSpec::new("x", 1)
            .chromosomes(4)
            .mean_chromosome_len(10_000)
            .generate();
        let lens: Vec<usize> = asm.chromosomes().iter().map(|c| c.len()).collect();
        for w in lens.windows(2) {
            assert!(w[0] > w[1]);
        }
        let total: usize = lens.iter().sum();
        assert!((total as f64 - 40_000.0).abs() / 40_000.0 < 0.01);
    }

    #[test]
    fn telomeres_and_centromere_are_masked() {
        let asm = SynthSpec::new("x", 3)
            .chromosomes(1)
            .mean_chromosome_len(100_000)
            .telomere_n(1_000)
            .centromere_n_frac(0.1)
            .ambiguity_rate(0.0)
            .generate();
        let seq = &asm.chromosomes()[0].seq;
        assert!(seq[..1000].iter().all(|&b| b == b'N'));
        assert!(seq[seq.len() - 1000..].iter().all(|&b| b == b'N'));
        let mid = seq.len() / 2;
        assert_eq!(seq[mid], b'N');
        // Roughly 1000+1000 telomere + 10% centromere masked.
        let n_count = seq.iter().filter(|&&b| b == b'N').count();
        assert!((11_000..=13_500).contains(&n_count), "n_count = {n_count}");
    }

    #[test]
    fn gc_content_is_respected() {
        let asm = SynthSpec::new("x", 5)
            .chromosomes(1)
            .mean_chromosome_len(200_000)
            .telomere_n(0)
            .centromere_n_frac(0.0)
            .ambiguity_rate(0.0)
            .gc_content(0.6)
            .generate();
        let seq = &asm.chromosomes()[0].seq;
        let gc = seq.iter().filter(|&&b| b == b'G' || b == b'C').count();
        let frac = gc as f64 / seq.len() as f64;
        assert!((frac - 0.6).abs() < 0.01, "gc fraction {frac}");
    }

    #[test]
    fn minis_have_the_paper_ratio() {
        let hg19 = hg19_mini(0.05);
        let hg38 = hg38_mini(0.05);
        let ratio = hg38.searchable_len() as f64 / hg19.searchable_len() as f64;
        assert!(
            (1.15..=1.45).contains(&ratio),
            "hg38/hg19 searchable ratio {ratio:.2} outside the target band"
        );
        assert_eq!(hg19.name(), "hg19-mini");
        assert_eq!(hg38.name(), "hg38-mini");
    }

    #[test]
    fn scale_shrinks_proportionally() {
        let big = hg19_mini(0.02);
        let small = hg19_mini(0.01);
        let ratio = big.total_len() as f64 / small.total_len() as f64;
        assert!((ratio - 2.0).abs() < 0.05);
    }

    #[test]
    fn canonical_guides_are_implanted() {
        use crate::base::matches;
        let asm = hg19_mini(0.01);
        let sites = canonical_sites();
        // At least one exact (0-mutation) copy of each guide must exist.
        for site in &sites {
            let found = asm.chromosomes().iter().any(|c| {
                c.seq.windows(site.len()).any(|w| {
                    w.iter().zip(site.iter()).all(|(&g, &s)| matches(s, g))
                })
            });
            assert!(found, "implanted site {:?} missing", String::from_utf8_lossy(site));
        }
    }

    #[test]
    fn implanting_is_deterministic_and_avoids_n_runs() {
        let a = hg38_mini(0.005);
        let b = hg38_mini(0.005);
        assert_eq!(a, b);
        // Implants never overwrite telomeres: the first bases stay N.
        assert_eq!(a.chromosomes()[0].seq[0], b'N');
    }

    #[test]
    fn implant_sites_respects_mutation_budget() {
        let mut asm = SynthSpec::new("x", 9)
            .chromosomes(1)
            .mean_chromosome_len(50_000)
            .telomere_n(100)
            .centromere_n_frac(0.0)
            .ambiguity_rate(0.0)
            .generate();
        let site = b"ACGTACGTACGTACGTACGT";
        implant_sites(&mut asm, 7, site, 5, 0);
        // With zero mutations allowed, all five copies are exact.
        let hits = asm.chromosomes()[0]
            .seq
            .windows(site.len())
            .filter(|w| *w == &site[..])
            .count();
        assert!(hits >= 4, "expected >=4 surviving exact copies, got {hits}");
    }

    #[test]
    fn soft_mask_covers_the_requested_fraction_in_runs() {
        let asm = SynthSpec::new("x", 13)
            .chromosomes(1)
            .mean_chromosome_len(200_000)
            .telomere_n(0)
            .centromere_n_frac(0.0)
            .ambiguity_rate(0.0)
            .soft_mask(0.4, 300)
            .generate();
        let seq = &asm.chromosomes()[0].seq;
        assert!(seq.iter().all(|&b| crate::base::is_iupac(b)));
        let lower = seq.iter().filter(|b| b.is_ascii_lowercase()).count();
        let frac = lower as f64 / seq.len() as f64;
        assert!((0.30..=0.50).contains(&frac), "soft-mask fraction {frac}");
        // Lowercase bases come in runs, not salt-and-pepper: count
        // transitions into lowercase and check the implied mean run length.
        let runs = seq
            .windows(2)
            .filter(|w| !w[0].is_ascii_lowercase() && w[1].is_ascii_lowercase())
            .count()
            .max(1);
        let mean_run = lower as f64 / runs as f64;
        assert!(mean_run > 100.0, "mean soft-mask run {mean_run}");
    }

    #[test]
    fn masked_mini_is_deterministic_and_exception_dense() {
        let a = hg38_masked_mini(0.01);
        let b = hg38_masked_mini(0.01);
        assert_eq!(a, b);
        assert_eq!(a.name(), "hg38-masked");
        // The knob's purpose: a large share of searchable bases are 2-bit
        // exceptions (lowercase or degenerate), and some are degenerate.
        let (mut exceptions, mut degenerate, mut searchable) = (0usize, 0usize, 0usize);
        for c in a.chromosomes() {
            for &byte in &c.seq {
                assert!(crate::base::is_iupac(byte));
                if byte == b'N' {
                    continue;
                }
                searchable += 1;
                if byte.is_ascii_lowercase() {
                    exceptions += 1;
                }
                if !matches!(byte.to_ascii_uppercase(), b'A' | b'C' | b'G' | b'T' | b'N') {
                    degenerate += 1;
                    exceptions += 1;
                }
            }
        }
        let frac = exceptions as f64 / searchable as f64;
        assert!(frac > 0.3, "exception density {frac}");
        assert!(degenerate > 0, "degenerate codes must appear");
    }

    #[test]
    fn only_iupac_bytes_are_emitted() {
        let asm = SynthSpec::new("x", 11)
            .chromosomes(2)
            .mean_chromosome_len(20_000)
            .ambiguity_rate(0.01)
            .generate();
        for c in asm.chromosomes() {
            assert!(c.seq.iter().all(|&b| crate::base::is_iupac(b)));
        }
        // With a 1% rate we expect some ambiguity codes.
        let ambig: usize = asm
            .chromosomes()
            .iter()
            .flat_map(|c| c.seq.iter())
            .filter(|&&b| !matches!(b, b'A' | b'C' | b'G' | b'T' | b'N'))
            .count();
        assert!(ambig > 0);
    }
}
