//! Chunking an assembly into device-sized pieces.
//!
//! "The OpenCL host program ... divides the genome data into chunks that can
//! fit the memory of a heterogeneous device" (§II.A of the paper). A
//! [`Chunker`] walks an [`Assembly`] chromosome by chromosome and yields
//! [`Chunk`]s of at most `chunk_size` scan positions, each carrying `overlap`
//! extra trailing bases so that a pattern window starting near the end of a
//! chunk can still be evaluated (a window is *owned* by the chunk containing
//! its first base, so no site is reported twice).

use crate::assembly::Assembly;

/// One chunk of genome handed to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk<'a> {
    /// Index of the source chromosome within the assembly.
    pub chrom_index: usize,
    /// Name of the source chromosome.
    pub chrom_name: &'a str,
    /// Offset of the chunk's first base within the chromosome.
    pub start: usize,
    /// The chunk's bases: `scan_len` owned positions plus up to `overlap`
    /// trailing context bases.
    pub seq: &'a [u8],
    /// Number of scan positions owned by this chunk.
    pub scan_len: usize,
}

impl Chunk<'_> {
    /// True when a full pattern window of `window` bases starting at owned
    /// position `pos` (chunk-relative) fits in the chunk's data.
    pub fn window_fits(&self, pos: usize, window: usize) -> bool {
        pos < self.scan_len && pos + window <= self.seq.len()
    }
}

/// Iterator over the chunks of an assembly.
///
/// # Examples
///
/// ```
/// use genome::{Assembly, Chromosome, Chunker};
///
/// let mut asm = Assembly::new("toy");
/// asm.push(Chromosome::new("chr1", b"ACGTACGTAC".to_vec()));
/// let chunks: Vec<_> = Chunker::new(&asm, 4, 2).collect();
/// assert_eq!(chunks.len(), 3);
/// assert_eq!(chunks[0].seq, b"ACGTAC"); // 4 owned + 2 overlap
/// assert_eq!(chunks[2].start, 8);
/// assert_eq!(chunks[2].scan_len, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Chunker<'a> {
    assembly: &'a Assembly,
    chunk_size: usize,
    overlap: usize,
    chrom: usize,
    pos: usize,
}

impl<'a> Chunker<'a> {
    /// Chunk `assembly` into pieces of `chunk_size` owned positions with
    /// `overlap` trailing context bases.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(assembly: &'a Assembly, chunk_size: usize, overlap: usize) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        Chunker {
            assembly,
            chunk_size,
            overlap,
            chrom: 0,
            pos: 0,
        }
    }

    /// Total number of chunks this chunker will yield.
    pub fn count_chunks(&self) -> usize {
        self.assembly
            .chromosomes()
            .iter()
            .map(|c| c.len().div_ceil(self.chunk_size))
            .sum()
    }
}

impl<'a> Iterator for Chunker<'a> {
    type Item = Chunk<'a>;

    fn next(&mut self) -> Option<Chunk<'a>> {
        loop {
            let chrom = self.assembly.chromosomes().get(self.chrom)?;
            if self.pos >= chrom.len() {
                self.chrom += 1;
                self.pos = 0;
                continue;
            }
            let start = self.pos;
            let scan_len = self.chunk_size.min(chrom.len() - start);
            let end = (start + scan_len + self.overlap).min(chrom.len());
            self.pos = start + scan_len;
            return Some(Chunk {
                chrom_index: self.chrom,
                chrom_name: &chrom.name,
                start,
                seq: &chrom.seq[start..end],
                scan_len,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::Chromosome;

    fn toy() -> Assembly {
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new("chr1", b"AAAACCCCGGGGTTTT".to_vec())); // 16
        asm.push(Chromosome::new("chr2", b"ACGTACG".to_vec())); // 7
        asm
    }

    #[test]
    fn chunks_cover_every_position_exactly_once() {
        let asm = toy();
        let chunker = Chunker::new(&asm, 5, 3);
        let mut covered = [vec![0u32; 16], vec![0u32; 7]];
        for chunk in chunker.clone() {
            for p in 0..chunk.scan_len {
                covered[chunk.chrom_index][chunk.start + p] += 1;
            }
        }
        assert!(covered.iter().flatten().all(|&c| c == 1));
        assert_eq!(chunker.count_chunks(), 4 + 2);
    }

    #[test]
    fn overlap_carries_context_without_crossing_chromosomes() {
        let asm = toy();
        let chunks: Vec<_> = Chunker::new(&asm, 5, 3).collect();
        // First chunk of chr1: 5 owned + 3 overlap.
        assert_eq!(chunks[0].seq, b"AAAACCCC");
        // Last chunk of chr1 (start 15): 1 owned, no room for overlap.
        let last_chr1 = chunks.iter().rfind(|c| c.chrom_index == 0).unwrap();
        assert_eq!(last_chr1.start, 15);
        assert_eq!(last_chr1.seq, b"T");
        // chr2 chunks never include chr1 data.
        let first_chr2 = chunks.iter().find(|c| c.chrom_index == 1).unwrap();
        assert_eq!(first_chr2.seq, b"ACGTACG"[..5 + 2].as_ref());
        assert_eq!(first_chr2.start, 0);
    }

    #[test]
    fn window_fits_respects_ownership_and_data() {
        let asm = toy();
        let chunk = Chunker::new(&asm, 5, 3).next().unwrap();
        // Owned positions 0..5, data length 8, window 4.
        assert!(chunk.window_fits(0, 4));
        assert!(chunk.window_fits(4, 4));
        assert!(!chunk.window_fits(5, 3), "position 5 is not owned");
        assert!(!chunk.window_fits(4, 5), "window would run past the data");
    }

    #[test]
    fn chunk_larger_than_chromosome() {
        let asm = toy();
        let chunks: Vec<_> = Chunker::new(&asm, 100, 10).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].scan_len, 16);
        assert_eq!(chunks[1].scan_len, 7);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        let asm = toy();
        let _ = Chunker::new(&asm, 0, 0);
    }

    #[test]
    fn empty_assembly_yields_nothing() {
        let asm = Assembly::new("empty");
        assert_eq!(Chunker::new(&asm, 10, 2).count(), 0);
    }
}
