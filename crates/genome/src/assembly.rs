//! Genome assemblies: named collections of chromosomes.

use crate::fasta::FastaRecord;

/// One chromosome (or contig) of an assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chromosome {
    /// Chromosome name, e.g. `"chr1"`.
    pub name: String,
    /// Sequence bytes, case preserved: lowercase soft-masking survives (as
    /// it does for FASTA-loaded assemblies via [`Assembly::from_records`]),
    /// and matching is case-insensitive throughout.
    pub seq: Vec<u8>,
}

impl Chromosome {
    /// Create a chromosome. The sequence is stored verbatim — soft-masked
    /// (lowercase) bases keep their case.
    pub fn new(name: impl Into<String>, seq: impl Into<Vec<u8>>) -> Self {
        Chromosome {
            name: name.into(),
            seq: seq.into(),
        }
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True when the chromosome holds no sequence.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Number of non-`N` (searchable) bases, case-insensitively.
    pub fn searchable_len(&self) -> usize {
        self.seq.iter().filter(|&&b| b != b'N' && b != b'n').count()
    }
}

/// A genome assembly: an ordered set of chromosomes with a name
/// (e.g. `"hg38-mini"`).
///
/// # Examples
///
/// ```
/// use genome::{Assembly, Chromosome};
///
/// let mut asm = Assembly::new("toy");
/// asm.push(Chromosome::new("chr1", b"ACGTACGT".to_vec()));
/// asm.push(Chromosome::new("chr2", b"NNNACGT".to_vec()));
/// assert_eq!(asm.total_len(), 15);
/// assert_eq!(asm.searchable_len(), 12);
/// assert_eq!(asm.chromosome("chr2").unwrap().len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assembly {
    name: String,
    chromosomes: Vec<Chromosome>,
}

impl Assembly {
    /// An empty assembly called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Assembly {
            name: name.into(),
            chromosomes: Vec::new(),
        }
    }

    /// Build an assembly from parsed FASTA records.
    pub fn from_records(name: impl Into<String>, records: Vec<FastaRecord>) -> Self {
        let chromosomes = records
            .into_iter()
            .map(|r| Chromosome {
                name: r.id,
                seq: r.seq,
            })
            .collect();
        Assembly {
            name: name.into(),
            chromosomes,
        }
    }

    /// Convert back into FASTA records.
    pub fn to_records(&self) -> Vec<FastaRecord> {
        self.chromosomes
            .iter()
            .map(|c| FastaRecord {
                id: c.name.clone(),
                description: String::new(),
                seq: c.seq.clone(),
            })
            .collect()
    }

    /// Assembly name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a chromosome.
    pub fn push(&mut self, chromosome: Chromosome) {
        self.chromosomes.push(chromosome);
    }

    /// The chromosomes, in order.
    pub fn chromosomes(&self) -> &[Chromosome] {
        &self.chromosomes
    }

    /// Look up a chromosome by name.
    pub fn chromosome(&self, name: &str) -> Option<&Chromosome> {
        self.chromosomes.iter().find(|c| c.name == name)
    }

    /// Total bases across all chromosomes.
    pub fn total_len(&self) -> usize {
        self.chromosomes.iter().map(Chromosome::len).sum()
    }

    /// Total non-`N` bases across all chromosomes.
    pub fn searchable_len(&self) -> usize {
        self.chromosomes.iter().map(Chromosome::searchable_len).sum()
    }

    /// Compute composition statistics over the whole assembly.
    pub fn stats(&self) -> AssemblyStats {
        let mut stats = AssemblyStats::default();
        for chrom in &self.chromosomes {
            let mut run = 0usize;
            for &b in &chrom.seq {
                stats.total += 1;
                match b {
                    b'G' | b'C' | b'g' | b'c' => {
                        stats.gc += 1;
                        run = 0;
                    }
                    b'A' | b'T' | b'a' | b't' => {
                        run = 0;
                    }
                    b'N' | b'n' => {
                        stats.n += 1;
                        run += 1;
                        stats.longest_n_run = stats.longest_n_run.max(run);
                    }
                    _ => {
                        stats.ambiguous += 1;
                        run = 0;
                    }
                }
            }
        }
        stats
    }
}

/// Base-composition statistics of an assembly (see [`Assembly::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssemblyStats {
    /// Total bases.
    pub total: usize,
    /// `G`/`C` bases.
    pub gc: usize,
    /// Masked `N` bases.
    pub n: usize,
    /// Degenerate IUPAC bases other than `N`.
    pub ambiguous: usize,
    /// Length of the longest contiguous `N` run.
    pub longest_n_run: usize,
}

impl AssemblyStats {
    /// GC fraction among searchable (non-`N`, non-degenerate) bases.
    pub fn gc_fraction(&self) -> f64 {
        let concrete = self.total - self.n - self.ambiguous;
        if concrete == 0 {
            0.0
        } else {
            self.gc as f64 / concrete as f64
        }
    }

    /// Fraction of the assembly masked as `N`.
    pub fn n_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.n as f64 / self.total as f64
        }
    }
}

impl Extend<Chromosome> for Assembly {
    fn extend<I: IntoIterator<Item = Chromosome>>(&mut self, iter: I) {
        self.chromosomes.extend(iter);
    }
}

impl FromIterator<Chromosome> for Assembly {
    fn from_iter<I: IntoIterator<Item = Chromosome>>(iter: I) -> Self {
        Assembly {
            name: String::new(),
            chromosomes: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta;

    #[test]
    fn roundtrip_through_fasta() {
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new("chr1", b"ACGTN".to_vec()));
        asm.push(Chromosome::new("chr2", b"GGGG".to_vec()));
        let text = fasta::to_string(&asm.to_records());
        let parsed = fasta::parse_str(&text, fasta::ParseOptions::default()).unwrap();
        let back = Assembly::from_records("toy", parsed);
        assert_eq!(back, asm);
    }

    #[test]
    fn lengths_and_lookup() {
        let asm: Assembly = vec![
            Chromosome::new("a", b"NNNN".to_vec()),
            Chromosome::new("b", b"ACGT".to_vec()),
        ]
        .into_iter()
        .collect();
        assert_eq!(asm.total_len(), 8);
        assert_eq!(asm.searchable_len(), 4);
        assert!(asm.chromosome("a").is_some());
        assert!(asm.chromosome("c").is_none());
    }

    #[test]
    fn extend_appends() {
        let mut asm = Assembly::new("x");
        asm.extend(vec![Chromosome::new("c1", b"A".to_vec())]);
        assert_eq!(asm.chromosomes().len(), 1);
    }

    #[test]
    fn stats_count_composition() {
        let asm: Assembly = vec![
            Chromosome::new("a", b"GGCCNNNNAT".to_vec()),
            Chromosome::new("b", b"NRAT".to_vec()),
        ]
        .into_iter()
        .collect();
        let stats = asm.stats();
        assert_eq!(stats.total, 14);
        assert_eq!(stats.gc, 4);
        assert_eq!(stats.n, 5);
        assert_eq!(stats.ambiguous, 1);
        assert_eq!(stats.longest_n_run, 4, "runs do not span chromosomes");
        assert!((stats.gc_fraction() - 0.5).abs() < 1e-12);
        assert!((stats.n_fraction() - 5.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_assembly() {
        let stats = Assembly::new("e").stats();
        assert_eq!(stats.total, 0);
        assert_eq!(stats.gc_fraction(), 0.0);
        assert_eq!(stats.n_fraction(), 0.0);
    }

    #[test]
    fn miniature_stats_match_their_spec() {
        let asm = crate::synth::hg19_mini(0.01);
        let stats = asm.stats();
        assert!((stats.gc_fraction() - 0.409).abs() < 0.02);
        assert!(stats.n_fraction() > 0.05 && stats.n_fraction() < 0.25);
        assert!(stats.longest_n_run > 0);
    }

    #[test]
    fn chromosome_preserves_soft_mask_case() {
        let c = Chromosome::new("c", b"acGTn".to_vec());
        assert_eq!(c.seq, b"acGTn", "soft-masked bases keep their case");
        assert_eq!(c.searchable_len(), 4, "n is masked regardless of case");
    }
}
