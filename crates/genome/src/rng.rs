//! A small seeded PRNG (xoshiro256**), so the workspace needs no external
//! `rand` crate and builds fully offline.
//!
//! The synthetic assemblies ([`crate::synth`]) and every seeded-random test
//! in the workspace draw from this generator. It is deterministic for a
//! given seed across platforms, which is what the reproduction cares about —
//! statistical quality beyond that is a non-goal (xoshiro256** passes the
//! usual batteries anyway).
//!
//! # Examples
//!
//! ```
//! use genome::rng::Xoshiro256;
//!
//! let mut a = Xoshiro256::seed_from_u64(7);
//! let mut b = Xoshiro256::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_below(10) < 10);
//! ```

/// A xoshiro256** generator seeded through SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed the generator from a single `u64` by expanding it with
    /// SplitMix64 (the seeding procedure the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform index in `0..n` via Lemire's multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_below needs a non-empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range needs lo < hi, got {lo}..{hi}");
        lo + self.gen_below(hi - lo)
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// A reference to a uniformly chosen element, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_below(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_below_is_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_below(8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &v = r.choose(&items).unwrap();
            seen[items.iter().position(|&x| x == v).unwrap()] = true;
        }
        assert_eq!(seen, [true; 3]);
        assert!(r.choose::<u8>(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn gen_below_zero_panics() {
        Xoshiro256::seed_from_u64(0).gen_below(0);
    }
}
