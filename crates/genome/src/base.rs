//! Nucleotides and IUPAC degenerate codes.
//!
//! Cas-OFFinder patterns use the IUPAC nucleotide alphabet: each code stands
//! for a set of concrete bases (`R` = A/G, `N` = any, ...). This module
//! provides the byte-level match/mismatch semantics shared by the CPU
//! reference implementation and the GPU kernels.
//!
//! # Matching semantics
//!
//! A genome character *matches* a pattern code when the genome character's
//! possibility set is a subset of the pattern's possibility set (the "subset
//! rule"). For the concrete genome bases A/C/G/T this is ordinary set
//! membership; a masked genome base `N` (possibility set = all four) matches
//! only a pattern `N`. This is the biologically correct reading of the
//! paper's Listing 1 compare ladder; the listing itself is OCR-garbled in two
//! rows (see `DESIGN.md` §2).

/// Bitmask of concrete bases: bit 0 = A, bit 1 = C, bit 2 = G, bit 3 = T.
pub type BaseMask = u8;

/// Mask with all four concrete bases set.
pub const MASK_ANY: BaseMask = 0b1111;

/// The sixteen IUPAC codes in a fixed order (useful for exhaustive tests).
pub const IUPAC_CODES: [u8; 15] = [
    b'A', b'C', b'G', b'T', b'R', b'Y', b'S', b'W', b'K', b'M', b'B', b'D', b'H', b'V', b'N',
];

/// Possibility set of an IUPAC code (case-insensitive; `U` is treated as
/// `T`). Unknown characters map to the empty set, which never matches and is
/// never matched.
///
/// # Examples
///
/// ```
/// use genome::base::{base_mask, MASK_ANY};
///
/// assert_eq!(base_mask(b'A'), 0b0001);
/// assert_eq!(base_mask(b'R'), 0b0101); // A or G
/// assert_eq!(base_mask(b'n'), MASK_ANY);
/// assert_eq!(base_mask(b'X'), 0);
/// ```
#[inline]
pub const fn base_mask(c: u8) -> BaseMask {
    match c {
        b'A' | b'a' => 0b0001,
        b'C' | b'c' => 0b0010,
        b'G' | b'g' => 0b0100,
        b'T' | b't' | b'U' | b'u' => 0b1000,
        b'R' | b'r' => 0b0101, // A/G  purine
        b'Y' | b'y' => 0b1010, // C/T  pyrimidine
        b'S' | b's' => 0b0110, // C/G  strong
        b'W' | b'w' => 0b1001, // A/T  weak
        b'K' | b'k' => 0b1100, // G/T  keto
        b'M' | b'm' => 0b0011, // A/C  amino
        b'B' | b'b' => 0b1110, // not A
        b'D' | b'd' => 0b1101, // not C
        b'H' | b'h' => 0b1011, // not G
        b'V' | b'v' => 0b0111, // not T
        b'N' | b'n' => MASK_ANY,
        _ => 0,
    }
}

/// True when the genome character `genome` matches the pattern code
/// `pattern` under the subset rule.
///
/// # Examples
///
/// ```
/// use genome::base::matches;
///
/// assert!(matches(b'R', b'G'));
/// assert!(!matches(b'R', b'C'));
/// assert!(matches(b'N', b'N'));
/// assert!(!matches(b'R', b'N'), "masked genome base is not a purine match");
/// ```
#[inline]
pub const fn matches(pattern: u8, genome: u8) -> bool {
    let g = base_mask(genome);
    let p = base_mask(pattern);
    g != 0 && (g & p) == g
}

/// True when comparing `genome` against `pattern` counts as a mismatch —
/// the negation of [`matches()`](fn@matches), i.e. the condition of the comparer kernel's
/// ladder (Listing 1, L14/L31).
#[inline]
pub const fn is_mismatch(pattern: u8, genome: u8) -> bool {
    !matches(pattern, genome)
}

/// Complement of an IUPAC code (`A`<->`T`, `C`<->`G`, `R`<->`Y`, ...),
/// preserving case for the concrete bases and uppercasing degenerate codes.
/// Unknown characters are returned unchanged.
///
/// # Examples
///
/// ```
/// use genome::base::complement;
///
/// assert_eq!(complement(b'A'), b'T');
/// assert_eq!(complement(b'R'), b'Y');
/// assert_eq!(complement(b'N'), b'N');
/// ```
#[inline]
pub const fn complement(c: u8) -> u8 {
    match c {
        b'A' => b'T',
        b'T' | b'U' => b'A',
        b'C' => b'G',
        b'G' => b'C',
        b'a' => b't',
        b't' | b'u' => b'a',
        b'c' => b'g',
        b'g' => b'c',
        b'R' | b'r' => b'Y',
        b'Y' | b'y' => b'R',
        b'S' | b's' => b'S',
        b'W' | b'w' => b'W',
        b'K' | b'k' => b'M',
        b'M' | b'm' => b'K',
        b'B' | b'b' => b'V',
        b'V' | b'v' => b'B',
        b'D' | b'd' => b'H',
        b'H' | b'h' => b'D',
        b'N' | b'n' => b'N',
        other => other,
    }
}

/// Reverse complement of a sequence.
///
/// # Examples
///
/// ```
/// use genome::base::reverse_complement;
///
/// assert_eq!(reverse_complement(b"ACGT"), b"ACGT");
/// assert_eq!(reverse_complement(b"AANRG"), b"CYNTT");
/// ```
pub fn reverse_complement(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&c| complement(c)).collect()
}

/// True when `c` is one of the four concrete bases (either case).
#[inline]
pub const fn is_concrete(c: u8) -> bool {
    matches!(c, b'A' | b'C' | b'G' | b'T' | b'a' | b'c' | b'g' | b't')
}

/// True when `c` is any valid IUPAC nucleotide code (either case).
#[inline]
pub const fn is_iupac(c: u8) -> bool {
    base_mask(c) != 0
}

/// Uppercase a nucleotide character.
#[inline]
pub const fn to_upper(c: u8) -> u8 {
    c.to_ascii_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_masks_are_singletons() {
        for (c, m) in [(b'A', 1u8), (b'C', 2), (b'G', 4), (b'T', 8)] {
            assert_eq!(base_mask(c), m);
            assert_eq!(base_mask(c.to_ascii_lowercase()), m);
            assert_eq!(m.count_ones(), 1);
        }
    }

    #[test]
    fn degenerate_masks_match_iupac_definitions() {
        let cases: &[(u8, &[u8])] = &[
            (b'R', b"AG"),
            (b'Y', b"CT"),
            (b'S', b"CG"),
            (b'W', b"AT"),
            (b'K', b"GT"),
            (b'M', b"AC"),
            (b'B', b"CGT"),
            (b'D', b"AGT"),
            (b'H', b"ACT"),
            (b'V', b"ACG"),
            (b'N', b"ACGT"),
        ];
        for &(code, members) in cases {
            for &b in b"ACGT" {
                let expect = members.contains(&b);
                assert_eq!(
                    matches(code, b),
                    expect,
                    "pattern {} vs genome {}",
                    code as char,
                    b as char
                );
            }
        }
    }

    #[test]
    fn paper_listing_rows_hold() {
        // The non-garbled rows of Listing 1: pattern R mismatches C and T,
        // Y mismatches A and G, M mismatches G and T, W mismatches C and G,
        // H mismatches G, B mismatches A, V mismatches T, D mismatches C,
        // and the concrete bases mismatch everything but themselves.
        assert!(is_mismatch(b'R', b'C') && is_mismatch(b'R', b'T'));
        assert!(is_mismatch(b'Y', b'A') && is_mismatch(b'Y', b'G'));
        assert!(is_mismatch(b'M', b'G') && is_mismatch(b'M', b'T'));
        assert!(is_mismatch(b'W', b'C') && is_mismatch(b'W', b'G'));
        assert!(is_mismatch(b'H', b'G'));
        assert!(is_mismatch(b'B', b'A'));
        assert!(is_mismatch(b'V', b'T'));
        assert!(is_mismatch(b'D', b'C'));
        for &c in b"ACGT" {
            for &g in b"ACGT" {
                assert_eq!(is_mismatch(c, g), c != g);
            }
        }
    }

    #[test]
    fn masked_genome_base_only_matches_pattern_n() {
        for &code in IUPAC_CODES.iter() {
            let expect = code == b'N';
            assert_eq!(matches(code, b'N'), expect, "pattern {}", code as char);
        }
    }

    #[test]
    fn invalid_characters_never_match() {
        for &c in b"XZ@-. 0" {
            assert!(!matches(b'N', c));
            assert!(!matches(c, b'A'));
        }
    }

    #[test]
    fn complement_is_an_involution_on_iupac() {
        for &c in IUPAC_CODES.iter() {
            assert_eq!(complement(complement(c)), c, "code {}", c as char);
        }
    }

    #[test]
    fn complement_swaps_possibility_sets() {
        // mask(complement(c)) must be the base-wise complement mapping of
        // mask(c): A<->T swaps bits 0 and 3, C<->G swaps bits 1 and 2.
        fn comp_mask(m: BaseMask) -> BaseMask {
            let a = m & 1;
            let c = (m >> 1) & 1;
            let g = (m >> 2) & 1;
            let t = (m >> 3) & 1;
            (t) | (g << 1) | (c << 2) | (a << 3)
        }
        for &c in IUPAC_CODES.iter() {
            assert_eq!(base_mask(complement(c)), comp_mask(base_mask(c)));
        }
    }

    #[test]
    fn reverse_complement_roundtrip() {
        let seq = b"GGTACCAGTNNRYACGT".to_vec();
        assert_eq!(reverse_complement(&reverse_complement(&seq)), seq);
    }

    #[test]
    fn classification_helpers() {
        assert!(is_concrete(b'a'));
        assert!(!is_concrete(b'N'));
        assert!(is_iupac(b'N') && is_iupac(b'r'));
        assert!(!is_iupac(b'X'));
        assert_eq!(to_upper(b'g'), b'G');
    }

    #[test]
    fn u_is_treated_as_t() {
        assert!(matches(b'T', b'U'));
        assert!(matches(b'K', b'u'));
        assert_eq!(complement(b'U'), b'A');
    }
}
