//! 2-bit packed sequence encoding.
//!
//! The Cas-OFFinder authors' follow-up optimization (related work \[21\] in
//! the paper) packs the genome into a 2-bit-per-base format with a separate
//! mask for ambiguous positions, quartering global-memory traffic. This
//! module provides that encoding; the `cas-offinder` crate uses it for the
//! 2-bit kernel variant.

use crate::base::is_concrete;

/// 2-bit code of a concrete base: A=0, C=1, G=2, T=3.
#[inline]
pub const fn char_to_code(c: u8) -> u8 {
    match c {
        b'A' | b'a' => 0,
        b'C' | b'c' => 1,
        b'G' | b'g' => 2,
        _ => 3,
    }
}

/// Concrete base of a 2-bit code (only the low two bits are used).
#[inline]
pub const fn code_to_char(code: u8) -> u8 {
    match code & 0b11 {
        0 => b'A',
        1 => b'C',
        2 => b'G',
        _ => b'T',
    }
}

/// A sequence packed at 2 bits per base with a 1-bit-per-base ambiguity
/// mask.
///
/// Ambiguous positions (`N` and the IUPAC degenerate codes) are stored with
/// code 0 and flagged in the mask; [`decode`](Self::decode) restores them as
/// `N`.
///
/// # Examples
///
/// ```
/// use genome::twobit::TwoBitSeq;
///
/// let packed = TwoBitSeq::encode(b"ACGTN");
/// assert_eq!(packed.len(), 5);
/// assert_eq!(packed.decode(), b"ACGTN");
/// assert!(packed.is_masked(4));
/// assert_eq!(packed.packed_bytes().len(), 2); // 5 bases -> 2 bytes
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TwoBitSeq {
    packed: Vec<u8>,
    mask: Vec<u8>,
    len: usize,
}

impl TwoBitSeq {
    /// Pack a byte sequence.
    pub fn encode(seq: &[u8]) -> Self {
        let len = seq.len();
        let mut packed = vec![0u8; len.div_ceil(4)];
        let mut mask = vec![0u8; len.div_ceil(8)];
        for (i, &c) in seq.iter().enumerate() {
            if is_concrete(c) {
                packed[i / 4] |= char_to_code(c) << ((i % 4) * 2);
            } else {
                mask[i / 8] |= 1 << (i % 8);
            }
        }
        TwoBitSeq { packed, mask, len }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 2-bit code at position `i` (0 for masked positions).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of bounds for length {}", self.len);
        (self.packed[i / 4] >> ((i % 4) * 2)) & 0b11
    }

    /// True when position `i` holds an ambiguous base.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn is_masked(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of bounds for length {}", self.len);
        (self.mask[i / 8] >> (i % 8)) & 1 == 1
    }

    /// The base character at position `i` (`N` for masked positions).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn base(&self, i: usize) -> u8 {
        if self.is_masked(i) {
            b'N'
        } else {
            code_to_char(self.code(i))
        }
    }

    /// Unpack the full sequence (degenerate codes come back as `N`).
    pub fn decode(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.base(i)).collect()
    }

    /// The packed base bytes (4 bases per byte, LSB first).
    pub fn packed_bytes(&self) -> &[u8] {
        &self.packed
    }

    /// The ambiguity mask bytes (8 bases per byte, LSB first).
    pub fn mask_bytes(&self) -> &[u8] {
        &self.mask
    }

    /// Bytes used by the packed representation (bases + mask).
    pub fn byte_len(&self) -> usize {
        self.packed.len() + self.mask.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for &c in b"ACGT" {
            assert_eq!(code_to_char(char_to_code(c)), c);
        }
        assert_eq!(char_to_code(b'g'), 2);
    }

    #[test]
    fn encode_decode_concrete() {
        let seq = b"ACGTACGTGGCCTTAA";
        let p = TwoBitSeq::encode(seq);
        assert_eq!(p.decode(), seq);
        assert_eq!(p.packed_bytes().len(), 4);
        assert!((0..seq.len()).all(|i| !p.is_masked(i)));
    }

    #[test]
    fn ambiguous_positions_are_masked() {
        let p = TwoBitSeq::encode(b"ARNGT");
        assert!(!p.is_masked(0));
        assert!(p.is_masked(1), "R is ambiguous");
        assert!(p.is_masked(2));
        assert_eq!(p.decode(), b"ANNGT");
    }

    #[test]
    fn lowercase_is_handled() {
        let p = TwoBitSeq::encode(b"acgt");
        assert_eq!(p.decode(), b"ACGT");
    }

    #[test]
    fn compression_ratio_is_about_four() {
        let seq = vec![b'A'; 1000];
        let p = TwoBitSeq::encode(&seq);
        // 250 packed + 125 mask bytes.
        assert_eq!(p.byte_len(), 375);
    }

    #[test]
    fn non_multiple_of_four_lengths() {
        for n in 0..9 {
            let seq: Vec<u8> = b"ACGTACGTT"[..n].to_vec();
            let p = TwoBitSeq::encode(&seq);
            assert_eq!(p.len(), n);
            assert_eq!(p.decode(), seq);
        }
        assert!(TwoBitSeq::encode(b"").is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        TwoBitSeq::encode(b"ACGT").code(4);
    }
}
