//! 2-bit packed sequence encoding.
//!
//! The Cas-OFFinder authors' follow-up optimization (related work \[21\] in
//! the paper) packs the genome into a 2-bit-per-base format with a separate
//! mask for ambiguous positions, quartering global-memory traffic. This
//! module provides that encoding; the `cas-offinder` crate uses it for the
//! 2-bit kernel variant.

use crate::base::is_concrete;

/// 2-bit code of a concrete base: A=0, C=1, G=2, T=3.
#[inline]
pub const fn char_to_code(c: u8) -> u8 {
    match c {
        b'A' | b'a' => 0,
        b'C' | b'c' => 1,
        b'G' | b'g' => 2,
        _ => 3,
    }
}

/// Concrete base of a 2-bit code (only the low two bits are used).
#[inline]
pub const fn code_to_char(code: u8) -> u8 {
    match code & 0b11 {
        0 => b'A',
        1 => b'C',
        2 => b'G',
        _ => b'T',
    }
}

/// A sequence packed at 2 bits per base with a 1-bit-per-base ambiguity
/// mask.
///
/// Ambiguous positions (`N` and the IUPAC degenerate codes) are stored with
/// code 0 and flagged in the mask; [`decode`](Self::decode) restores them as
/// `N`.
///
/// # Examples
///
/// ```
/// use genome::twobit::TwoBitSeq;
///
/// let packed = TwoBitSeq::encode(b"ACGTN");
/// assert_eq!(packed.len(), 5);
/// assert_eq!(packed.decode(), b"ACGTN");
/// assert!(packed.is_masked(4));
/// assert_eq!(packed.packed_bytes().len(), 2); // 5 bases -> 2 bytes
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TwoBitSeq {
    packed: Vec<u8>,
    mask: Vec<u8>,
    len: usize,
}

impl TwoBitSeq {
    /// Pack a byte sequence.
    pub fn encode(seq: &[u8]) -> Self {
        let len = seq.len();
        let mut packed = vec![0u8; len.div_ceil(4)];
        let mut mask = vec![0u8; len.div_ceil(8)];
        for (i, &c) in seq.iter().enumerate() {
            if is_concrete(c) {
                packed[i / 4] |= char_to_code(c) << ((i % 4) * 2);
            } else {
                mask[i / 8] |= 1 << (i % 8);
            }
        }
        TwoBitSeq { packed, mask, len }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 2-bit code at position `i` (0 for masked positions).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of bounds for length {}", self.len);
        (self.packed[i / 4] >> ((i % 4) * 2)) & 0b11
    }

    /// True when position `i` holds an ambiguous base.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn is_masked(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of bounds for length {}", self.len);
        (self.mask[i / 8] >> (i % 8)) & 1 == 1
    }

    /// The base character at position `i` (`N` for masked positions).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn base(&self, i: usize) -> u8 {
        if self.is_masked(i) {
            b'N'
        } else {
            code_to_char(self.code(i))
        }
    }

    /// Unpack the full sequence (degenerate codes come back as `N`).
    pub fn decode(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.base(i)).collect()
    }

    /// The packed base bytes (4 bases per byte, LSB first).
    pub fn packed_bytes(&self) -> &[u8] {
        &self.packed
    }

    /// The ambiguity mask bytes (8 bases per byte, LSB first).
    pub fn mask_bytes(&self) -> &[u8] {
        &self.mask
    }

    /// Bytes used by the packed representation (bases + mask).
    pub fn byte_len(&self) -> usize {
        self.packed.len() + self.mask.len()
    }
}

/// A lossless 2-bit packed sequence: a [`TwoBitSeq`] plus an exception list
/// recording every position the 2-bit form cannot restore exactly.
///
/// `TwoBitSeq::decode` collapses all ambiguity codes to `N` and uppercases
/// lowercase bases, so it cannot be used where byte-exact round-trips matter
/// (the serving cache must reproduce the original chunk bytes so results stay
/// byte-identical to the unpacked pipeline). `PackedSeq` stores the original
/// byte for each such position as a sorted `(position, byte)` list; for
/// genomic data the list is tiny (degenerate IUPAC codes are rare and runs of
/// `N` need no exceptions), so the representation stays close to 2.25 bits
/// per base while [`decode`](Self::decode) is exact for arbitrary input.
///
/// # Examples
///
/// ```
/// use genome::twobit::PackedSeq;
///
/// let p = PackedSeq::encode(b"ACGRNNta");
/// assert_eq!(p.decode(), b"ACGRNNta"); // R, N and lowercase all survive
/// assert_eq!(p.exceptions().len(), 3); // R, t, a (N decodes as N for free)
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PackedSeq {
    two_bit: TwoBitSeq,
    exceptions: Vec<(u32, u8)>,
}

impl PackedSeq {
    /// Pack a byte sequence losslessly.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is longer than `u32::MAX` bases (exception positions
    /// are stored as `u32`, matching the device-side representation).
    pub fn encode(seq: &[u8]) -> Self {
        assert!(seq.len() <= u32::MAX as usize, "sequence too long to pack");
        let two_bit = TwoBitSeq::encode(seq);
        let exceptions = seq
            .iter()
            .enumerate()
            .filter(|&(i, &c)| two_bit.base(i) != c)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        PackedSeq { two_bit, exceptions }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.two_bit.len()
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.two_bit.is_empty()
    }

    /// The underlying lossy 2-bit encoding.
    pub fn two_bit(&self) -> &TwoBitSeq {
        &self.two_bit
    }

    /// The packed base bytes (4 bases per byte, LSB first).
    pub fn packed_bytes(&self) -> &[u8] {
        self.two_bit.packed_bytes()
    }

    /// The ambiguity mask bytes (8 bases per byte, LSB first).
    pub fn mask_bytes(&self) -> &[u8] {
        self.two_bit.mask_bytes()
    }

    /// Positions whose original byte differs from the 2-bit decode, sorted
    /// ascending: degenerate IUPAC codes, lowercase bases, and any byte that
    /// is not a base at all.
    pub fn exceptions(&self) -> &[(u32, u8)] {
        &self.exceptions
    }

    /// Exception positions and bytes as parallel arrays, ready for upload as
    /// device buffers.
    pub fn exception_arrays(&self) -> (Vec<u32>, Vec<u8>) {
        self.exceptions.iter().copied().unzip()
    }

    /// Bytes used by the packed representation (bases + mask + exceptions).
    pub fn byte_len(&self) -> usize {
        self.two_bit.byte_len()
            + self.exceptions.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<u8>())
    }

    /// Unpack the original sequence exactly.
    pub fn decode(&self) -> Vec<u8> {
        let mut seq = self.two_bit.decode();
        for &(pos, byte) in &self.exceptions {
            seq[pos as usize] = byte;
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for &c in b"ACGT" {
            assert_eq!(code_to_char(char_to_code(c)), c);
        }
        assert_eq!(char_to_code(b'g'), 2);
    }

    #[test]
    fn encode_decode_concrete() {
        let seq = b"ACGTACGTGGCCTTAA";
        let p = TwoBitSeq::encode(seq);
        assert_eq!(p.decode(), seq);
        assert_eq!(p.packed_bytes().len(), 4);
        assert!((0..seq.len()).all(|i| !p.is_masked(i)));
    }

    #[test]
    fn ambiguous_positions_are_masked() {
        let p = TwoBitSeq::encode(b"ARNGT");
        assert!(!p.is_masked(0));
        assert!(p.is_masked(1), "R is ambiguous");
        assert!(p.is_masked(2));
        assert_eq!(p.decode(), b"ANNGT");
    }

    #[test]
    fn lowercase_is_handled() {
        let p = TwoBitSeq::encode(b"acgt");
        assert_eq!(p.decode(), b"ACGT");
    }

    #[test]
    fn compression_ratio_is_about_four() {
        let seq = vec![b'A'; 1000];
        let p = TwoBitSeq::encode(&seq);
        // 250 packed + 125 mask bytes.
        assert_eq!(p.byte_len(), 375);
    }

    #[test]
    fn non_multiple_of_four_lengths() {
        for n in 0..9 {
            let seq: Vec<u8> = b"ACGTACGTT"[..n].to_vec();
            let p = TwoBitSeq::encode(&seq);
            assert_eq!(p.len(), n);
            assert_eq!(p.decode(), seq);
        }
        assert!(TwoBitSeq::encode(b"").is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        TwoBitSeq::encode(b"ACGT").code(4);
    }

    #[test]
    fn packed_seq_roundtrips_every_iupac_code() {
        use crate::base::IUPAC_CODES;
        // Every IUPAC code the chunker can emit, upper and lower case, in
        // every phase relative to the 4-base packing boundary.
        for &code in IUPAC_CODES.iter() {
            for c in [code, code.to_ascii_lowercase()] {
                for phase in 0..4 {
                    let mut seq = vec![b'A'; phase];
                    seq.push(c);
                    seq.extend_from_slice(b"CGT");
                    let p = PackedSeq::encode(&seq);
                    assert_eq!(p.decode(), seq, "code {} at phase {phase}", c as char);
                }
            }
        }
    }

    #[test]
    fn packed_seq_roundtrips_random_genomic_sequences() {
        use crate::base::IUPAC_CODES;
        use crate::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(0x2B17);
        for round in 0..32 {
            let len = rng.gen_below(700);
            let seq: Vec<u8> = (0..len)
                .map(|_| {
                    if rng.gen_bool(0.05) {
                        IUPAC_CODES[rng.gen_below(IUPAC_CODES.len())]
                    } else if rng.gen_bool(0.02) {
                        b"acgtn"[rng.gen_below(5)]
                    } else {
                        b"ACGTN"[rng.gen_below(5)]
                    }
                })
                .collect();
            let p = PackedSeq::encode(&seq);
            assert_eq!(p.decode(), seq, "round {round}");
            assert_eq!(p.len(), seq.len());
        }
    }

    #[test]
    fn packed_seq_exceptions_stay_rare_on_plain_genomes() {
        // A concrete uppercase genome with N runs needs no exceptions at all,
        // so the footprint stays ~4x under the raw bytes.
        let mut seq = vec![b'N'; 100];
        seq.extend(std::iter::repeat_n(*b"ACGT", 200).flatten());
        seq.extend(vec![b'N'; 100]);
        let p = PackedSeq::encode(&seq);
        assert!(p.exceptions().is_empty());
        assert_eq!(
            p.byte_len(),
            seq.len().div_ceil(4) + seq.len().div_ceil(8),
            "packed + mask bytes only, ~2.7x under raw"
        );
        let (pos, val) = p.exception_arrays();
        assert!(pos.is_empty() && val.is_empty());
    }
}
