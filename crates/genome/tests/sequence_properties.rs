//! Property-based tests of the genome substrate: FASTA round-trips, 2-bit
//! packing, the IUPAC algebra, and synthetic-assembly invariants.

use genome::base::{base_mask, complement, is_iupac, matches, IUPAC_CODES};
use genome::fasta::{self, FastaRecord, ParseOptions};
use genome::twobit::TwoBitSeq;
use genome::{synth, Assembly, Chromosome, Chunker};
use proptest::prelude::*;

fn iupac_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(IUPAC_CODES.to_vec()), 1..max_len)
}

fn record_id() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_.]{1,12}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fasta_roundtrips_arbitrary_records(
        ids in proptest::collection::vec(record_id(), 1..6),
        seqs in proptest::collection::vec(iupac_seq(200), 1..6),
        wrap in 1usize..100,
    ) {
        let records: Vec<FastaRecord> = ids
            .iter()
            .zip(&seqs)
            .map(|(id, seq)| FastaRecord::new(id.clone(), seq.clone()))
            .collect();
        let mut text = Vec::new();
        fasta::write(&mut text, &records, wrap).unwrap();
        let parsed = fasta::parse(&text[..], ParseOptions::default()).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn lenient_parsing_never_fails_on_ascii_noise(
        body in "[ -~]{0,200}",
    ) {
        let text = format!(">noise\nA{body}\n");
        let parsed = fasta::parse_str(&text, ParseOptions { strict: false });
        // Headers inside the body can split records, but parsing itself must
        // only fail for structural reasons (empty records), never panic.
        if let Ok(records) = parsed {
            for r in records {
                prop_assert!(r.seq.iter().all(|&b| is_iupac(b)));
            }
        }
    }

    #[test]
    fn twobit_roundtrips_with_n_for_ambiguity(seq in iupac_seq(500)) {
        let packed = TwoBitSeq::encode(&seq);
        prop_assert_eq!(packed.len(), seq.len());
        let decoded = packed.decode();
        for (i, (&orig, &dec)) in seq.iter().zip(&decoded).enumerate() {
            if matches!(orig, b'A' | b'C' | b'G' | b'T') {
                prop_assert_eq!(dec, orig, "concrete base at {}", i);
                prop_assert!(!packed.is_masked(i));
            } else {
                prop_assert_eq!(dec, b'N', "ambiguous base at {}", i);
                prop_assert!(packed.is_masked(i));
            }
        }
        // Packing is at most (2 bits + 1 mask bit)/base, rounded up.
        prop_assert!(packed.byte_len() <= seq.len().div_ceil(4) + seq.len().div_ceil(8));
    }

    #[test]
    fn subset_rule_is_mask_algebra(
        p in proptest::sample::select(IUPAC_CODES.to_vec()),
        g in proptest::sample::select(IUPAC_CODES.to_vec()),
    ) {
        // matches(p, g) <=> mask(g) ⊆ mask(p); complement preserves it.
        let by_mask = base_mask(g) != 0 && base_mask(g) & base_mask(p) == base_mask(g);
        prop_assert_eq!(matches(p, g), by_mask);
        prop_assert_eq!(matches(complement(p), complement(g)), matches(p, g));
    }

    #[test]
    fn synthetic_assemblies_are_reproducible_and_structured(
        seed in 0u64..1000,
        chroms in 1usize..5,
        len in 2_000usize..20_000,
    ) {
        let make = || {
            synth::SynthSpec::new("prop", seed)
                .chromosomes(chroms)
                .mean_chromosome_len(len)
                .telomere_n(50)
                .generate()
        };
        let a = make();
        prop_assert_eq!(&a, &make());
        prop_assert_eq!(a.chromosomes().len(), chroms);
        let total: usize = a.total_len();
        let expect = len * chroms;
        let rel_err = ((total as f64) - (expect as f64)).abs() / (expect as f64);
        prop_assert!(rel_err < 0.02, "total {} vs expected {}", total, expect);
        for c in a.chromosomes() {
            prop_assert!(c.seq.iter().all(|&b| is_iupac(b)));
            prop_assert_eq!(c.seq[0], b'N', "telomere");
        }
    }

    #[test]
    fn chunker_windows_reconstruct_the_chromosome(
        seq in iupac_seq(400),
        chunk in 1usize..150,
        overlap in 0usize..30,
    ) {
        let mut asm = Assembly::new("prop");
        asm.push(Chromosome::new("c", seq.clone()));
        let mut rebuilt = vec![0u8; seq.len()];
        for piece in Chunker::new(&asm, chunk, overlap) {
            // Owned scan positions reconstruct the sequence exactly once;
            // the overlap region must agree with the chromosome too.
            rebuilt[piece.start..piece.start + piece.scan_len]
                .copy_from_slice(&piece.seq[..piece.scan_len]);
            prop_assert_eq!(
                piece.seq,
                &seq[piece.start..piece.start + piece.seq.len()]
            );
        }
        prop_assert_eq!(rebuilt, seq);
    }

    #[test]
    fn implanting_preserves_length_and_alphabet(
        seed in 0u64..500,
        copies in 1usize..6,
    ) {
        let mut asm = synth::SynthSpec::new("prop", seed)
            .chromosomes(2)
            .mean_chromosome_len(5_000)
            .telomere_n(20)
            .ambiguity_rate(0.0)
            .generate();
        let before = asm.total_len();
        synth::implant_sites(&mut asm, seed ^ 0xbeef, b"ACGTACGTACGTACGTAGG", copies, 3);
        prop_assert_eq!(asm.total_len(), before, "implants substitute in place");
        for c in asm.chromosomes() {
            prop_assert!(c.seq.iter().all(|&b| is_iupac(b)));
        }
    }
}
