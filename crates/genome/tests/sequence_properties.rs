//! Seeded-random property tests of the genome substrate: FASTA round-trips,
//! 2-bit packing, the IUPAC algebra, and synthetic-assembly invariants.
//!
//! Each test sweeps a fixed number of cases drawn from [`genome::rng`], so
//! runs are deterministic and need no external property-testing crate.

use genome::base::{base_mask, complement, is_iupac, matches, IUPAC_CODES};
use genome::fasta::{self, FastaRecord, ParseOptions};
use genome::rng::Xoshiro256;
use genome::twobit::TwoBitSeq;
use genome::{synth, Assembly, Chromosome, Chunker};

fn iupac_seq(rng: &mut Xoshiro256, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(1, max_len);
    (0..len).map(|_| *rng.choose(&IUPAC_CODES).unwrap()).collect()
}

fn record_id(rng: &mut Xoshiro256) -> String {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_.";
    let len = rng.gen_range(1, 13);
    (0..len)
        .map(|_| ALPHABET[rng.gen_below(ALPHABET.len())] as char)
        .collect()
}

#[test]
fn fasta_roundtrips_arbitrary_records() {
    let mut rng = Xoshiro256::seed_from_u64(0xFA57A);
    for _ in 0..64 {
        let n = rng.gen_range(1, 6);
        let records: Vec<FastaRecord> = (0..n)
            .map(|_| {
                let id = record_id(&mut rng);
                let seq = iupac_seq(&mut rng, 200);
                FastaRecord::new(id, seq)
            })
            .collect();
        let wrap = rng.gen_range(1, 100);
        let mut text = Vec::new();
        fasta::write(&mut text, &records, wrap).unwrap();
        let parsed = fasta::parse(&text[..], ParseOptions::default()).unwrap();
        assert_eq!(parsed, records, "wrap {wrap}");
    }
}

#[test]
fn lenient_parsing_never_fails_on_ascii_noise() {
    let mut rng = Xoshiro256::seed_from_u64(0x9015E);
    for _ in 0..64 {
        let len = rng.gen_below(201);
        let body: String = (0..len)
            .map(|_| (b' ' + rng.gen_below(95) as u8) as char)
            .collect();
        let text = format!(">noise\nA{body}\n");
        // Headers inside the body can split records, but parsing itself must
        // only fail for structural reasons (empty records), never panic.
        if let Ok(records) = fasta::parse_str(&text, ParseOptions { strict: false }) {
            for r in records {
                assert!(r.seq.iter().all(|&b| is_iupac(b)), "noise body {body:?}");
            }
        }
    }
}

#[test]
fn twobit_roundtrips_with_n_for_ambiguity() {
    let mut rng = Xoshiro256::seed_from_u64(0x2B17);
    for _ in 0..64 {
        let seq = iupac_seq(&mut rng, 500);
        let packed = TwoBitSeq::encode(&seq);
        assert_eq!(packed.len(), seq.len());
        let decoded = packed.decode();
        for (i, (&orig, &dec)) in seq.iter().zip(&decoded).enumerate() {
            if matches!(orig, b'A' | b'C' | b'G' | b'T') {
                assert_eq!(dec, orig, "concrete base at {i}");
                assert!(!packed.is_masked(i));
            } else {
                assert_eq!(dec, b'N', "ambiguous base at {i}");
                assert!(packed.is_masked(i));
            }
        }
        // Packing is at most (2 bits + 1 mask bit)/base, rounded up.
        assert!(packed.byte_len() <= seq.len().div_ceil(4) + seq.len().div_ceil(8));
    }
}

#[test]
fn subset_rule_is_mask_algebra() {
    // Small enough to sweep exhaustively: every (pattern, genome) code pair.
    for p in IUPAC_CODES {
        for g in IUPAC_CODES {
            // matches(p, g) <=> mask(g) ⊆ mask(p); complement preserves it.
            let by_mask = base_mask(g) != 0 && base_mask(g) & base_mask(p) == base_mask(g);
            assert_eq!(matches(p, g), by_mask, "p={} g={}", p as char, g as char);
            assert_eq!(
                matches(complement(p), complement(g)),
                matches(p, g),
                "complement breaks subset rule for p={} g={}",
                p as char,
                g as char
            );
        }
    }
}

#[test]
fn synthetic_assemblies_are_reproducible_and_structured() {
    let mut rng = Xoshiro256::seed_from_u64(0x5717);
    for _ in 0..24 {
        let seed = rng.gen_below(1000) as u64;
        let chroms = rng.gen_range(1, 5);
        let len = rng.gen_range(2_000, 20_000);
        let make = || {
            synth::SynthSpec::new("prop", seed)
                .chromosomes(chroms)
                .mean_chromosome_len(len)
                .telomere_n(50)
                .generate()
        };
        let a = make();
        assert_eq!(&a, &make());
        assert_eq!(a.chromosomes().len(), chroms);
        let total: usize = a.total_len();
        let expect = len * chroms;
        let rel_err = ((total as f64) - (expect as f64)).abs() / (expect as f64);
        assert!(rel_err < 0.02, "total {total} vs expected {expect}");
        for c in a.chromosomes() {
            assert!(c.seq.iter().all(|&b| is_iupac(b)));
            assert_eq!(c.seq[0], b'N', "telomere");
        }
    }
}

#[test]
fn chunker_windows_reconstruct_the_chromosome() {
    let mut rng = Xoshiro256::seed_from_u64(0xC4C4);
    for _ in 0..64 {
        let seq = iupac_seq(&mut rng, 400);
        let chunk = rng.gen_range(1, 150);
        let overlap = rng.gen_below(30);
        let mut asm = Assembly::new("prop");
        asm.push(Chromosome::new("c", seq.clone()));
        let mut rebuilt = vec![0u8; seq.len()];
        for piece in Chunker::new(&asm, chunk, overlap) {
            // Owned scan positions reconstruct the sequence exactly once;
            // the overlap region must agree with the chromosome too.
            rebuilt[piece.start..piece.start + piece.scan_len]
                .copy_from_slice(&piece.seq[..piece.scan_len]);
            assert_eq!(piece.seq, &seq[piece.start..piece.start + piece.seq.len()]);
        }
        assert_eq!(rebuilt, seq, "chunk {chunk} overlap {overlap}");
    }
}

#[test]
fn implanting_preserves_length_and_alphabet() {
    let mut rng = Xoshiro256::seed_from_u64(0x1142);
    for _ in 0..24 {
        let seed = rng.gen_below(500) as u64;
        let copies = rng.gen_range(1, 6);
        let mut asm = synth::SynthSpec::new("prop", seed)
            .chromosomes(2)
            .mean_chromosome_len(5_000)
            .telomere_n(20)
            .ambiguity_rate(0.0)
            .generate();
        let before = asm.total_len();
        synth::implant_sites(&mut asm, seed ^ 0xbeef, b"ACGTACGTACGTACGTAGG", copies, 3);
        assert_eq!(asm.total_len(), before, "implants substitute in place");
        for c in asm.chromosomes() {
            assert!(c.seq.iter().all(|&b| is_iupac(b)));
        }
    }
}
