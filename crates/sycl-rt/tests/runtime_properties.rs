//! Seeded-random property tests of the SYCL-flavoured runtime: buffer
//! binding, ranged accessors, handler copies, USM round-trips and clock
//! monotonicity. Cases are drawn from `genome::rng`, so runs are
//! deterministic and need no external property-testing crate.

use genome::rng::Xoshiro256;
use gpu_sim::NdRange;
use sycl_rt::{AccessMode, Buffer, GpuSelector, Queue};

fn queue() -> Queue {
    Queue::new(&GpuSelector::named("MI100")).unwrap()
}

#[test]
fn buffers_snapshot_and_bind_losslessly() {
    let mut rng = Xoshiro256::seed_from_u64(0xB0F);
    for _ in 0..32 {
        let data: Vec<u32> = (0..rng.gen_range(1, 300))
            .map(|_| rng.next_u64() as u32)
            .collect();
        let q = queue();
        let buf = Buffer::from_slice(&data);
        assert_eq!(buf.to_vec(), data);
        // Binding through an accessor preserves contents.
        q.submit(|h| {
            h.get_access(&buf, AccessMode::Read)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(buf.to_vec(), data);
    }
}

#[test]
fn ranged_copies_write_exactly_the_window() {
    let mut rng = Xoshiro256::seed_from_u64(0x4A6);
    for _ in 0..32 {
        let offset = rng.gen_below(100);
        let window = rng.gen_range(1, 50);
        let len = offset + window + rng.gen_below(64);
        let q = queue();
        let buf = Buffer::<u8>::new(len);
        q.submit(|h| {
            let acc = h.get_access_range(&buf, AccessMode::Write, window, offset)?;
            h.copy_to_device(&vec![0xAB; window], &acc)
        })
        .unwrap();
        let v = buf.to_vec();
        for (i, &b) in v.iter().enumerate() {
            let inside = i >= offset && i < offset + window;
            assert_eq!(b == 0xAB, inside, "byte {i} corrupted");
        }
    }
}

#[test]
fn kernels_see_exactly_the_accessor_window() {
    let mut rng = Xoshiro256::seed_from_u64(0xACC);
    for _ in 0..16 {
        let base = rng.next_u64() as u32;
        let n = rng.gen_range(1, 8);
        let len = n * 64;
        let q = queue();
        let init: Vec<u32> = (0..len as u32).map(|i| i.wrapping_add(base)).collect();
        let buf = Buffer::from_slice(&init);
        q.submit(|h| {
            let acc = h.get_access(&buf, AccessMode::ReadWrite)?;
            h.parallel_for_fn("neg", NdRange::linear(len, 64), move |item| {
                let i = item.global_id(0);
                let v = acc.load(item, i);
                acc.store(item, i, !v);
            })
        })
        .unwrap();
        let expect: Vec<u32> = init.iter().map(|&v| !v).collect();
        assert_eq!(buf.to_vec(), expect);
    }
}

#[test]
fn usm_memcpy_roundtrips() {
    let mut rng = Xoshiro256::seed_from_u64(0x5E4);
    for _ in 0..32 {
        let data: Vec<u64> = (0..rng.gen_range(1, 200)).map(|_| rng.next_u64()).collect();
        let q = queue();
        let ptr = q.malloc_device::<u64>(data.len()).unwrap();
        q.memcpy_to_device(&ptr, &data).unwrap();
        let mut back = vec![0u64; data.len()];
        q.memcpy_to_host(&mut back, &ptr).unwrap();
        assert_eq!(back, data);
    }
}

#[test]
fn clock_grows_with_every_command_group() {
    let mut rng = Xoshiro256::seed_from_u64(0x71C);
    for _ in 0..8 {
        let groups = rng.gen_range(1, 15);
        let q = queue();
        let buf = Buffer::from_slice(&vec![1u32; 64]);
        let mut last = 0.0;
        for g in 0..groups {
            let ev = q
                .submit(|h| {
                    let acc = h.get_access(&buf, AccessMode::ReadWrite)?;
                    h.parallel_for_fn(&format!("g{g}"), NdRange::linear(64, 64), move |item| {
                        let i = item.global_id(0);
                        let v = acc.load(item, i);
                        acc.store(item, i, v + 1);
                    })
                })
                .unwrap();
            assert!(ev.end_s() > last);
            assert!(ev.end_s() >= ev.start_s());
            last = ev.end_s();
        }
        assert_eq!(buf.to_vec(), vec![1 + groups as u32; 64]);
    }
}

#[test]
fn shared_usm_host_view_tracks_device_writes() {
    let mut rng = Xoshiro256::seed_from_u64(0x05A);
    for _ in 0..16 {
        let v = rng.next_u64() as u32;
        let q = queue();
        let ptr = q.malloc_shared::<u32>(4).unwrap();
        q.host_write(&ptr, 0, &[v; 4]).unwrap();
        q.submit(|h| {
            let raw = ptr.raw();
            h.parallel_for_fn("wr", NdRange::linear(4, 4), move |item| {
                let i = item.global_id(0);
                let x = raw.load(item, i);
                raw.store(item, i, x ^ 0xFFFF_FFFF);
            })
        })
        .unwrap();
        ptr.mark_device_dirty();
        assert_eq!(q.host_read(&ptr).unwrap(), vec![v ^ 0xFFFF_FFFF; 4]);
    }
}
