//! Property-based tests of the SYCL-flavoured runtime: buffer binding,
//! ranged accessors, handler copies, USM round-trips and clock monotonicity.

use gpu_sim::NdRange;
use proptest::prelude::*;
use sycl_rt::{AccessMode, Buffer, GpuSelector, Queue};

fn queue() -> Queue {
    Queue::new(&GpuSelector::named("MI100")).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn buffers_snapshot_and_bind_losslessly(data in proptest::collection::vec(any::<u32>(), 1..300)) {
        let q = queue();
        let buf = Buffer::from_slice(&data);
        prop_assert_eq!(buf.to_vec(), data.clone());
        // Binding through an accessor preserves contents.
        q.submit(|h| {
            h.get_access(&buf, AccessMode::Read)?;
            Ok(())
        })
        .unwrap();
        prop_assert_eq!(buf.to_vec(), data);
    }

    #[test]
    fn ranged_copies_write_exactly_the_window(
        len in 4usize..200,
        offset in 0usize..100,
        window in 1usize..50,
    ) {
        prop_assume!(offset + window <= len);
        let q = queue();
        let buf = Buffer::<u8>::new(len);
        q.submit(|h| {
            let acc = h.get_access_range(&buf, AccessMode::Write, window, offset)?;
            h.copy_to_device(&vec![0xAB; window], &acc)
        })
        .unwrap();
        let v = buf.to_vec();
        for (i, &b) in v.iter().enumerate() {
            let inside = i >= offset && i < offset + window;
            prop_assert_eq!(b == 0xAB, inside, "byte {} corrupted", i);
        }
    }

    #[test]
    fn kernels_see_exactly_the_accessor_window(
        base in any::<u32>(),
        n in 1usize..8,
    ) {
        let len = n * 64;
        let q = queue();
        let init: Vec<u32> = (0..len as u32).map(|i| i.wrapping_add(base)).collect();
        let buf = Buffer::from_slice(&init);
        q.submit(|h| {
            let acc = h.get_access(&buf, AccessMode::ReadWrite)?;
            h.parallel_for_fn("neg", NdRange::linear(len, 64), move |item| {
                let i = item.global_id(0);
                let v = acc.load(item, i);
                acc.store(item, i, !v);
            })
        })
        .unwrap();
        let expect: Vec<u32> = init.iter().map(|&v| !v).collect();
        prop_assert_eq!(buf.to_vec(), expect);
    }

    #[test]
    fn usm_memcpy_roundtrips(data in proptest::collection::vec(any::<u64>(), 1..200)) {
        let q = queue();
        let ptr = q.malloc_device::<u64>(data.len()).unwrap();
        q.memcpy_to_device(&ptr, &data).unwrap();
        let mut back = vec![0u64; data.len()];
        q.memcpy_to_host(&mut back, &ptr).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn clock_grows_with_every_command_group(groups in 1usize..15) {
        let q = queue();
        let buf = Buffer::from_slice(&vec![1u32; 64]);
        let mut last = 0.0;
        for g in 0..groups {
            let ev = q
                .submit(|h| {
                    let acc = h.get_access(&buf, AccessMode::ReadWrite)?;
                    h.parallel_for_fn(&format!("g{g}"), NdRange::linear(64, 64), move |item| {
                        let i = item.global_id(0);
                        let v = acc.load(item, i);
                        acc.store(item, i, v + 1);
                    })
                })
                .unwrap();
            prop_assert!(ev.end_s() > last);
            prop_assert!(ev.end_s() >= ev.start_s());
            last = ev.end_s();
        }
        prop_assert_eq!(buf.to_vec(), vec![1 + groups as u32; 64]);
    }

    #[test]
    fn shared_usm_host_view_tracks_device_writes(v in any::<u32>()) {
        let q = queue();
        let ptr = q.malloc_shared::<u32>(4).unwrap();
        q.host_write(&ptr, 0, &[v; 4]).unwrap();
        q.submit(|h| {
            let raw = ptr.raw();
            h.parallel_for_fn("wr", NdRange::linear(4, 4), move |item| {
                let i = item.global_id(0);
                let x = raw.load(item, i);
                raw.store(item, i, x ^ 0xFFFF_FFFF);
            })
        })
        .unwrap();
        ptr.mark_device_dirty();
        prop_assert_eq!(q.host_read(&ptr).unwrap(), vec![v ^ 0xFFFF_FFFF; 4]);
    }
}
