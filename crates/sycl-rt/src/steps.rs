//! The eight logical programming steps of a SYCL program (Table I of the
//! paper, right column), and the [`StepLog`] recording them.

use std::fmt;
use std::sync::Arc;

use std::sync::Mutex;

/// One logical SYCL programming step (Table I, right column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Step {
    /// Device selector class (replaces OpenCL steps 1–3).
    DeviceSelector,
    /// Queue class.
    Queue,
    /// Buffer class.
    Buffer,
    /// Lambda expressions (kernel definition; replaces OpenCL steps 6–9).
    KernelLambda,
    /// Submit a SYCL kernel to a queue.
    Submit,
    /// Data transfer, implicit via accessors.
    AccessorTransfer,
    /// Event class.
    Event,
    /// Resource release, implicit via destructors.
    ImplicitRelease,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Step::DeviceSelector => "device selector class",
            Step::Queue => "queue class",
            Step::Buffer => "buffer class",
            Step::KernelLambda => "lambda expressions",
            Step::Submit => "submit a sycl kernel to a queue",
            Step::AccessorTransfer => "implicit transfer via accessors",
            Step::Event => "event class",
            Step::ImplicitRelease => "implicit release via destructors",
        };
        f.write_str(s)
    }
}

/// Every step, in Table I order.
pub const ALL_STEPS: [Step; 8] = [
    Step::DeviceSelector,
    Step::Queue,
    Step::Buffer,
    Step::KernelLambda,
    Step::Submit,
    Step::AccessorTransfer,
    Step::Event,
    Step::ImplicitRelease,
];

/// Records the distinct logical steps a host program performed, shared by
/// every object created from one [`Queue`](crate::Queue).
#[derive(Debug, Default, Clone)]
pub struct StepLog {
    inner: Arc<Mutex<Vec<Step>>>,
}

impl StepLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `step` (idempotent, first-occurrence order).
    pub fn record(&self, step: Step) {
        let mut steps = self.inner.lock().unwrap();
        if !steps.contains(&step) {
            steps.push(step);
        }
    }

    /// The distinct steps recorded so far.
    pub fn steps(&self) -> Vec<Step> {
        self.inner.lock().unwrap().clone()
    }

    /// Number of distinct steps recorded.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_has_eight_sycl_steps() {
        assert_eq!(ALL_STEPS.len(), 8);
    }

    #[test]
    fn sycl_needs_fewer_steps_than_opencl() {
        assert!(ALL_STEPS.len() < 13);
    }

    #[test]
    fn log_is_shared_and_deduplicated() {
        let log = StepLog::new();
        let clone = log.clone();
        clone.record(Step::Queue);
        clone.record(Step::Queue);
        assert_eq!(log.steps(), vec![Step::Queue]);
        assert!(!log.is_empty());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn display_is_readable() {
        for s in ALL_STEPS {
            assert!(!s.to_string().is_empty());
        }
    }
}
