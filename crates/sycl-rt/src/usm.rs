//! Unified shared memory (USM).
//!
//! §III.A of the paper: "Two abstractions are commonly used for managing
//! memory in SYCL: unified shared memory and buffer. The former is a
//! pointer-based approach that allows for easier integration with existing
//! C/C++ programs." The paper's migration uses buffers; this module
//! provides the USM alternative so the application can be expressed either
//! way (see `cas_offinder::pipeline::sycl_usm`).
//!
//! * [`Queue::malloc_device`] — device-resident allocation, reachable from
//!   kernels only; moved explicitly with [`Queue::memcpy_to_device`] /
//!   [`Queue::memcpy_to_host`].
//! * [`Queue::malloc_shared`] — migrating allocation, accessible from host
//!   code and kernels; host access is charged a migration transfer the
//!   first time after a kernel used it.
//!
//! USM allocations are freed when dropped (like a unique pointer), or
//! explicitly with [`UsmPtr::free`], matching `sycl::free`.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gpu_sim::{timing, DeviceBuffer, Scalar};

use crate::error::{SyclException, SyclResult};
use crate::event::SyclEvent;
use crate::queue::Queue;
use crate::steps::Step;

/// The USM allocation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UsmKind {
    /// `sycl::malloc_device`: device-only memory.
    Device,
    /// `sycl::malloc_shared`: migrates between host and device on demand.
    Shared,
}

struct UsmState {
    /// Shared allocations: whether the freshest copy is on the device.
    device_dirty: AtomicBool,
}

/// A typed USM allocation — the Rust-safe stand-in for the raw pointer
/// `sycl::malloc_*` returns.
///
/// # Examples
///
/// ```
/// use sycl_rt::{GpuSelector, Queue};
///
/// let queue = Queue::new(&GpuSelector::new())?;
/// let ptr = queue.malloc_device::<u32>(16)?;
/// queue.memcpy_to_device(&ptr, &[7u32; 16])?;
/// let mut back = [0u32; 16];
/// queue.memcpy_to_host(&mut back, &ptr)?;
/// assert_eq!(back, [7u32; 16]);
/// # Ok::<(), sycl_rt::SyclException>(())
/// ```
pub struct UsmPtr<T: Scalar> {
    dev: DeviceBuffer<T>,
    kind: UsmKind,
    state: Arc<UsmState>,
}

impl<T: Scalar> fmt::Debug for UsmPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UsmPtr")
            .field("len", &self.dev.len())
            .field("kind", &self.kind)
            .finish()
    }
}

impl<T: Scalar> UsmPtr<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.dev.len()
    }

    /// True when the allocation holds no elements.
    pub fn is_empty(&self) -> bool {
        self.dev.is_empty()
    }

    /// The allocation kind.
    pub fn kind(&self) -> UsmKind {
        self.kind
    }

    /// The underlying simulator buffer, for capturing in kernels — the
    /// analogue of passing the raw USM pointer to a kernel.
    pub fn raw(&self) -> DeviceBuffer<T> {
        self.dev.clone()
    }

    /// Explicitly free the allocation (`sycl::free`). Dropping has the same
    /// effect; this form exists for call sites mirroring SYCL code.
    pub fn free(self) {}

    /// Mark a *shared* allocation as modified by device work, so the next
    /// host access pays the page-migration transfer. Real shared USM tracks
    /// this through page faults; the simulator cannot observe kernel writes
    /// through the raw handle, so the application flags them.
    pub fn mark_device_dirty(&self) {
        self.state.device_dirty.store(true, Ordering::Release);
    }
}

impl Queue {
    /// Allocate `len` elements of device USM (`sycl::malloc_device`).
    ///
    /// # Errors
    ///
    /// Returns a runtime exception when the device is out of memory.
    pub fn malloc_device<T: Scalar>(&self, len: usize) -> SyclResult<UsmPtr<T>> {
        self.step_log().record(Step::Buffer);
        Ok(UsmPtr {
            dev: self.device().alloc::<T>(len)?,
            kind: UsmKind::Device,
            state: Arc::new(UsmState {
                device_dirty: AtomicBool::new(false),
            }),
        })
    }

    /// Allocate `len` elements of shared USM (`sycl::malloc_shared`).
    ///
    /// # Errors
    ///
    /// Returns a runtime exception when the device is out of memory.
    pub fn malloc_shared<T: Scalar>(&self, len: usize) -> SyclResult<UsmPtr<T>> {
        self.step_log().record(Step::Buffer);
        Ok(UsmPtr {
            dev: self.device().alloc::<T>(len)?,
            kind: UsmKind::Shared,
            state: Arc::new(UsmState {
                device_dirty: AtomicBool::new(false),
            }),
        })
    }

    /// Copy host data into a USM allocation (`queue.memcpy(dst, src, n)`).
    ///
    /// # Errors
    ///
    /// Returns [`SyclException::Invalid`] when `src` exceeds the allocation.
    pub fn memcpy_to_device<T: Scalar>(
        &self,
        dst: &UsmPtr<T>,
        src: &[T],
    ) -> SyclResult<SyclEvent> {
        if src.len() > dst.len() {
            return Err(SyclException::Invalid {
                reason: format!(
                    "memcpy source of {} elements exceeds allocation of {}",
                    src.len(),
                    dst.len()
                ),
            });
        }
        dst.dev
            .write_from_host(0, src)
            .map_err(SyclException::Runtime)?;
        self.step_log().record(Step::AccessorTransfer);
        let dur = timing::transfer_time_s(std::mem::size_of_val(src) as u64, self.device().spec());
        let (start, end) = self.advance_clock(dur);
        Ok(SyclEvent::new(start, end, Vec::new(), self.step_log().clone()))
    }

    /// Copy a USM allocation back to host memory.
    ///
    /// # Errors
    ///
    /// Returns [`SyclException::Invalid`] when `dst` exceeds the allocation.
    pub fn memcpy_to_host<T: Scalar>(
        &self,
        dst: &mut [T],
        src: &UsmPtr<T>,
    ) -> SyclResult<SyclEvent> {
        if dst.len() > src.len() {
            return Err(SyclException::Invalid {
                reason: format!(
                    "memcpy destination of {} elements exceeds allocation of {}",
                    dst.len(),
                    src.len()
                ),
            });
        }
        src.dev
            .read_to_host(0, dst)
            .map_err(SyclException::Runtime)?;
        self.step_log().record(Step::AccessorTransfer);
        let dur = timing::transfer_time_s(std::mem::size_of_val(dst) as u64, self.device().spec());
        let (start, end) = self.advance_clock(dur);
        Ok(SyclEvent::new(start, end, Vec::new(), self.step_log().clone()))
    }

    /// Host-side read of a *shared* allocation. The first host access after
    /// device work migrates the pages back (charged on the queue clock),
    /// exactly like demand-paged shared USM.
    ///
    /// # Errors
    ///
    /// Returns [`SyclException::Invalid`] for device-kind allocations —
    /// dereferencing device USM on the host is undefined in SYCL, so the
    /// simulator refuses it.
    pub fn host_read<T: Scalar>(&self, ptr: &UsmPtr<T>) -> SyclResult<Vec<T>> {
        if ptr.kind != UsmKind::Shared {
            return Err(SyclException::Invalid {
                reason: "host access to device USM allocation".to_owned(),
            });
        }
        if ptr.state.device_dirty.swap(false, Ordering::AcqRel) {
            let dur = timing::transfer_time_s(ptr.dev.byte_len(), self.device().spec());
            self.advance_clock(dur);
        }
        Ok(ptr.dev.to_vec())
    }

    /// Host-side write of a *shared* allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SyclException::Invalid`] for device-kind allocations or
    /// out-of-range writes.
    pub fn host_write<T: Scalar>(&self, ptr: &UsmPtr<T>, offset: usize, data: &[T]) -> SyclResult<()> {
        if ptr.kind != UsmKind::Shared {
            return Err(SyclException::Invalid {
                reason: "host access to device USM allocation".to_owned(),
            });
        }
        ptr.dev
            .write_from_host(offset, data)
            .map_err(SyclException::Runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::GpuSelector;
    use gpu_sim::NdRange;

    fn queue() -> Queue {
        Queue::new(&GpuSelector::named("MI100")).unwrap()
    }

    #[test]
    fn device_usm_roundtrip_charges_the_clock() {
        let q = queue();
        let ptr = q.malloc_device::<u64>(128).unwrap();
        assert_eq!(ptr.len(), 128);
        assert_eq!(ptr.kind(), UsmKind::Device);
        let before = q.elapsed_s();
        q.memcpy_to_device(&ptr, &[3u64; 128]).unwrap();
        let mut back = [0u64; 128];
        q.memcpy_to_host(&mut back, &ptr).unwrap();
        assert_eq!(back, [3u64; 128]);
        assert!(q.elapsed_s() > before);
    }

    #[test]
    fn memcpy_bounds_are_validated() {
        let q = queue();
        let ptr = q.malloc_device::<u8>(4).unwrap();
        assert!(q.memcpy_to_device(&ptr, &[0u8; 5]).is_err());
        let mut big = [0u8; 5];
        assert!(q.memcpy_to_host(&mut big, &ptr).is_err());
    }

    #[test]
    fn host_access_to_device_usm_is_refused() {
        let q = queue();
        let ptr = q.malloc_device::<u8>(4).unwrap();
        assert!(matches!(q.host_read(&ptr), Err(SyclException::Invalid { .. })));
        assert!(q.host_write(&ptr, 0, &[1]).is_err());
    }

    #[test]
    fn shared_usm_is_host_accessible_and_migrates_once() {
        let q = queue();
        let ptr = q.malloc_shared::<u32>(8).unwrap();
        q.host_write(&ptr, 0, &[9u32; 8]).unwrap();

        // A kernel writes through the raw pointer.
        q.submit(|h| {
            let raw = ptr.raw();
            h.parallel_for_fn("inc", NdRange::linear(8, 8), move |item| {
                let i = item.global_id(0);
                let v = raw.load(item, i);
                raw.store(item, i, v + 1);
            })
        })
        .unwrap();
        ptr.mark_device_dirty();

        let t0 = q.elapsed_s();
        assert_eq!(q.host_read(&ptr).unwrap(), vec![10u32; 8]);
        let t1 = q.elapsed_s();
        assert!(t1 > t0, "first host read after device work migrates");
        assert_eq!(q.host_read(&ptr).unwrap(), vec![10u32; 8]);
        assert_eq!(q.elapsed_s(), t1, "second read is free");
    }

    #[test]
    fn allocations_release_on_drop_and_free() {
        let q = queue();
        let used0 = q.device().mem_used();
        let a = q.malloc_device::<u64>(100).unwrap();
        let b = q.malloc_shared::<u64>(100).unwrap();
        assert_eq!(q.device().mem_used(), used0 + 1600);
        a.free();
        drop(b);
        assert_eq!(q.device().mem_used(), used0);
    }
}
