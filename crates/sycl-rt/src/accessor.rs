//! Accessors: where and how buffer data is accessed (§III.A, §III.E).

use std::fmt;

use gpu_sim::{AtomicScalar, DeviceBuffer, ItemCtx, Scalar};

/// Access mode of an accessor (`sycl_read`, `sycl_write`,
/// `sycl_read_write` in the paper's shorthand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Kernel reads only.
    Read,
    /// Kernel writes only.
    Write,
    /// Kernel reads and writes.
    ReadWrite,
}

/// A (possibly ranged) view of a [`Buffer`](crate::Buffer) usable inside a
/// kernel or a copy command.
///
/// Accessors are created inside a command group via
/// [`Handler::get_access`](crate::Handler::get_access) /
/// [`get_access_range`](crate::Handler::get_access_range); creating one is
/// what binds the buffer to the queue's device and what expresses the data
/// dependence that in real SYCL drives implicit transfers.
pub struct Accessor<T: Scalar> {
    dev: DeviceBuffer<T>,
    mode: AccessMode,
    offset: usize,
    range: usize,
}

impl<T: Scalar> Clone for Accessor<T> {
    fn clone(&self) -> Self {
        Accessor {
            dev: self.dev.clone(),
            mode: self.mode,
            offset: self.offset,
            range: self.range,
        }
    }
}

impl<T: Scalar> fmt::Debug for Accessor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Accessor")
            .field("mode", &self.mode)
            .field("offset", &self.offset)
            .field("range", &self.range)
            .finish()
    }
}

impl<T: Scalar> Accessor<T> {
    pub(crate) fn new(dev: DeviceBuffer<T>, mode: AccessMode, offset: usize, range: usize) -> Self {
        Accessor {
            dev,
            mode,
            offset,
            range,
        }
    }

    /// The accessor's range in elements.
    pub fn len(&self) -> usize {
        self.range
    }

    /// True when the accessor covers no elements.
    pub fn is_empty(&self) -> bool {
        self.range == 0
    }

    /// The accessor's offset into the buffer, in elements.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The access mode.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    pub(crate) fn device_buffer(&self) -> &DeviceBuffer<T> {
        &self.dev
    }

    /// The underlying simulator buffer, for constructing `gpu_sim` kernel
    /// structs that capture this accessor's data (the analogue of a SYCL
    /// kernel capturing the accessor by value).
    pub fn raw(&self) -> DeviceBuffer<T> {
        self.dev.clone()
    }

    /// Kernel-side load of element `i` (accessor-relative).
    ///
    /// # Panics
    ///
    /// Panics on a write-only accessor or an out-of-range index, as the
    /// SYCL specification makes both undefined.
    #[inline]
    pub fn load(&self, item: &mut ItemCtx, i: usize) -> T {
        assert!(
            self.mode != AccessMode::Write,
            "load through a write-only accessor"
        );
        self.dev.load(item, self.offset + i)
    }

    /// Kernel-side store to element `i` (accessor-relative).
    ///
    /// # Panics
    ///
    /// Panics on a read-only accessor or an out-of-range index.
    #[inline]
    pub fn store(&self, item: &mut ItemCtx, i: usize, v: T) {
        assert!(
            self.mode != AccessMode::Read,
            "store through a read-only accessor"
        );
        self.dev.store(item, self.offset + i, v);
    }
}

impl<T: AtomicScalar> Accessor<T> {
    /// Device-scope atomic add via an `atomic_ref` (Table V of the paper),
    /// returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics on a read-only accessor or an out-of-range index.
    #[inline]
    pub fn atomic_add(&self, item: &mut ItemCtx, i: usize, v: T) -> T {
        assert!(
            self.mode != AccessMode::Read,
            "atomic through a read-only accessor"
        );
        self.dev.atomic_add(item, self.offset + i, v)
    }

    /// The paper's `atomic_inc` wrapper: `fetch_add(1)`.
    #[inline]
    pub fn atomic_inc(&self, item: &mut ItemCtx, i: usize) -> T {
        self.atomic_add(item, i, T::one())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceSpec, KernelProgram, LocalMem, NdRange};

    #[test]
    fn accessor_geometry() {
        let device = Device::new(DeviceSpec::mi100());
        let dev = device.alloc_from_slice(&[1u32, 2, 3, 4]).unwrap();
        let acc = Accessor::new(dev, AccessMode::Read, 1, 2);
        assert_eq!(acc.len(), 2);
        assert_eq!(acc.offset(), 1);
        assert_eq!(acc.mode(), AccessMode::Read);
        assert!(!acc.is_empty());
    }

    /// Kernel that exercises the accessor's load/store/atomic paths with
    /// mode enforcement, offset translation and counting.
    struct Exercise {
        src: Accessor<u32>,
        dst: Accessor<u32>,
        count: Accessor<u32>,
    }

    impl KernelProgram for Exercise {
        type Private = ();
        fn name(&self) -> &str {
            "exercise"
        }
        fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
            let i = item.global_id(0);
            let v = self.src.load(item, i);
            self.dst.store(item, i, v + 10);
            self.count.atomic_inc(item, 0);
        }
    }

    #[test]
    fn kernel_side_access_respects_offsets() {
        let device = Device::new(DeviceSpec::mi100());
        let src_dev = device.alloc_from_slice(&[0u32, 1, 2, 3]).unwrap();
        let dst_dev = device.alloc::<u32>(2).unwrap();
        let cnt_dev = device.alloc::<u32>(1).unwrap();
        let k = Exercise {
            src: Accessor::new(src_dev, AccessMode::Read, 2, 2),
            dst: Accessor::new(dst_dev.clone(), AccessMode::Write, 0, 2),
            count: Accessor::new(cnt_dev.clone(), AccessMode::ReadWrite, 0, 1),
        };
        device.launch(&k, NdRange::linear(2, 2)).unwrap();
        assert_eq!(dst_dev.to_vec(), vec![12, 13], "offset-2 view of the source");
        assert_eq!(cnt_dev.to_vec(), vec![2]);
    }

    /// Kernel that violates the write-only mode; must panic.
    struct BadRead {
        dst: Accessor<u32>,
    }
    impl KernelProgram for BadRead {
        type Private = ();
        fn name(&self) -> &str {
            "bad-read"
        }
        fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
            let _ = self.dst.load(item, 0);
        }
    }

    #[test]
    #[should_panic(expected = "write-only accessor")]
    fn load_through_write_only_accessor_panics() {
        let device =
            Device::with_mode(DeviceSpec::mi100(), gpu_sim::ExecMode::Sequential);
        let dev = device.alloc::<u32>(1).unwrap();
        let k = BadRead {
            dst: Accessor::new(dev, AccessMode::Write, 0, 1),
        };
        let _ = device.launch(&k, NdRange::linear(1, 1));
    }
}
