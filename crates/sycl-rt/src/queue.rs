//! Queues and command-group handlers (Table I: queue class, lambda
//! expressions, submit, implicit transfers).

use std::fmt;
use std::sync::Arc;

use gpu_sim::executor::LaunchReport;
use gpu_sim::{timing, Device, ExecMode, ItemCtx, KernelProgram, LocalMem, NdRange, Scalar, SimClock};

use crate::accessor::{AccessMode, Accessor};
use crate::buffer::Buffer;
use crate::error::{SyclException, SyclResult};
use crate::event::SyclEvent;
use crate::selector::DeviceSelector;
use crate::steps::{Step, StepLog};

/// A SYCL queue: encapsulates a command queue for offloading kernels to the
/// device picked by a selector (§II.C).
///
/// # Examples
///
/// ```
/// use sycl_rt::selector::GpuSelector;
/// use sycl_rt::{AccessMode, Buffer, Queue};
///
/// let queue = Queue::new(&GpuSelector::named("MI100"))?;
/// let buf = Buffer::from_slice(&[1u32, 2, 3, 4]);
///
/// // A command group with an implicit host->device transfer and a kernel.
/// let event = queue.submit(|h| {
///     let acc = h.get_access(&buf, AccessMode::ReadWrite)?;
///     h.parallel_for_fn("triple", gpu_sim::NdRange::linear(4, 4), move |item| {
///         let i = item.global_id(0);
///         let v = acc.load(item, i);
///         acc.store(item, i, v * 3);
///     })?;
///     Ok(())
/// })?;
/// event.wait();
/// assert_eq!(buf.to_vec(), vec![3, 6, 9, 12]);
/// # Ok::<(), sycl_rt::SyclException>(())
/// ```
pub struct Queue {
    device: Device,
    clock: Arc<SimClock>,
    log: StepLog,
}

impl fmt::Debug for Queue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Queue")
            .field("device", &self.device.spec().name)
            .field("elapsed_s", &self.clock.now())
            .finish()
    }
}

impl Queue {
    /// Create a queue on the device chosen by `selector`.
    ///
    /// # Errors
    ///
    /// Returns [`SyclException::DeviceNotFound`] when the selector matches
    /// nothing.
    pub fn new(selector: &dyn DeviceSelector) -> SyclResult<Queue> {
        Self::with_mode(selector, ExecMode::default())
    }

    /// Create a queue whose device executes kernels with `mode`
    /// ([`ExecMode::Sequential`] for fully deterministic runs).
    ///
    /// # Errors
    ///
    /// Returns [`SyclException::DeviceNotFound`] when the selector matches
    /// nothing.
    pub fn with_mode(selector: &dyn DeviceSelector, mode: ExecMode) -> SyclResult<Queue> {
        let spec = selector.select()?;
        let log = StepLog::new();
        log.record(Step::DeviceSelector);
        log.record(Step::Queue);
        Ok(Queue {
            device: Device::with_mode(spec, mode),
            clock: Arc::new(SimClock::new()),
            log,
        })
    }

    /// The device this queue submits to.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Total simulated time consumed by commands on this queue, in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.clock.now()
    }

    /// The queue's programming-step log.
    pub fn step_log(&self) -> &StepLog {
        &self.log
    }

    /// Advance the queue's simulated clock (used by command implementations
    /// in sibling modules, e.g. USM memcpy).
    pub(crate) fn advance_clock(&self, duration_s: f64) -> (f64, f64) {
        self.clock.advance(duration_s)
    }

    /// Submit a command group: the closure receives a [`Handler`] and
    /// defines accessors, copies and kernels; the returned event covers the
    /// whole group (`q.submit([&](handler &cgh) {...})`).
    ///
    /// # Errors
    ///
    /// Propagates any exception raised inside the command group.
    pub fn submit<F>(&self, f: F) -> SyclResult<SyclEvent>
    where
        F: FnOnce(&mut Handler<'_>) -> SyclResult<()>,
    {
        let start = self.clock.now();
        let mut handler = Handler {
            queue: self,
            reports: Vec::new(),
        };
        f(&mut handler)?;
        let reports = handler.reports;
        let end = self.clock.now();
        Ok(SyclEvent::new(start, end, reports, self.log.clone()))
    }

    /// Wait for all submitted command groups (`queue.wait()`); the simulated
    /// queue is synchronous, so this only records event handling.
    pub fn wait(&self) {
        self.log.record(Step::Event);
    }
}

/// The command-group handler (`sycl::handler`, "cgh" in the paper's
/// listings): creates accessors, moves data, and launches kernels.
pub struct Handler<'q> {
    queue: &'q Queue,
    reports: Vec<Arc<LaunchReport>>,
}

impl fmt::Debug for Handler<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Handler")
            .field("device", &self.queue.device.spec().name)
            .field("kernels", &self.reports.len())
            .finish()
    }
}

impl Handler<'_> {
    /// Create an accessor covering the whole buffer
    /// (`buf.get_access<mode>(cgh)`), binding the buffer to this queue's
    /// device on first use.
    ///
    /// # Errors
    ///
    /// Returns a runtime exception when device allocation fails.
    pub fn get_access<T: Scalar>(
        &mut self,
        buffer: &Buffer<T>,
        mode: AccessMode,
    ) -> SyclResult<Accessor<T>> {
        self.get_access_range(buffer, mode, buffer.len(), 0)
    }

    /// Create a ranged accessor of `range` elements starting at `offset`
    /// (`buf.get_access<mode>(cgh, range, offset)`, Table III).
    ///
    /// # Errors
    ///
    /// Returns [`SyclException::Invalid`] when the range exceeds the buffer,
    /// or a runtime exception when device allocation fails.
    pub fn get_access_range<T: Scalar>(
        &mut self,
        buffer: &Buffer<T>,
        mode: AccessMode,
        range: usize,
        offset: usize,
    ) -> SyclResult<Accessor<T>> {
        if offset + range > buffer.len() {
            return Err(SyclException::Invalid {
                reason: format!(
                    "accessor range [{offset}, {}) exceeds buffer length {}",
                    offset + range,
                    buffer.len()
                ),
            });
        }
        let (dev, newly_bound) = buffer.bind(&self.queue.device)?;
        self.queue.log.record(Step::Buffer);
        if newly_bound && mode != AccessMode::Write {
            // The implicit host->device movement of the buffer's contents,
            // charged to the command group that first uses it (the paper:
            // data transfers are "implicit via accessors"). A first access
            // in write-only mode needs no upload — the runtime knows the
            // kernel will not read the old contents.
            self.advance_transfer(dev.byte_len());
        }
        Ok(Accessor::new(dev, mode, offset, range))
    }

    /// Copy host data into the accessor's range (`cgh.copy(src, d)`,
    /// Table III bottom row) — the explicit host-to-device path.
    ///
    /// # Errors
    ///
    /// Returns [`SyclException::Invalid`] when `src` is longer than the
    /// accessor's range.
    pub fn copy_to_device<T: Scalar>(&mut self, src: &[T], dst: &Accessor<T>) -> SyclResult<()> {
        if src.len() > dst.len() {
            return Err(SyclException::Invalid {
                reason: format!(
                    "copy source of {} elements exceeds accessor range {}",
                    src.len(),
                    dst.len()
                ),
            });
        }
        dst.device_buffer()
            .write_from_host(dst.offset(), src)
            .map_err(SyclException::Runtime)?;
        self.advance_transfer(std::mem::size_of_val(src) as u64);
        Ok(())
    }

    /// Copy the accessor's range to host memory (`cgh.copy(d, dst)`,
    /// Table III top row) — the device-to-host path.
    ///
    /// # Errors
    ///
    /// Returns [`SyclException::Invalid`] when `dst` is longer than the
    /// accessor's range.
    pub fn copy_from_device<T: Scalar>(
        &mut self,
        src: &Accessor<T>,
        dst: &mut [T],
    ) -> SyclResult<()> {
        if dst.len() > src.len() {
            return Err(SyclException::Invalid {
                reason: format!(
                    "copy destination of {} elements exceeds accessor range {}",
                    dst.len(),
                    src.len()
                ),
            });
        }
        src.device_buffer()
            .read_to_host(src.offset(), dst)
            .map_err(SyclException::Runtime)?;
        self.advance_transfer(std::mem::size_of_val(dst) as u64);
        Ok(())
    }

    fn advance_transfer(&self, bytes: u64) {
        self.queue.log.record(Step::AccessorTransfer);
        let dur = timing::transfer_time_s(bytes, self.queue.device.spec());
        self.queue.clock.advance(dur);
    }

    /// Launch a kernel over `nd` (`cgh.parallel_for(nd_range, kernel)`).
    ///
    /// # Errors
    ///
    /// Propagates simulator launch failures as runtime exceptions.
    pub fn parallel_for<K: KernelProgram>(&mut self, nd: NdRange, kernel: &K) -> SyclResult<()> {
        self.queue.log.record(Step::KernelLambda);
        self.queue.log.record(Step::Submit);
        let report = self
            .queue
            .device
            .launch(kernel, nd)
            .map_err(SyclException::Runtime)?;
        self.queue.clock.advance(report.sim_time_s);
        self.reports.push(Arc::new(report));
        Ok(())
    }

    /// Fill the accessor's range with `value` (`cgh.fill(accessor, v)`).
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` keeps the SYCL shape.
    pub fn fill<T: Scalar>(&mut self, dst: &Accessor<T>, value: T) -> SyclResult<()> {
        // Device-side fill: priced as a trivial transfer command.
        let data = vec![value; dst.len()];
        dst.device_buffer()
            .write_from_host(dst.offset(), &data)
            .map_err(SyclException::Runtime)?;
        self.queue.log.record(Step::AccessorTransfer);
        self.queue
            .clock
            .advance(self.queue.device.spec().transfer_overhead_s);
        Ok(())
    }

    /// Launch a single work-item (`cgh.single_task`): the idiom for scalar
    /// device work such as finalizing a reduction.
    ///
    /// # Errors
    ///
    /// Propagates simulator launch failures as runtime exceptions.
    pub fn single_task<F>(&mut self, name: &str, f: F) -> SyclResult<()>
    where
        F: Fn(&mut ItemCtx) + Send + Sync,
    {
        self.parallel_for_fn(name, NdRange::linear(1, 1), f)
    }

    /// Launch a barrier-free kernel given as a plain closure — the direct
    /// lambda form of `parallel_for`.
    ///
    /// # Errors
    ///
    /// Propagates simulator launch failures as runtime exceptions.
    pub fn parallel_for_fn<F>(&mut self, name: &str, nd: NdRange, f: F) -> SyclResult<()>
    where
        F: Fn(&mut ItemCtx) + Send + Sync,
    {
        struct Lambda<F> {
            name: String,
            f: F,
        }
        impl<F: Fn(&mut ItemCtx) + Send + Sync> KernelProgram for Lambda<F> {
            type Private = ();
            fn name(&self) -> &str {
                &self.name
            }
            fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
                (self.f)(item)
            }
        }
        self.parallel_for(
            nd,
            &Lambda {
                name: name.to_owned(),
                f,
            },
        )
    }

    /// Launch reports collected so far in this command group.
    pub fn launch_reports(&self) -> &[Arc<LaunchReport>] {
        &self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::{GpuSelector, SpecSelector};
    use gpu_sim::DeviceSpec;

    #[test]
    fn queue_records_selector_and_queue_steps() {
        let q = Queue::new(&GpuSelector::new()).unwrap();
        assert_eq!(q.step_log().steps(), vec![Step::DeviceSelector, Step::Queue]);
        assert_eq!(q.device().spec().name, "Radeon VII");
    }

    #[test]
    fn full_eight_step_lifecycle() {
        let q = Queue::new(&GpuSelector::named("MI60")).unwrap();
        let buf = Buffer::<u32>::new(64);

        // Explicit copy in, kernel, explicit copy out.
        let host: Vec<u32> = (0..64).collect();
        let ev = q
            .submit(|h| {
                let acc = h.get_access(&buf, AccessMode::ReadWrite)?;
                h.copy_to_device(&host, &acc)?;
                h.parallel_for_fn("inc", NdRange::linear(64, 64), move |item| {
                    let i = item.global_id(0);
                    let v = acc.load(item, i);
                    acc.store(item, i, v + 1);
                })?;
                Ok(())
            })
            .unwrap();
        ev.wait();

        let mut out = vec![0u32; 64];
        q.submit(|h| {
            let acc = h.get_access(&buf, AccessMode::Read)?;
            h.copy_from_device(&acc, &mut out)?;
            Ok(())
        })
        .unwrap();
        drop(buf); // implicit release via destructors

        let expect: Vec<u32> = (1..=64).collect();
        assert_eq!(out, expect);

        // The lifecycle covers 7 of the 8 steps through the API; implicit
        // release happens in Drop, which the runtime models but cannot
        // observe per-object — record it as the paper's Table I does.
        q.step_log().record(Step::ImplicitRelease);
        let mut steps = q.step_log().steps();
        steps.sort();
        let mut all = crate::steps::ALL_STEPS.to_vec();
        all.sort();
        assert_eq!(steps, all);
    }

    #[test]
    fn ranged_accessor_transfers_a_window() {
        let q = Queue::new(&SpecSelector(DeviceSpec::mi100())).unwrap();
        let buf = Buffer::from_slice(&[0u8; 10]);
        q.submit(|h| {
            let acc = h.get_access_range(&buf, AccessMode::Write, 4, 3)?;
            h.copy_to_device(&[9u8, 9, 9, 9], &acc)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(buf.to_vec(), vec![0, 0, 0, 9, 9, 9, 9, 0, 0, 0]);
    }

    #[test]
    fn accessor_range_validation() {
        let q = Queue::new(&GpuSelector::new()).unwrap();
        let buf = Buffer::<u8>::new(4);
        let err = q
            .submit(|h| {
                h.get_access_range(&buf, AccessMode::Read, 4, 1)?;
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, SyclException::Invalid { .. }));
    }

    #[test]
    fn copy_size_validation() {
        let q = Queue::new(&GpuSelector::new()).unwrap();
        let buf = Buffer::<u8>::new(2);
        let err = q
            .submit(|h| {
                let acc = h.get_access(&buf, AccessMode::Write)?;
                h.copy_to_device(&[1, 2, 3], &acc)
            })
            .unwrap_err();
        assert!(matches!(err, SyclException::Invalid { .. }));
    }

    #[test]
    fn fill_and_single_task() {
        let q = Queue::new(&GpuSelector::new()).unwrap();
        let buf = Buffer::<u32>::new(8);
        q.submit(|h| {
            let acc = h.get_access(&buf, AccessMode::ReadWrite)?;
            h.fill(&acc, 9)?;
            let acc2 = acc.clone();
            h.single_task("bump-first", move |item| {
                let v = acc2.load(item, 0);
                acc2.store(item, 0, v + 1);
            })
        })
        .unwrap();
        assert_eq!(buf.to_vec(), vec![10, 9, 9, 9, 9, 9, 9, 9]);
    }

    #[test]
    fn event_spans_the_command_group() {
        let q = Queue::new(&GpuSelector::new()).unwrap();
        let buf = Buffer::from_slice(&[1u32; 256]);
        let ev = q
            .submit(|h| {
                let acc = h.get_access(&buf, AccessMode::ReadWrite)?;
                h.parallel_for_fn("nopk", NdRange::linear(256, 64), move |item| {
                    let i = item.global_id(0);
                    let _ = acc.load(item, i);
                })?;
                Ok(())
            })
            .unwrap();
        assert!(ev.duration_s() > 0.0);
        assert_eq!(ev.launch_reports().len(), 1);
        assert_eq!(ev.launch_reports()[0].nd.local(0), 64);
        assert!((q.elapsed_s() - ev.end_s()).abs() < 1e-12);
    }
}
