//! SYCL-style exceptions.
//!
//! SYCL reports failures as C++ exceptions (the paper notes buffer
//! construction failure "is reported as runtime exception"); in Rust they
//! surface as this error type.

use std::error::Error;
use std::fmt;

use gpu_sim::SimError;

/// A SYCL runtime exception.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SyclException {
    /// No device satisfied the selector.
    DeviceNotFound {
        /// What the selector was looking for.
        wanted: String,
    },
    /// An invalid parameter was passed to an API (`errc::invalid`).
    Invalid {
        /// Human-readable description.
        reason: String,
    },
    /// A device-side failure (`errc::runtime`), e.g. buffer allocation.
    Runtime(SimError),
}

impl fmt::Display for SyclException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyclException::DeviceNotFound { wanted } => {
                write!(f, "no device satisfies the selector ({wanted})")
            }
            SyclException::Invalid { reason } => write!(f, "invalid parameter: {reason}"),
            SyclException::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl Error for SyclException {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SyclException::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for SyclException {
    fn from(e: SimError) -> Self {
        SyclException::Runtime(e)
    }
}

/// Convenience alias for SYCL results.
pub type SyclResult<T> = Result<T, SyclException>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_exceptions_chain_to_sim_errors() {
        let e: SyclException = SimError::OutOfMemory {
            requested: 1,
            available: 0,
        }
        .into();
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().starts_with("runtime error"));
    }

    #[test]
    fn selector_failure_names_the_want() {
        let e = SyclException::DeviceNotFound {
            wanted: "gpu named H100".to_owned(),
        };
        assert!(e.to_string().contains("H100"));
    }
}
