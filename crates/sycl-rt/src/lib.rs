//! # sycl-rt — a SYCL-flavoured host runtime on the `gpu-sim` simulator
//!
//! The SYCL side of the paper's migration study: the *eight logical
//! programming steps* of Table I — device selector, queue, buffer, kernel
//! lambda, submit, implicit accessor-driven transfers, events, and implicit
//! release via destructors. Compare with the thirteen steps of the sibling
//! `opencl-rt` crate; both execute on the same simulated devices, exactly as
//! the paper's two applications ran on the same GPUs.
//!
//! The API mirrors the constructs the paper walks through in §III:
//!
//! * [`Buffer`] with lazy device binding and implicit release (Table II);
//! * ranged [`Accessor`]s and `handler::copy` for data movement (Table III);
//! * `nd_item` coordinate queries via [`gpu_sim::ItemCtx`] (Table IV);
//! * `atomic_ref`-style atomics on accessors (Table V);
//! * [`Queue::submit`] + [`Handler::parallel_for`] for kernel execution
//!   (Table VI), with work-group barriers expressed as the structured
//!   phases of [`gpu_sim::KernelProgram`].
//!
//! ```
//! use sycl_rt::selector::GpuSelector;
//! use sycl_rt::{AccessMode, Buffer, Queue};
//!
//! let queue = Queue::new(&GpuSelector::new())?;
//! let buf = Buffer::from_slice(&[10u32, 20, 30, 40]);
//! queue.submit(|h| {
//!     let acc = h.get_access(&buf, AccessMode::ReadWrite)?;
//!     h.parallel_for_fn("halve", gpu_sim::NdRange::linear(4, 4), move |item| {
//!         let i = item.global_id(0);
//!         let v = acc.load(item, i);
//!         acc.store(item, i, v / 2);
//!     })
//! })?;
//! assert_eq!(buf.to_vec(), vec![5, 10, 15, 20]);
//! # Ok::<(), sycl_rt::SyclException>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accessor;
mod buffer;
mod error;
mod event;
mod queue;

pub mod selector;
pub mod steps;
pub mod usm;

pub use accessor::{AccessMode, Accessor};
pub use buffer::{Buffer, BufferKind};
pub use error::{SyclException, SyclResult};
pub use event::SyclEvent;
pub use queue::{Handler, Queue};
pub use selector::{DefaultSelector, DeviceSelector, GpuSelector, SpecSelector};
pub use steps::{Step, StepLog};
pub use usm::{UsmKind, UsmPtr};
