//! SYCL events with simulated profiling.

use std::sync::Arc;

use gpu_sim::executor::LaunchReport;

use crate::steps::{Step, StepLog};

/// The event returned by [`Queue::submit`](crate::Queue::submit), carrying
/// the simulated start/end timestamps of the command group and the launch
/// reports of any kernels it ran.
#[derive(Debug, Clone)]
pub struct SyclEvent {
    start_s: f64,
    end_s: f64,
    reports: Vec<Arc<LaunchReport>>,
    log: StepLog,
}

impl SyclEvent {
    pub(crate) fn new(
        start_s: f64,
        end_s: f64,
        reports: Vec<Arc<LaunchReport>>,
        log: StepLog,
    ) -> Self {
        SyclEvent {
            start_s,
            end_s,
            reports,
            log,
        }
    }

    /// Block until the command group completes (`event.wait()`; §III.B/E).
    /// Commands in the simulated queue execute synchronously at submit, so
    /// this only records the event-handling step.
    pub fn wait(&self) {
        self.log.record(Step::Event);
    }

    /// Simulated start timestamp in seconds.
    pub fn start_s(&self) -> f64 {
        self.start_s
    }

    /// Simulated end timestamp in seconds.
    pub fn end_s(&self) -> f64 {
        self.end_s
    }

    /// Simulated duration of the command group in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Launch reports of the kernels this command group executed.
    pub fn launch_reports(&self) -> &[Arc<LaunchReport>] {
        &self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_window_and_wait() {
        let log = StepLog::new();
        let e = SyclEvent::new(0.5, 2.0, Vec::new(), log.clone());
        assert!((e.duration_s() - 1.5).abs() < 1e-12);
        assert_eq!(e.start_s(), 0.5);
        assert_eq!(e.end_s(), 2.0);
        assert!(e.launch_reports().is_empty());
        e.wait();
        assert_eq!(log.steps(), vec![Step::Event]);
    }
}
