//! SYCL buffers (Table II of the paper, right column).

use std::fmt;
use std::sync::Arc;

use std::sync::Mutex;

use gpu_sim::{Device, DeviceBuffer, Scalar};

use crate::error::SyclResult;

/// Whether a buffer should use constant (read-only, broadcast-cached) device
/// memory when bound — the `constant_buffer` access target of §III.E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BufferKind {
    /// Ordinary global-memory buffer.
    #[default]
    Global,
    /// Read-only constant-memory buffer.
    Constant,
}

enum State<T: Scalar> {
    /// Not yet touched by any command group: holds the initial host data.
    Unbound(Vec<T>),
    /// Not yet touched, and carrying no host data (`no_init`): the first
    /// accessor allocates device storage without an implicit upload.
    Uninit(usize),
    /// Allocated on a device by the first accessor that used it.
    Bound(DeviceBuffer<T>),
}

/// A SYCL buffer: a 1-D data abstraction whose device storage is created
/// lazily by the first accessor and released implicitly when the last
/// handle is dropped.
///
/// `buffer<T, 1> d(WS)` maps to [`Buffer::new`]; `buffer<T, 1> d(h, WS)`
/// maps to [`Buffer::from_slice`]. As in SYCL, "the runtime will deallocate
/// any storage required for the buffer when it is no longer in use"
/// (§III.A) — here by `Drop` of the last clone. The write-back-on-
/// destruction of host-pointer buffers is exposed as the explicit
/// [`read_back`](Self::read_back)/[`to_vec`](Self::to_vec) snapshot, since
/// Rust's aliasing rules forbid the buffer from holding the host slice.
///
/// # Examples
///
/// ```
/// use sycl_rt::Buffer;
///
/// let buf = Buffer::from_slice(&[1u32, 2, 3]);
/// assert_eq!(buf.len(), 3);
/// assert_eq!(buf.to_vec(), vec![1, 2, 3]); // unbound: snapshot of host data
/// ```
pub struct Buffer<T: Scalar> {
    state: Arc<Mutex<State<T>>>,
    len: usize,
    kind: BufferKind,
}

impl<T: Scalar> Clone for Buffer<T> {
    fn clone(&self) -> Self {
        Buffer {
            state: Arc::clone(&self.state),
            len: self.len,
            kind: self.kind,
        }
    }
}

impl<T: Scalar> fmt::Debug for Buffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bound = matches!(*self.state.lock().unwrap(), State::Bound(_));
        f.debug_struct("Buffer")
            .field("len", &self.len)
            .field("kind", &self.kind)
            .field("bound", &bound)
            .finish()
    }
}

impl<T: Scalar> Buffer<T> {
    /// A zero-initialized buffer of `len` elements
    /// (`buffer<T, 1> d(range<1>(len))`; "the initial content of the buffer
    /// is not specified" — the simulator zero-fills).
    pub fn new(len: usize) -> Self {
        Buffer {
            state: Arc::new(Mutex::new(State::Unbound(vec![T::default(); len]))),
            len,
            kind: BufferKind::Global,
        }
    }

    /// A device-only buffer of `len` elements that is never uploaded — the
    /// SYCL `property::no_init` construction. The first accessor binds it
    /// with a plain allocation and no implicit host-to-device transfer, so
    /// kernels that fully overwrite it (scratch and output arrays) pay no
    /// phantom upload bytes.
    pub fn uninit(len: usize) -> Self {
        Buffer {
            state: Arc::new(Mutex::new(State::Uninit(len))),
            len,
            kind: BufferKind::Global,
        }
    }

    /// A buffer initialized from host data (`buffer<T, 1> d(h, WS)`).
    pub fn from_slice(data: &[T]) -> Self {
        Buffer {
            state: Arc::new(Mutex::new(State::Unbound(data.to_vec()))),
            len: data.len(),
            kind: BufferKind::Global,
        }
    }

    /// A buffer taking ownership of host data.
    pub fn from_vec(data: Vec<T>) -> Self {
        let len = data.len();
        Buffer {
            state: Arc::new(Mutex::new(State::Unbound(data))),
            len,
            kind: BufferKind::Global,
        }
    }

    /// Mark the buffer for constant-memory placement (the
    /// `constant_buffer` access target of §III.E). Must be called before the
    /// first accessor binds it.
    pub fn constant(mut self) -> Self {
        self.kind = BufferKind::Constant;
        self
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer's memory kind.
    pub fn kind(&self) -> BufferKind {
        self.kind
    }

    /// Bind to `device`, allocating and uploading the initial contents on
    /// first use. Called by accessors. The boolean is `true` when this call
    /// performed the binding (and therefore the implicit host-to-device
    /// upload the command group must be charged for).
    ///
    /// # Errors
    ///
    /// Returns a runtime exception when the device is out of memory — "the
    /// failure of constructing a SYCL buffer is reported as runtime
    /// exception" (§III.A).
    pub(crate) fn bind(&self, device: &Device) -> SyclResult<(DeviceBuffer<T>, bool)> {
        let mut state = self.state.lock().unwrap();
        match &*state {
            State::Bound(b) => Ok((b.clone(), false)),
            State::Uninit(len) => {
                let dev = match self.kind {
                    BufferKind::Global => device.alloc(*len)?,
                    BufferKind::Constant => device.alloc_constant(*len)?,
                };
                let handle = dev.clone();
                *state = State::Bound(dev);
                // Not "newly bound" for charging purposes: `no_init` means
                // there is nothing to upload.
                Ok((handle, false))
            }
            State::Unbound(init) => {
                let dev = match self.kind {
                    BufferKind::Global => device.alloc_from_slice(init)?,
                    BufferKind::Constant => device.alloc_constant_from_slice(init)?,
                };
                let handle = dev.clone();
                *state = State::Bound(dev);
                Ok((handle, true))
            }
        }
    }

    /// Snapshot the current contents (device contents once bound, the
    /// initial host data before).
    pub fn to_vec(&self) -> Vec<T> {
        match &*self.state.lock().unwrap() {
            State::Bound(b) => b.to_vec(),
            State::Unbound(v) => v.clone(),
            State::Uninit(len) => vec![T::default(); *len],
        }
    }

    /// Copy the current contents back into a host slice — the write-back a
    /// SYCL buffer performs when destroyed.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn read_back(&self, out: &mut [T]) {
        assert_eq!(
            out.len(),
            self.len,
            "read_back slice length must equal buffer length"
        );
        out.copy_from_slice(&self.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    #[test]
    fn uninit_buffers_bind_without_upload() {
        let device = gpu_sim::Device::new(DeviceSpec::mi100());
        let b = Buffer::<u32>::uninit(16);
        assert_eq!(b.to_vec(), vec![0; 16], "unbound no_init snapshot is zero");
        let before = device.traffic().h2d_bytes;
        let (dev, newly_bound) = b.bind(&device).unwrap();
        assert!(!newly_bound, "no_init binding charges no implicit upload");
        assert_eq!(dev.len(), 16);
        assert_eq!(device.traffic().h2d_bytes, before, "no h2d bytes recorded");
    }

    #[test]
    fn unbound_buffers_snapshot_host_data() {
        let b = Buffer::from_vec(vec![5u8, 6]);
        assert_eq!(b.to_vec(), vec![5, 6]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn binding_uploads_and_is_idempotent() {
        let device = Device::new(DeviceSpec::mi100());
        let b = Buffer::from_slice(&[1u32, 2, 3]);
        let (d1, fresh) = b.bind(&device).unwrap();
        assert!(fresh);
        assert_eq!(d1.to_vec(), vec![1, 2, 3]);
        let used = device.mem_used();
        let (_d2, fresh2) = b.bind(&device).unwrap();
        assert!(!fresh2);
        assert_eq!(device.mem_used(), used, "second bind reuses the allocation");
    }

    #[test]
    fn storage_is_released_when_last_handle_drops() {
        let device = Device::new(DeviceSpec::mi60());
        let b = Buffer::<u64>::new(100);
        let (handle, _) = b.bind(&device).unwrap();
        assert_eq!(device.mem_used(), 800);
        drop(handle);
        assert_eq!(device.mem_used(), 800, "buffer still holds it");
        drop(b);
        assert_eq!(device.mem_used(), 0, "implicit release via destructors");
    }

    #[test]
    fn constant_buffers_bind_to_constant_space() {
        let device = Device::new(DeviceSpec::mi100());
        let b = Buffer::from_slice(&[1u8, 2]).constant();
        assert_eq!(b.kind(), BufferKind::Constant);
        let (d, _) = b.bind(&device).unwrap();
        assert_eq!(d.space(), gpu_sim::AddressSpace::Constant);
    }

    #[test]
    fn oversized_allocation_is_a_runtime_exception() {
        let spec = DeviceSpec {
            global_mem_bytes: 16,
            ..DeviceSpec::mi100()
        };
        let device = Device::new(spec);
        let b = Buffer::<u64>::new(100);
        let err = b.bind(&device).unwrap_err();
        assert!(matches!(err, crate::SyclException::Runtime(_)));
    }

    #[test]
    fn read_back_copies_device_contents() {
        let device = Device::new(DeviceSpec::mi100());
        let b = Buffer::from_slice(&[9u16, 9]);
        let (d, _) = b.bind(&device).unwrap();
        d.write_from_host(0, &[1, 2]).unwrap();
        let mut host = [0u16; 2];
        b.read_back(&mut host);
        assert_eq!(host, [1, 2]);
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn read_back_length_mismatch_panics() {
        let b = Buffer::<u8>::new(3);
        let mut out = [0u8; 2];
        b.read_back(&mut out);
    }
}
