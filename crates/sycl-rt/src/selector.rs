//! Device selectors (Table I: SYCL replaces OpenCL's platform/device/context
//! steps with a selector class).

use gpu_sim::DeviceSpec;

use crate::error::{SyclException, SyclResult};

/// A device selector: searches for a device matching a user preference at
/// runtime (§II.C of the paper).
pub trait DeviceSelector {
    /// Pick a device.
    ///
    /// # Errors
    ///
    /// Returns [`SyclException::DeviceNotFound`] when nothing matches.
    fn select(&self) -> SyclResult<DeviceSpec>;
}

/// Selects a GPU — optionally one with a specific name.
///
/// # Examples
///
/// ```
/// use sycl_rt::selector::{DeviceSelector, GpuSelector};
///
/// let spec = GpuSelector::named("MI100").select()?;
/// assert_eq!(spec.name, "MI100");
/// # Ok::<(), sycl_rt::SyclException>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GpuSelector {
    name: Option<String>,
}

impl GpuSelector {
    /// Select any GPU (the first of the simulated platform).
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the GPU called `name`.
    pub fn named(name: impl Into<String>) -> Self {
        GpuSelector {
            name: Some(name.into()),
        }
    }
}

impl DeviceSelector for GpuSelector {
    fn select(&self) -> SyclResult<DeviceSpec> {
        let devices = DeviceSpec::paper_devices();
        match &self.name {
            None => Ok(devices[0].clone()),
            Some(name) => devices
                .into_iter()
                .find(|d| d.name == name)
                .ok_or_else(|| SyclException::DeviceNotFound {
                    wanted: format!("gpu named {name}"),
                }),
        }
    }
}

/// The default selector: any accelerator, falling back like SYCL's
/// `default_selector_v`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultSelector;

impl DeviceSelector for DefaultSelector {
    fn select(&self) -> SyclResult<DeviceSpec> {
        GpuSelector::new().select()
    }
}

/// A selector carrying an explicit [`DeviceSpec`] — for tests and for
/// running on custom devices.
#[derive(Debug, Clone)]
pub struct SpecSelector(pub DeviceSpec);

impl DeviceSelector for SpecSelector {
    fn select(&self) -> SyclResult<DeviceSpec> {
        Ok(self.0.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_gpu_selector_finds_a_device() {
        let spec = GpuSelector::new().select().unwrap();
        assert_eq!(spec.name, "Radeon VII");
        assert_eq!(DefaultSelector.select().unwrap().name, "Radeon VII");
    }

    #[test]
    fn named_selector_filters() {
        assert_eq!(GpuSelector::named("MI60").select().unwrap().name, "MI60");
        let err = GpuSelector::named("A100").select().unwrap_err();
        assert!(matches!(err, SyclException::DeviceNotFound { .. }));
    }

    #[test]
    fn spec_selector_passes_through() {
        let spec = SpecSelector(DeviceSpec::mi100()).select().unwrap();
        assert_eq!(spec.name, "MI100");
    }
}
